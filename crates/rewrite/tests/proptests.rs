//! Property tests for the rewriting engine and the immediate rule.

use proptest::prelude::*;

use parallax_compiler::ir::build::*;
use parallax_compiler::{compile_module, Function, Module};
use parallax_corpus::randprog::Gen;
use parallax_rewrite::{protect_program, FuncRewriter, RewriteConfig};
use parallax_vm::{Exit, Vm};

/// Compiles a random module and returns its native outcome.
fn outcome(img: &parallax_image::LinkedImage) -> (Exit, Vec<u8>) {
    let mut vm = Vm::new(img);
    let exit = vm.run();
    (exit, vm.take_output())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// lift ∘ finish is the identity on every compiled function.
    #[test]
    fn lift_finish_identity(seed in 0u64..5000) {
        let m = Gen::new(seed).module();
        let prog = compile_module(&m).unwrap();
        for name in prog.func_names() {
            let f = prog.func(name).unwrap();
            let rw = FuncRewriter::lift(f).unwrap();
            let (out, _) = rw.finish(f.pad_before).unwrap();
            prop_assert_eq!(&out.bytes, &f.bytes, "{}", name);
            prop_assert_eq!(&out.relocs, &f.relocs, "{}", name);
        }
    }

    /// Applying ALL rewriting rules preserves program behaviour exactly
    /// (the §IV-B correctness contract), for random programs.
    #[test]
    fn rules_preserve_semantics(seed in 0u64..5000, completion in any::<bool>()) {
        let m = Gen::new(seed).module();
        let base = compile_module(&m).unwrap().link().unwrap();
        let (exit, out) = outcome(&base);
        prop_assume!(matches!(exit, Exit::Exited(_)));

        let mut prog = compile_module(&m).unwrap();
        let targets: Vec<String> =
            m.funcs.iter().map(|f| f.name.clone()).collect();
        let cfg = RewriteConfig {
            imm_completion_always: completion,
            ..RewriteConfig::default()
        };
        protect_program(&mut prog, &targets, &cfg).unwrap();
        let img = prog.link().unwrap();
        let (exit2, out2) = outcome(&img);
        prop_assert_eq!(exit2, exit, "seed {}", seed);
        prop_assert_eq!(out2, out, "seed {}", seed);
    }

    /// Rewriting strictly increases the number of discoverable gadgets
    /// whenever it reports crafted sites.
    #[test]
    fn rewriting_adds_gadgets(seed in 0u64..1000) {
        let m = Gen::new(seed).module();
        let base = compile_module(&m).unwrap().link().unwrap();
        let before = parallax_gadgets::find_gadgets(&base).len();

        let mut prog = compile_module(&m).unwrap();
        let targets: Vec<String> = m.funcs.iter().map(|f| f.name.clone()).collect();
        let report =
            protect_program(&mut prog, &targets, &RewriteConfig::default()).unwrap();
        prop_assume!(report.crafted_count() > 0);
        let img = prog.link().unwrap();
        let after = parallax_gadgets::find_gadgets(&img).len();
        prop_assert!(
            after > before,
            "crafted {} sites but gadgets went {} -> {}",
            report.crafted_count(),
            before,
            after
        );
    }
}

/// Deterministic regression: splitting a specific immediate in a
/// function with an internal branch keeps the branch target intact.
#[test]
fn splitting_near_branches_is_safe() {
    let mut m = Module::new();
    m.func(Function::new(
        "f",
        ["x"],
        vec![
            let_("y", mul(l("x"), c(0x01020304))),
            if_(
                gt_s(l("y"), c(0)),
                vec![let_("y", add(l("y"), c(0x0a0b0c0d)))],
                vec![let_("y", sub(l("y"), c(0x0102)))],
            ),
            ret(l("y")),
        ],
    ));
    m.func(Function::new(
        "main",
        [],
        vec![ret(and(
            add(call("f", vec![c(3)]), call("f", vec![c(-3)])),
            c(0xff),
        ))],
    ));
    m.entry("main");

    let base = compile_module(&m).unwrap().link().unwrap();
    let mut vm = Vm::new(&base);
    let expect = vm.run();

    let mut prog = compile_module(&m).unwrap();
    protect_program(
        &mut prog,
        &["f".to_owned(), "main".to_owned()],
        &RewriteConfig::default(),
    )
    .unwrap();
    let img = prog.link().unwrap();
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run(), expect);
}
