//! The chain representation: a sequence of 32-bit words laid out in
//! data memory, executed by returning through it.

use core::fmt;

/// A position label inside a chain, resolved at serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChainLabel(pub(crate) usize);

/// One 32-bit chain word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Word {
    /// The address of a gadget in the text section.
    Gadget(u32),
    /// A literal constant (popped by a `LoadConst` gadget, or data).
    Const(u32),
    /// Byte delta from `anchor` (a word index) to a label: the value an
    /// `add esp, reg` gadget needs to branch to the label. Resolves to
    /// `4 * (pos(label) - anchor)`, possibly negative.
    DeltaTo {
        /// Branch target.
        label: ChainLabel,
        /// Word index esp points at when the delta is applied.
        anchor: usize,
    },
    /// Absolute address of a chain slot (`chain_base + 4 * pos(label)`).
    AbsSlot(ChainLabel),
    /// Dummy code-segment slot consumed by far-return gadgets.
    DummyCs,
    /// Filler for junk pops of multi-slot gadgets.
    Junk,
}

/// Errors during chain construction or serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainLayoutError {
    /// A label was referenced but never bound.
    UnboundLabel(ChainLabel),
}

impl fmt::Display for ChainLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainLayoutError::UnboundLabel(l) => write!(f, "unbound chain label {:?}", l),
        }
    }
}

impl std::error::Error for ChainLayoutError {}

/// A chain under construction (and its final form).
#[derive(Debug, Clone, Default)]
pub struct Chain {
    words: Vec<Word>,
    labels: Vec<Option<usize>>,
}

impl Chain {
    /// Creates an empty chain.
    pub fn new() -> Chain {
        Chain::default()
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no words have been emitted.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size in bytes once serialized.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 4
    }

    /// The words emitted so far.
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Appends a word, returning its index.
    pub fn push(&mut self, w: Word) -> usize {
        self.words.push(w);
        self.words.len() - 1
    }

    /// Replaces the word at `idx`.
    pub fn set(&mut self, idx: usize, w: Word) {
        self.words[idx] = w;
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> ChainLabel {
        self.labels.push(None);
        ChainLabel(self.labels.len() - 1)
    }

    /// Binds `label` to the next word position.
    pub fn bind(&mut self, label: ChainLabel) {
        self.labels[label.0] = Some(self.words.len());
    }

    /// The position a bound label points at.
    pub fn position(&self, label: ChainLabel) -> Option<usize> {
        self.labels.get(label.0).copied().flatten()
    }

    /// Serializes the chain for placement at virtual address `base`.
    pub fn serialize(&self, base: u32) -> Result<Vec<u8>, ChainLayoutError> {
        let mut out = Vec::with_capacity(self.byte_len());
        for w in &self.words {
            let v: u32 = match w {
                Word::Gadget(a) => *a,
                Word::Const(c) => *c,
                Word::DeltaTo { label, anchor } => {
                    let pos = self
                        .position(*label)
                        .ok_or(ChainLayoutError::UnboundLabel(*label))?;
                    ((pos as i64 - *anchor as i64) * 4) as u32
                }
                Word::AbsSlot(label) => {
                    let pos = self
                        .position(*label)
                        .ok_or(ChainLayoutError::UnboundLabel(*label))?;
                    base + 4 * pos as u32
                }
                Word::DummyCs => 0x23,
                Word::Junk => 0x6a6a_6a6a,
            };
            out.extend_from_slice(&v.to_le_bytes());
        }
        Ok(out)
    }

    /// The distinct gadget addresses referenced by the chain.
    pub fn gadget_addrs(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .words
            .iter()
            .filter_map(|w| match w {
                Word::Gadget(a) => Some(*a),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_resolves_labels() {
        let mut c = Chain::new();
        let l = c.label();
        c.push(Word::Gadget(0x08048000));
        let delta_idx = c.push(Word::Const(0)); // placeholder
        c.push(Word::Gadget(0x08048010));
        c.bind(l);
        c.push(Word::Const(42));
        c.set(
            delta_idx,
            Word::DeltaTo {
                label: l,
                anchor: 2,
            },
        );
        let bytes = c.serialize(0x1000).unwrap();
        assert_eq!(bytes.len(), 16);
        let delta = i32::from_le_bytes(bytes[4..8].try_into().unwrap());
        assert_eq!(delta, 4); // (3 - 2) * 4

        let mut c2 = Chain::new();
        let l2 = c2.label();
        c2.bind(l2);
        c2.push(Word::AbsSlot(l2));
        let b2 = c2.serialize(0x2000).unwrap();
        assert_eq!(u32::from_le_bytes(b2[..4].try_into().unwrap()), 0x2000);
    }

    #[test]
    fn negative_deltas() {
        let mut c = Chain::new();
        let top = c.label();
        c.bind(top);
        c.push(Word::Gadget(1));
        c.push(Word::DeltaTo {
            label: top,
            anchor: 5,
        });
        for _ in 0..3 {
            c.push(Word::Junk);
        }
        let bytes = c.serialize(0).unwrap();
        let delta = i32::from_le_bytes(bytes[4..8].try_into().unwrap());
        assert_eq!(delta, -20);
    }

    #[test]
    fn unbound_label_errors() {
        let mut c = Chain::new();
        let l = c.label();
        c.push(Word::AbsSlot(l));
        assert!(c.serialize(0).is_err());
    }

    #[test]
    fn gadget_addrs_deduped() {
        let mut c = Chain::new();
        c.push(Word::Gadget(5));
        c.push(Word::Gadget(3));
        c.push(Word::Gadget(5));
        assert_eq!(c.gadget_addrs(), vec![3, 5]);
    }
}
