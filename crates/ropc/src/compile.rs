//! The verification-code compiler: IR functions → ROP chains.
//!
//! The translation mirrors `parallax-compiler`'s stack-machine codegen,
//! but every operation becomes a gadget invocation:
//!
//! * the accumulator is `eax`, the secondary operand / memory address
//!   register is `ecx`;
//! * parameters, locals, and expression temporaries live in a
//!   per-function *frame* in data memory (chains cannot use the native
//!   stack — `esp` is the chain program counter);
//! * control flow is branchless at the gadget level: a condition is
//!   materialized as 0/1, turned into a mask, ANDed with a byte delta,
//!   and added to `esp` (`add esp, eax ; ret`), skipping or rewinding
//!   chain words — the ROPC lineage's approach;
//! * calls to native functions go through the
//!   [`CALL_NATIVE`](crate::runtime::CALL_NATIVE) trampoline: the chain
//!   stores target/arguments/resume-point and pivots out;
//! * the epilogue pivots to [`CHAIN_EXIT`](crate::runtime::CHAIN_EXIT),
//!   which restores registers and returns the value the chain stored in
//!   the return cell.
//!
//! Gadget *choice* is pluggable ([`Policy`]): prefer gadgets overlapping
//! the protected ranges (§III step 4), pick uniformly at random among
//! equivalents (§V-B probabilistic chains), or take the first found.

use std::fmt;

use parallax_compiler::ir::{BinOp, CmpOp, Expr, Function, Stmt, UnOp};
use parallax_gadgets::{Effect, GBinOp, GadgetMap, RangeSet, TypeKey};
use parallax_image::LinkedImage;
use parallax_trace::Tracer;
use parallax_x86::{Reg32, ShiftOp};

use crate::chain::{Chain, ChainLabel, ChainLayoutError, Word};
use crate::runtime;

/// Expression-temporary slots reserved in every chain frame.
pub const TEMP_SLOTS: usize = 64;

/// Computes the frame size (bytes) a function's chain needs.
pub fn frame_size(func: &Function) -> u32 {
    ((func.params.len() + func.locals().len() + TEMP_SLOTS) * 4) as u32
}

/// Gadget-selection policy.
#[derive(Debug, Clone)]
pub enum Policy {
    /// Deterministically take the lowest-address candidate.
    First,
    /// Prefer gadgets overlapping the given vaddr ranges (the protected
    /// instructions); pick pseudo-randomly among the preferred set.
    PreferOverlapping {
        /// Protected vaddr ranges `(start, end)`.
        ranges: Vec<(u32, u32)>,
        /// PRNG seed.
        seed: u64,
    },
    /// §V-B probabilistic mode: among shape-identical candidates, pick
    /// pseudo-randomly. Two compilations with different seeds produce
    /// equal-length chains using (potentially) different gadgets.
    Grouped {
        /// PRNG seed.
        seed: u64,
    },
}

/// Errors from chain compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// No usable gadget implements a required type.
    MissingGadget(String),
    /// The IR uses an operation chains cannot express.
    Unsupported(String),
    /// Unknown local variable.
    UnknownLocal(String),
    /// Unknown global.
    UnknownGlobal(String),
    /// Unknown callee.
    UnknownFunction(String),
    /// `break`/`continue` outside a loop.
    NotInLoop,
    /// Expression nesting exceeded the frame's temporary slots.
    TooDeep,
    /// Too many arguments for the native-call trampoline.
    TooManyArgs,
    /// Label resolution failed.
    Layout(ChainLayoutError),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::MissingGadget(k) => write!(f, "no usable gadget for {k}"),
            ChainError::Unsupported(w) => write!(f, "unsupported in chains: {w}"),
            ChainError::UnknownLocal(n) => write!(f, "unknown local `{n}`"),
            ChainError::UnknownGlobal(n) => write!(f, "unknown global `{n}`"),
            ChainError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ChainError::NotInLoop => write!(f, "break/continue outside loop"),
            ChainError::TooDeep => write!(f, "expression too deep for chain frame"),
            ChainError::TooManyArgs => write!(f, "too many native-call arguments"),
            ChainError::Layout(e) => write!(f, "chain layout: {e}"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<ChainLayoutError> for ChainError {
    fn from(e: ChainLayoutError) -> ChainError {
        ChainError::Layout(e)
    }
}

/// A compiled verification chain.
#[derive(Debug, Clone)]
pub struct CompiledChain {
    /// The chain words.
    pub chain: Chain,
    /// Distinct gadget addresses the chain verifies.
    pub used_gadgets: Vec<u32>,
    /// Gadget invocations emitted (chain "operations").
    pub ops: usize,
}

struct Ctx<'a> {
    map: &'a GadgetMap,
    img: &'a LinkedImage,
    policy: Policy,
    rng: u64,
    chain: Chain,
    pending_far: bool,
    func: &'a Function,
    frame_base: u32,
    scratch: u32,
    locals: Vec<String>,
    loops: Vec<(ChainLabel, ChainLabel)>,
    epilogue: ChainLabel,
    ops: usize,
    /// §IV-B gadget-preference tallies: selections satisfied from the
    /// overlapping-preferred pool vs. everywhere else (the appended
    /// standard set or incidental non-overlapping gadgets).
    picks_overlapping: u64,
    picks_other: u64,
    /// Interval index over [`Policy::PreferOverlapping`] ranges, built
    /// once per chain so the preference check is a binary search rather
    /// than an O(ranges) walk per candidate per pick.
    overlap_index: Option<RangeSet>,
}

const EAX: Reg32 = Reg32::Eax;
const ECX: Reg32 = Reg32::Ecx;

impl<'a> Ctx<'a> {
    fn rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Registers that hold a *chain-controlled pointer* when a gadget
    /// for `key` executes: only the address operand of the memory
    /// effects qualifies. A memory precondition on such a register is
    /// satisfied by construction; a precondition on any other register
    /// (an arbitrary value, or a yet-unwritten destination) needs a
    /// preparatory scratch load first.
    fn pre_set_regs(key: TypeKey) -> Vec<Reg32> {
        match key {
            TypeKey::LoadMem(_, a) | TypeKey::StoreMem(a, _) | TypeKey::AddMem(a, _) => vec![a],
            _ => vec![],
        }
    }

    /// Selects a gadget for `key` whose side effects are compatible
    /// with the currently-live registers.
    fn select(&mut self, key: TypeKey, live: &[Reg32]) -> Result<usize, ChainError> {
        self.select_inner(key, live, false)
    }

    /// Like [`Ctx::select`]; with `clean_only`, candidates needing any
    /// preparatory scratch load are rejected (used when emitting the
    /// preparation itself, to avoid recursion).
    fn select_inner(
        &mut self,
        key: TypeKey,
        live: &[Reg32],
        clean_only: bool,
    ) -> Result<usize, ChainError> {
        let operand_regs = Self::pre_set_regs(key);
        let shape_stable = matches!(self.policy, Policy::Grouped { .. });
        let eligible: Vec<usize> = self
            .map
            .lookup(key)
            .iter()
            .copied()
            .filter(|&i| {
                let g = self.map.get(i);
                if g.slots > 8 {
                    return false;
                }
                // Far gadgets are fine for data ops (the CS slot is
                // absorbed after the next gadget word) but not for
                // pivots, branches, or flush NOPs, whose successor word
                // positions must be exact.
                if g.far && matches!(key, TypeKey::PopEsp | TypeKey::AddEsp(_) | TypeKey::Nop) {
                    return false;
                }
                if g.clobbers.iter().any(|c| live.contains(c)) {
                    return false;
                }
                // Displacement-carrying memory effects need off == 0.
                if let Some(e) = self.map.effect_of(i, key) {
                    match e {
                        Effect::LoadMem { off, .. }
                        | Effect::StoreMem { off, .. }
                        | Effect::AddMem { off, .. }
                            if *off != 0 =>
                        {
                            return false;
                        }
                        _ => {}
                    }
                }
                // Preconditions outside the operand registers need prep
                // loads; those regs must be dead, and in shape-stable
                // mode we forbid prep entirely.
                let extra: Vec<_> = g
                    .mem_preconditions
                    .iter()
                    .filter(|p| !operand_regs.contains(p))
                    .collect();
                if (shape_stable || clean_only) && !extra.is_empty() {
                    return false;
                }
                if extra.iter().any(|p| live.contains(p)) {
                    return false;
                }
                true
            })
            .collect();
        if eligible.is_empty() {
            return Err(ChainError::MissingGadget(format!("{key:?}")));
        }

        let choice = match &self.policy {
            Policy::First => eligible[0],
            Policy::PreferOverlapping { ranges, .. } => {
                let index = &self.overlap_index;
                let preferred: Vec<usize> = eligible
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let g = self.map.get(i);
                        match index {
                            Some(set) => set.overlaps(g.vaddr, g.end()),
                            None => ranges.iter().any(|&(s, e)| g.overlaps(s, e)),
                        }
                    })
                    .collect();
                let pool = if preferred.is_empty() {
                    self.picks_other += 1;
                    &eligible
                } else {
                    self.picks_overlapping += 1;
                    &preferred
                };
                pool[(self.rand() as usize) % pool.len()]
            }
            Policy::Grouped { .. } => {
                // Group by chain shape; pick the largest group, then a
                // random member.
                use std::collections::HashMap;
                let mut groups: HashMap<(u32, bool, u32), Vec<usize>> = HashMap::new();
                for &i in &eligible {
                    let g = self.map.get(i);
                    let slot = match self.map.effect_of(i, key) {
                        Some(Effect::LoadConst { slot, .. }) => *slot,
                        _ => 0,
                    };
                    groups.entry((g.slots, g.far, slot)).or_default().push(i);
                }
                type GroupEntry<'g> = (&'g (u32, bool, u32), &'g Vec<usize>);
                let mut best: Option<GroupEntry<'_>> = None;
                for (k, v) in &groups {
                    let replace = match best {
                        None => true,
                        Some((bk, bv)) => v.len() > bv.len() || (v.len() == bv.len() && k < bk),
                    };
                    if replace {
                        best = Some((k, v));
                    }
                }
                let pool = best.expect("eligible non-empty").1;
                pool[(self.rand() as usize) % pool.len()]
            }
        };
        Ok(choice)
    }

    /// Emits one gadget invocation. `payload` fills a `LoadConst`
    /// gadget's value slot; all other slots get junk.
    fn emit(
        &mut self,
        key: TypeKey,
        payload: Option<Word>,
        live: &[Reg32],
    ) -> Result<(), ChainError> {
        let idx = self.select(key, live)?;
        let g = self.map.get(idx).clone();

        // Preparatory scratch loads for preconditions on registers
        // whose pre-state the chain has not established. The prep
        // itself must use clean gadgets (no further preconditions).
        let pre_set = Self::pre_set_regs(key);
        let extra: Vec<Reg32> = g
            .mem_preconditions
            .iter()
            .copied()
            .filter(|p| !pre_set.contains(p))
            .collect();
        for p in extra {
            let prep_live = live.to_vec();
            let prep_idx = self.select_inner(TypeKey::LoadConst(p), &prep_live, true)?;
            let pg = self.map.get(prep_idx).clone();
            self.push_gadget_word(pg.vaddr);
            let vslot = match self.map.effect_of(prep_idx, TypeKey::LoadConst(p)) {
                Some(Effect::LoadConst { slot, .. }) => *slot,
                _ => 0,
            };
            for s in 0..pg.slots {
                if s == vslot {
                    self.chain.push(Word::Const(self.scratch + 0x100));
                } else {
                    self.chain.push(Word::Junk);
                }
            }
            if pg.far {
                self.pending_far = true;
            }
            self.ops += 1;
        }

        self.push_gadget_word(g.vaddr);
        let value_slot = match self.map.effect_of(idx, key) {
            Some(Effect::LoadConst { slot, .. }) => Some(*slot),
            _ => None,
        };
        for s in 0..g.slots {
            if Some(s) == value_slot {
                self.chain
                    .push(payload.expect("LoadConst emission carries a payload"));
            } else {
                self.chain.push(Word::Junk);
            }
        }
        if g.far {
            self.pending_far = true;
        }
        self.ops += 1;
        Ok(())
    }

    fn push_gadget_word(&mut self, vaddr: u32) {
        self.chain.push(Word::Gadget(vaddr));
        if self.pending_far {
            self.chain.push(Word::DummyCs);
            self.pending_far = false;
        }
    }

    /// Absorbs a pending far-return CS slot before label binds and
    /// branches (their word positions must be exact).
    fn flush_far(&mut self) -> Result<(), ChainError> {
        if self.pending_far {
            self.emit(TypeKey::Nop, None, &[EAX, ECX])?;
            // emit() pushed the Nop gadget word followed by the dummy CS.
            debug_assert!(!self.pending_far);
        }
        Ok(())
    }

    // ---- primitive sequences -------------------------------------------

    fn load_const(&mut self, dst: Reg32, w: Word, live: &[Reg32]) -> Result<(), ChainError> {
        self.emit(TypeKey::LoadConst(dst), Some(w), live)
    }

    /// eax ← [addr-const]; `live` lists registers (besides eax/ecx)
    /// that must survive.
    fn load_cell(&mut self, addr: u32, live: &[Reg32]) -> Result<(), ChainError> {
        self.load_const(ECX, Word::Const(addr), live)?;
        let mut l = live.to_vec();
        l.push(ECX);
        self.emit(TypeKey::LoadMem(EAX, ECX), None, &l)
    }

    /// [addr-const] ← eax
    fn store_cell(&mut self, addr: u32) -> Result<(), ChainError> {
        self.load_const(ECX, Word::Const(addr), &[EAX])?;
        self.emit(TypeKey::StoreMem(ECX, EAX), None, &[EAX, ECX])
    }

    /// ecx ← [addr-const] (leaves eax untouched)
    fn load_cell_into_ecx(&mut self, addr: u32) -> Result<(), ChainError> {
        self.load_const(ECX, Word::Const(addr), &[EAX])?;
        self.emit(TypeKey::LoadMem(ECX, ECX), None, &[EAX, ECX])
    }

    fn binary(&mut self, op: GBinOp) -> Result<(), ChainError> {
        self.emit(TypeKey::Binary(op, EAX, ECX), None, &[EAX, ECX])
    }

    fn shift(&mut self, op: ShiftOp) -> Result<(), ChainError> {
        self.emit(TypeKey::ShiftCl(op, EAX), None, &[EAX, ECX])
    }

    fn temp_addr(&self, depth: usize) -> Result<u32, ChainError> {
        if depth >= TEMP_SLOTS {
            return Err(ChainError::TooDeep);
        }
        let n = self.func.params.len() + self.locals.len();
        Ok(self.frame_base + 4 * (n + depth) as u32)
    }

    fn slot_addr(&self, name: &str) -> Result<u32, ChainError> {
        if let Some(i) = self.func.params.iter().position(|p| p == name) {
            return Ok(self.frame_base + 4 * i as u32);
        }
        if let Some(i) = self.locals.iter().position(|l| l == name) {
            return Ok(self.frame_base + 4 * (self.func.params.len() + i) as u32);
        }
        Err(ChainError::UnknownLocal(name.to_owned()))
    }

    // ---- expressions ------------------------------------------------------

    /// Evaluates `e`; the result ends up in `eax`.
    fn expr(&mut self, e: &Expr, depth: usize) -> Result<(), ChainError> {
        match e {
            Expr::Const(v) => self.load_const(EAX, Word::Const(*v as u32), &[]),
            Expr::Local(name) => {
                let addr = self.slot_addr(name)?;
                self.load_cell(addr, &[])
            }
            Expr::GlobalAddr(name) => {
                let sym = self
                    .img
                    .symbol(name)
                    .ok_or_else(|| ChainError::UnknownGlobal(name.clone()))?;
                self.load_const(EAX, Word::Const(sym.vaddr), &[])
            }
            Expr::Load(a) => {
                self.expr(a, depth)?;
                self.emit(TypeKey::MovReg(ECX, EAX), None, &[EAX])?;
                self.emit(TypeKey::LoadMem(EAX, ECX), None, &[ECX])
            }
            Expr::Load8(a) => {
                // Unaligned word load, masked to the low byte.
                self.expr(a, depth)?;
                self.emit(TypeKey::MovReg(ECX, EAX), None, &[EAX])?;
                self.emit(TypeKey::LoadMem(EAX, ECX), None, &[ECX])?;
                self.load_const(ECX, Word::Const(0xff), &[EAX])?;
                self.binary(GBinOp::And)
            }
            Expr::Unary(op, a) => {
                self.expr(a, depth)?;
                match op {
                    UnOp::Neg => self.emit(TypeKey::Neg(EAX), None, &[EAX]),
                    UnOp::Not => self.emit(TypeKey::Not(EAX), None, &[EAX]),
                }
            }
            Expr::Bin(op, a, b) => {
                // Fast path: constant or variable right operands load
                // straight into ecx after the left side is in eax.
                match b.as_ref() {
                    Expr::Const(k) => {
                        self.expr(a, depth)?;
                        self.load_const(ECX, Word::Const(*k as u32), &[EAX])?;
                    }
                    Expr::Local(name) => {
                        let addr = self.slot_addr(name)?;
                        self.expr(a, depth)?;
                        self.load_cell_into_ecx(addr)?;
                    }
                    Expr::GlobalAddr(name) => {
                        let sym = self
                            .img
                            .symbol(name)
                            .ok_or_else(|| ChainError::UnknownGlobal(name.clone()))?;
                        self.expr(a, depth)?;
                        self.load_const(ECX, Word::Const(sym.vaddr), &[EAX])?;
                    }
                    _ => {
                        self.expr(b, depth)?;
                        let t = self.temp_addr(depth)?;
                        self.store_cell(t)?;
                        self.expr(a, depth + 1)?;
                        self.load_cell_into_ecx(t)?;
                    }
                }
                match op {
                    BinOp::Add => self.binary(GBinOp::Add),
                    BinOp::Sub => self.binary(GBinOp::Sub),
                    BinOp::Mul => self.binary(GBinOp::Imul),
                    BinOp::And => self.binary(GBinOp::And),
                    BinOp::Or => self.binary(GBinOp::Or),
                    BinOp::Xor => self.binary(GBinOp::Xor),
                    BinOp::Shl => self.shift(ShiftOp::Shl),
                    BinOp::ShrL => self.shift(ShiftOp::Shr),
                    BinOp::ShrA => self.shift(ShiftOp::Sar),
                    BinOp::DivS | BinOp::DivU | BinOp::ModS | BinOp::ModU => {
                        Err(ChainError::Unsupported("division".into()))
                    }
                }
            }
            Expr::Cmp(op, a, b) => self.compare(*op, a, b, depth),
            Expr::Call(name, args) => self.native_call(name, args, depth),
            Expr::Syscall(nr, args) => self.syscall(*nr, args, depth),
        }
    }

    /// Branchless comparisons producing 0/1 in `eax`.
    fn compare(&mut self, op: CmpOp, a: &Expr, b: &Expr, depth: usize) -> Result<(), ChainError> {
        // Sign tests against zero collapse to a single shift.
        if matches!(b, Expr::Const(0)) {
            match op {
                CmpOp::LtS => {
                    self.expr(a, depth)?;
                    return self.shr31();
                }
                CmpOp::GeS => {
                    self.expr(a, depth)?;
                    self.shr31()?;
                    return self.xor_one();
                }
                CmpOp::Ne | CmpOp::Eq => {
                    // (a | -a) >> 31, optionally inverted.
                    let tx = self.temp_addr(depth)?;
                    self.expr(a, depth)?;
                    self.store_cell(tx)?;
                    self.emit(TypeKey::Neg(EAX), None, &[EAX])?;
                    self.load_cell_into_ecx(tx)?;
                    self.binary(GBinOp::Or)?;
                    self.shr31()?;
                    if op == CmpOp::Eq {
                        self.xor_one()?;
                    }
                    return Ok(());
                }
                _ => {}
            }
        }
        let ta = self.temp_addr(depth)?;
        let tb = self.temp_addr(depth + 1)?;
        self.expr(a, depth)?;
        self.store_cell(ta)?;
        self.expr(b, depth + 1)?;
        self.store_cell(tb)?;
        match op {
            CmpOp::Ne => self.ne_from_temps(ta, tb, depth),
            CmpOp::Eq => {
                self.ne_from_temps(ta, tb, depth)?;
                self.xor_one()
            }
            CmpOp::LtS => self.lt_s_from_temps(ta, tb, depth),
            CmpOp::GeS => {
                self.lt_s_from_temps(ta, tb, depth)?;
                self.xor_one()
            }
            CmpOp::GtS => self.lt_s_from_temps(tb, ta, depth),
            CmpOp::LeS => {
                self.lt_s_from_temps(tb, ta, depth)?;
                self.xor_one()
            }
            CmpOp::LtU => self.lt_u_from_temps(ta, tb, depth),
            CmpOp::GeU => {
                self.lt_u_from_temps(ta, tb, depth)?;
                self.xor_one()
            }
            CmpOp::GtU => self.lt_u_from_temps(tb, ta, depth),
            CmpOp::LeU => {
                self.lt_u_from_temps(tb, ta, depth)?;
                self.xor_one()
            }
        }
    }

    fn xor_one(&mut self) -> Result<(), ChainError> {
        self.load_const(ECX, Word::Const(1), &[EAX])?;
        self.binary(GBinOp::Xor)
    }

    fn shr31(&mut self) -> Result<(), ChainError> {
        self.load_const(ECX, Word::Const(31), &[EAX])?;
        self.shift(ShiftOp::Shr)
    }

    /// `eax = (a != b)` with a, b in cells: ((x | -x) >> 31), x = a - b.
    fn ne_from_temps(&mut self, ta: u32, tb: u32, depth: usize) -> Result<(), ChainError> {
        let tx = self.temp_addr(depth + 2)?;
        self.load_cell(ta, &[])?;
        self.load_cell_into_ecx(tb)?;
        self.binary(GBinOp::Sub)?; // eax = x
        self.store_cell(tx)?;
        self.emit(TypeKey::Neg(EAX), None, &[EAX])?; // eax = -x
        self.load_cell_into_ecx(tx)?;
        self.binary(GBinOp::Or)?; // eax = x | -x
        self.shr31()
    }

    /// Signed less-than: ((a-b) ^ ((a^b) & ((a-b)^a))) >> 31.
    fn lt_s_from_temps(&mut self, ta: u32, tb: u32, depth: usize) -> Result<(), ChainError> {
        let tc = self.temp_addr(depth + 2)?; // a-b
        let td = self.temp_addr(depth + 3)?; // a^b
        self.load_cell(ta, &[])?;
        self.load_cell_into_ecx(tb)?;
        self.binary(GBinOp::Sub)?;
        self.store_cell(tc)?;
        self.load_cell(ta, &[])?;
        self.load_cell_into_ecx(tb)?;
        self.binary(GBinOp::Xor)?;
        self.store_cell(td)?;
        self.load_cell(tc, &[])?;
        self.load_cell_into_ecx(ta)?;
        self.binary(GBinOp::Xor)?; // (a-b)^a
        self.load_cell_into_ecx(td)?;
        self.binary(GBinOp::And)?; // (a^b) & ((a-b)^a)
        self.load_cell_into_ecx(tc)?;
        self.binary(GBinOp::Xor)?; // ^(a-b)
        self.shr31()
    }

    /// Unsigned less-than: ((~a & b) | ((~a | b) & (a-b))) >> 31.
    fn lt_u_from_temps(&mut self, ta: u32, tb: u32, depth: usize) -> Result<(), ChainError> {
        let tc = self.temp_addr(depth + 2)?; // ~a
        let td = self.temp_addr(depth + 3)?; // ~a & b
        self.load_cell(ta, &[])?;
        self.emit(TypeKey::Not(EAX), None, &[EAX])?;
        self.store_cell(tc)?;
        self.load_cell_into_ecx(tb)?;
        self.binary(GBinOp::And)?; // eax = ~a & b (eax was ~a)
        self.store_cell(td)?;
        self.load_cell(tc, &[])?;
        self.load_cell_into_ecx(tb)?;
        self.binary(GBinOp::Or)?; // ~a | b
        self.store_cell(tc)?; // reuse tc
        self.load_cell(ta, &[])?;
        self.load_cell_into_ecx(tb)?;
        self.binary(GBinOp::Sub)?; // a-b
        self.load_cell_into_ecx(tc)?;
        self.binary(GBinOp::And)?;
        self.load_cell_into_ecx(td)?;
        self.binary(GBinOp::Or)?;
        self.shr31()
    }

    /// Calls a native function through the trampoline.
    fn native_call(&mut self, name: &str, args: &[Expr], depth: usize) -> Result<(), ChainError> {
        if args.len() > runtime::MAX_NATIVE_ARGS {
            return Err(ChainError::TooManyArgs);
        }
        let target = self
            .img
            .symbol(name)
            .ok_or_else(|| ChainError::UnknownFunction(name.to_owned()))?
            .vaddr;
        let cells = self.cells()?;
        // Evaluate and store arguments (1-based slots).
        for (i, a) in args.iter().enumerate() {
            self.expr(a, depth)?;
            self.store_cell(
                (cells as i64 + runtime::CELL_ARG_N as i64 + 4 * (i as i64 + 1)) as u32,
            )?;
        }
        self.load_const(EAX, Word::Const(target), &[])?;
        self.store_cell((cells as i64 + runtime::CELL_ARG_TARGET as i64) as u32)?;
        self.load_const(EAX, Word::Const(args.len() as u32), &[])?;
        self.store_cell((cells as i64 + runtime::CELL_ARG_N as i64) as u32)?;

        // Resume point: the chain slot right after the pivot.
        let resume = self.chain.label();
        self.load_const(EAX, Word::AbsSlot(resume), &[])?;
        self.store_cell((cells as i64 + runtime::CELL_RESUME as i64) as u32)?;

        // Pivot out to the trampoline.
        let callslot = self
            .img
            .symbol(runtime::CALLSLOT)
            .ok_or_else(|| ChainError::UnknownGlobal(runtime::CALLSLOT.into()))?
            .vaddr;
        self.pivot_to(callslot)?;
        self.flush_far()?;
        self.chain.bind(resume);

        // Fetch the result.
        self.load_cell((cells as i64 + runtime::CELL_RET_TMP as i64) as u32, &[])
    }

    fn syscall(&mut self, nr: u32, args: &[Expr], depth: usize) -> Result<(), ChainError> {
        if args.len() > 4 {
            return Err(ChainError::TooManyArgs);
        }
        // Evaluate args into temps first.
        let mut temps = Vec::new();
        for (i, a) in args.iter().enumerate() {
            self.expr(a, depth + i)?;
            let t = self.temp_addr(depth + i)?;
            self.store_cell(t)?;
            temps.push(t);
        }
        // ebx, edx, esi via eax; ecx last (it is the address register).
        let regs = [Reg32::Ebx, Reg32::Ecx, Reg32::Edx, Reg32::Esi];
        for (i, &t) in temps.iter().enumerate() {
            if regs[i] == Reg32::Ecx {
                continue;
            }
            let mut live = vec![];
            for (j, &r) in regs.iter().enumerate() {
                if j < i && r != Reg32::Ecx {
                    live.push(r);
                }
            }
            self.load_cell(t, &live)?;
            let mut live2 = live.clone();
            live2.push(EAX);
            self.emit(TypeKey::MovReg(regs[i], EAX), None, &live2)?;
        }
        let mut live: Vec<Reg32> = regs
            .iter()
            .copied()
            .take(temps.len())
            .filter(|r| *r != Reg32::Ecx)
            .collect();
        if temps.len() > 1 {
            // arg2 goes to ecx directly.
            self.load_cell_into_ecx(temps[1])?;
            live.push(ECX);
        }
        self.load_const(EAX, Word::Const(nr), &live)?;
        live.push(EAX);
        self.emit(TypeKey::Syscall, None, &live)
    }

    fn cells(&self) -> Result<u32, ChainError> {
        Ok(self
            .img
            .symbol(runtime::CELLS)
            .ok_or_else(|| ChainError::UnknownGlobal(runtime::CELLS.into()))?
            .vaddr)
    }

    /// Emits `pop esp ; ret` with the new stack pointer.
    fn pivot_to(&mut self, new_esp: u32) -> Result<(), ChainError> {
        // A pivot gadget's single slot carries the new esp; the pivot
        // must be clean (no scratch preconditions can be prepped here).
        let idx = self.select_inner(TypeKey::PopEsp, &[EAX, ECX], true)?;
        let g = self.map.get(idx).clone();
        self.push_gadget_word(g.vaddr);
        // Pivot gadgets are pop esp; ret shaped: every slot must be the
        // new esp (only slot 0 is actually consumed for 1-slot pivots).
        for _ in 0..g.slots.max(1) {
            self.chain.push(Word::Const(new_esp));
        }
        self.ops += 1;
        Ok(())
    }

    /// Emits *guard* invocations: every designated gadget is executed
    /// once at chain start, so tampering with any of them disturbs the
    /// chain deterministically (the paper's §IV-A explicit protection
    /// of chosen critical code). All registers are dead here; memory-
    /// touching registers are pre-pointed at scratch.
    fn emit_guards(&mut self, guards: &[u32]) -> Result<(), ChainError> {
        for &va in guards {
            let Some(idx) = self.map.index_of_vaddr(va) else {
                continue;
            };
            let g = self.map.get(idx).clone();
            // Pivots, esp arithmetic, and syscalls cannot run blindly.
            let unsafe_effect = g
                .effects
                .iter()
                .any(|e| matches!(e, Effect::PopEsp | Effect::AddEsp { .. } | Effect::Syscall));
            if unsafe_effect || g.slots > 8 {
                continue;
            }
            // Point every address-bearing register at scratch.
            let mut addr_regs: Vec<Reg32> = g.mem_preconditions.clone();
            for e in &g.effects {
                match e {
                    Effect::LoadMem { addr, .. }
                    | Effect::StoreMem { addr, .. }
                    | Effect::AddMem { addr, .. }
                        if !addr_regs.contains(addr) =>
                    {
                        addr_regs.push(*addr);
                    }
                    _ => {}
                }
            }
            for r in addr_regs {
                let prep_idx = self.select_inner(TypeKey::LoadConst(r), &[], true)?;
                let pg = self.map.get(prep_idx).clone();
                self.push_gadget_word(pg.vaddr);
                let vslot = match self.map.effect_of(prep_idx, TypeKey::LoadConst(r)) {
                    Some(Effect::LoadConst { slot, .. }) => *slot,
                    _ => 0,
                };
                for sidx in 0..pg.slots {
                    if sidx == vslot {
                        self.chain.push(Word::Const(self.scratch + 0x200));
                    } else {
                        self.chain.push(Word::Junk);
                    }
                }
                if pg.far {
                    self.pending_far = true;
                }
                self.ops += 1;
            }
            self.push_gadget_word(g.vaddr);
            for _ in 0..g.slots {
                self.chain.push(Word::Junk);
            }
            if g.far {
                self.pending_far = true;
            }
            self.ops += 1;
        }
        self.flush_far()
    }

    // ---- control flow -------------------------------------------------------

    /// Unconditional chain jump to `label`.
    fn jump(&mut self, label: ChainLabel) -> Result<(), ChainError> {
        self.flush_far()?;
        let delta_slot = {
            let idx = self.select_inner(TypeKey::LoadConst(EAX), &[], true)?;
            let g = self.map.get(idx).clone();
            self.push_gadget_word(g.vaddr);
            let value_slot = match self.map.effect_of(idx, TypeKey::LoadConst(EAX)) {
                Some(Effect::LoadConst { slot, .. }) => *slot,
                _ => 0,
            };
            let mut marker = None;
            for s in 0..g.slots {
                if s == value_slot {
                    marker = Some(self.chain.push(Word::Junk)); // patched below
                } else {
                    self.chain.push(Word::Junk);
                }
            }
            if g.far {
                self.pending_far = true;
                self.flush_far()?;
            }
            self.ops += 1;
            marker.expect("LoadConst has a value slot")
        };
        // add esp, eax
        let idx = self.select(TypeKey::AddEsp(EAX), &[EAX])?;
        let g = self.map.get(idx).clone();
        self.push_gadget_word(g.vaddr);
        for _ in 0..g.slots {
            self.chain.push(Word::Junk);
        }
        let anchor = self.chain.len();
        self.chain.set(delta_slot, Word::DeltaTo { label, anchor });
        self.ops += 1;
        Ok(())
    }

    /// Jump to `label` when `eax` (0/1) is zero.
    fn branch_if_zero(&mut self, label: ChainLabel) -> Result<(), ChainError> {
        self.flush_far()?;
        // mask = cond - 1 (0 -> -1, 1 -> 0)
        self.load_const(ECX, Word::Const(0xffff_ffff), &[EAX])?;
        self.binary(GBinOp::Add)?;
        // eax = mask & delta
        let delta_slot = {
            let idx = self.select_inner(TypeKey::LoadConst(ECX), &[EAX], true)?;
            let g = self.map.get(idx).clone();
            self.push_gadget_word(g.vaddr);
            let value_slot = match self.map.effect_of(idx, TypeKey::LoadConst(ECX)) {
                Some(Effect::LoadConst { slot, .. }) => *slot,
                _ => 0,
            };
            let mut marker = None;
            for s in 0..g.slots {
                if s == value_slot {
                    marker = Some(self.chain.push(Word::Junk));
                } else {
                    self.chain.push(Word::Junk);
                }
            }
            if g.far {
                self.pending_far = true;
                self.flush_far()?;
            }
            self.ops += 1;
            marker.expect("LoadConst has a value slot")
        };
        self.binary(GBinOp::And)?;
        self.flush_far()?;
        // add esp, eax
        let idx = self.select(TypeKey::AddEsp(EAX), &[EAX])?;
        let g = self.map.get(idx).clone();
        self.push_gadget_word(g.vaddr);
        for _ in 0..g.slots {
            self.chain.push(Word::Junk);
        }
        let anchor = self.chain.len();
        self.chain.set(delta_slot, Word::DeltaTo { label, anchor });
        self.ops += 1;
        Ok(())
    }

    // ---- statements -----------------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), ChainError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), ChainError> {
        match s {
            Stmt::Let(name, e) => {
                self.expr(e, 0)?;
                let addr = self.slot_addr(name)?;
                self.store_cell(addr)
            }
            Stmt::Store(a, v) => {
                self.expr(a, 0)?;
                let t = self.temp_addr(0)?;
                self.store_cell(t)?;
                self.expr(v, 1)?;
                self.load_cell_into_ecx(t)?;
                self.emit(TypeKey::StoreMem(ECX, EAX), None, &[EAX, ECX])
            }
            Stmt::Store8(a, v) => {
                // w = ([a] & ~0xff) | (v & 0xff); word-store w at a.
                let t_addr = self.temp_addr(0)?;
                let t_val = self.temp_addr(1)?;
                self.expr(a, 0)?;
                self.store_cell(t_addr)?;
                self.expr(v, 2)?;
                self.load_const(ECX, Word::Const(0xff), &[EAX])?;
                self.binary(GBinOp::And)?;
                self.store_cell(t_val)?;
                self.load_cell_into_ecx(t_addr)?;
                self.emit(TypeKey::LoadMem(EAX, ECX), None, &[ECX])?; // old word
                self.load_const(ECX, Word::Const(0xffff_ff00), &[EAX])?;
                self.binary(GBinOp::And)?;
                self.load_cell_into_ecx(t_val)?;
                self.binary(GBinOp::Or)?; // eax = new word
                self.load_cell_into_ecx(t_addr)?;
                self.emit(TypeKey::StoreMem(ECX, EAX), None, &[EAX, ECX])
            }
            Stmt::Expr(e) => self.expr(e, 0),
            Stmt::If(cond, then, els) => {
                self.expr(cond, 0)?;
                let else_l = self.chain.label();
                self.branch_if_zero(else_l)?;
                self.stmts(then)?;
                if els.is_empty() {
                    self.flush_far()?;
                    self.chain.bind(else_l);
                } else {
                    let end_l = self.chain.label();
                    self.jump(end_l)?;
                    self.chain.bind(else_l);
                    self.stmts(els)?;
                    self.flush_far()?;
                    self.chain.bind(end_l);
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                self.flush_far()?;
                let top = self.chain.label();
                self.chain.bind(top);
                let end = self.chain.label();
                self.expr(cond, 0)?;
                self.branch_if_zero(end)?;
                self.loops.push((top, end));
                self.stmts(body)?;
                self.loops.pop();
                self.jump(top)?;
                self.chain.bind(end);
                Ok(())
            }
            Stmt::Break => {
                let (_, end) = *self.loops.last().ok_or(ChainError::NotInLoop)?;
                self.jump(end)
            }
            Stmt::Continue => {
                let (top, _) = *self.loops.last().ok_or(ChainError::NotInLoop)?;
                self.jump(top)
            }
            Stmt::Return(e) => {
                self.expr(e, 0)?;
                let cells = self.cells()?;
                self.store_cell((cells as i64 + runtime::CELL_RET as i64) as u32)?;
                self.jump(self.epilogue)
            }
        }
    }
}

/// Compiles `func` into a verification chain against the gadgets of
/// `img` (the preliminary protected image).
///
/// `frame_base` is the address of the function's chain frame
/// (size ≥ [`frame_size`]); `scratch` is a writable scratch address for
/// gadget memory preconditions.
pub fn compile_chain(
    func: &Function,
    map: &GadgetMap,
    img: &LinkedImage,
    frame_base: u32,
    scratch: u32,
    policy: Policy,
) -> Result<CompiledChain, ChainError> {
    compile_chain_with_guards(func, map, img, frame_base, scratch, policy, &[])
}

/// Like [`compile_chain`], additionally executing each gadget in
/// `guards` (by vaddr) once at chain start — deterministic coverage of
/// explicitly designated critical code (paper §IV-A).
#[allow(clippy::too_many_arguments)]
pub fn compile_chain_with_guards(
    func: &Function,
    map: &GadgetMap,
    img: &LinkedImage,
    frame_base: u32,
    scratch: u32,
    policy: Policy,
    guards: &[u32],
) -> Result<CompiledChain, ChainError> {
    compile_chain_traced(func, map, img, frame_base, scratch, policy, guards, None)
}

/// [`compile_chain_with_guards`] with optional tracing: a span per
/// chain (`chain:<func>` in the `ropc` lane) and gadget-preference
/// counters (`chain.pick.overlapping` vs `chain.pick.other` — the
/// paper's §IV-B metric), accumulated over every selection the
/// compiler makes.
#[allow(clippy::too_many_arguments)]
pub fn compile_chain_traced(
    func: &Function,
    map: &GadgetMap,
    img: &LinkedImage,
    frame_base: u32,
    scratch: u32,
    policy: Policy,
    guards: &[u32],
    trace: Option<&Tracer>,
) -> Result<CompiledChain, ChainError> {
    let span = trace.map(|t| t.span(&format!("chain:{}", func.name), "ropc"));
    let seed = match &policy {
        Policy::First => 0x1337,
        Policy::PreferOverlapping { seed, .. } | Policy::Grouped { seed } => *seed | 1,
    };
    let overlap_index = match &policy {
        Policy::PreferOverlapping { ranges, .. } => Some(RangeSet::new(ranges)),
        _ => None,
    };
    let mut ctx = Ctx {
        map,
        img,
        policy,
        rng: seed,
        chain: Chain::new(),
        pending_far: false,
        func,
        frame_base,
        scratch,
        locals: func.locals(),
        loops: Vec::new(),
        epilogue: ChainLabel(usize::MAX), // replaced below
        ops: 0,
        picks_overlapping: 0,
        picks_other: 0,
        overlap_index,
    };
    let epilogue = ctx.chain.label();
    ctx.epilogue = epilogue;

    ctx.emit_guards(guards)?;
    ctx.stmts(&func.body)?;
    // Fall-through returns 0.
    let cells = ctx.cells()?;
    ctx.load_const(EAX, Word::Const(0), &[])?;
    ctx.store_cell((cells as i64 + runtime::CELL_RET as i64) as u32)?;
    ctx.flush_far()?;
    ctx.chain.bind(epilogue);

    // Epilogue: pivot to the exit slot.
    let exitslot = img
        .symbol(runtime::EXITSLOT)
        .ok_or_else(|| ChainError::UnknownGlobal(runtime::EXITSLOT.into()))?
        .vaddr;
    ctx.pivot_to(exitslot)?;

    let used_gadgets = ctx.chain.gadget_addrs();
    if let Some(t) = trace {
        t.count("chain.pick.overlapping", ctx.picks_overlapping);
        t.count("chain.pick.other", ctx.picks_other);
    }
    drop(span);
    Ok(CompiledChain {
        chain: ctx.chain,
        used_gadgets,
        ops: ctx.ops,
    })
}
