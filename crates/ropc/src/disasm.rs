//! Chain disassembly: render a serialized chain's words as gadget
//! invocations — the analysis view an adversary (or a debugging
//! developer) sees, modulo the paper's §VI hardening.

use std::collections::HashMap;

use parallax_gadgets::GadgetMap;
use parallax_image::LinkedImage;

/// One decoded chain word.
#[derive(Debug, Clone)]
pub enum ChainWord {
    /// A gadget address, with its disassembly and typed effects.
    Gadget {
        /// Word index in the chain.
        index: usize,
        /// Gadget vaddr.
        vaddr: u32,
        /// Disassembly text.
        disasm: String,
        /// Effects summary.
        effects: String,
        /// Host function containing the gadget.
        host: String,
    },
    /// A non-gadget word (constant, junk, or pivot target).
    Data {
        /// Word index in the chain.
        index: usize,
        /// Raw value.
        value: u32,
        /// Best-effort annotation (e.g. a symbol the value points at).
        note: Option<String>,
    },
}

/// Disassembles chain `bytes` (as stored in the image) against the
/// image's gadget map.
pub fn disasm_chain(img: &LinkedImage, map: &GadgetMap, bytes: &[u8]) -> Vec<ChainWord> {
    let by_addr: HashMap<u32, usize> = map
        .gadgets()
        .iter()
        .enumerate()
        .map(|(i, g)| (g.vaddr, i))
        .collect();
    let mut out = Vec::new();
    for (index, chunk) in bytes.chunks_exact(4).enumerate() {
        let value = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        match by_addr.get(&value) {
            Some(&gi) => {
                let g = map.get(gi);
                out.push(ChainWord::Gadget {
                    index,
                    vaddr: value,
                    disasm: g.disasm.clone(),
                    effects: g
                        .effects
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    host: img
                        .symbol_at(value)
                        .map(|s| s.name.clone())
                        .unwrap_or_else(|| "?".into()),
                });
            }
            None => {
                let note = img
                    .symbol_at(value)
                    .map(|s| format!("&{}{:+}", s.name, value as i64 - s.vaddr as i64));
                out.push(ChainWord::Data { index, value, note });
            }
        }
    }
    out
}

/// Renders a disassembled chain as text.
pub fn format_chain(words: &[ChainWord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for w in words {
        match w {
            ChainWord::Gadget {
                index,
                vaddr,
                disasm,
                effects,
                host,
            } => {
                // Writes to a String are infallible.
                let _ = writeln!(
                    out,
                    "[{index:>4}] {vaddr:#010x}  {disasm:<40} ; {effects}  (in {host})"
                );
            }
            ChainWord::Data { index, value, note } => {
                let _ = match note {
                    Some(n) => writeln!(out, "[{index:>4}] {value:#010x}  .data {n}"),
                    None => writeln!(out, "[{index:>4}] {value:#010x}  .data"),
                };
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{Chain, Word};

    #[test]
    fn disassembles_gadgets_and_data() {
        // Build a tiny image with one gadget.
        let mut p = parallax_image::Program::new();
        let mut main = parallax_x86::Asm::new();
        main.mov_ri(parallax_x86::Reg32::Eax, 1);
        main.int(0x80);
        p.add_func("main", main.finish().unwrap());
        let mut gf = parallax_x86::Asm::new();
        gf.pop_r(parallax_x86::Reg32::Eax);
        gf.ret();
        p.add_func("g", gf.finish().unwrap());
        p.set_entry("main");
        let img = p.link().unwrap();
        let map = parallax_gadgets::build_map(&img);
        let gaddr = img.symbol("g").unwrap().vaddr;

        let mut c = Chain::new();
        c.push(Word::Gadget(gaddr));
        c.push(Word::Const(0x1234));
        let bytes = c.serialize(0x5000).unwrap();

        let words = disasm_chain(&img, &map, &bytes);
        assert_eq!(words.len(), 2);
        assert!(matches!(&words[0], ChainWord::Gadget { disasm, .. } if disasm == "pop eax; ret"));
        assert!(matches!(&words[1], ChainWord::Data { value: 0x1234, .. }));
        let text = format_chain(&words);
        assert!(text.contains("pop eax; ret"));
        assert!(text.contains("(in g)"));
    }
}
