//! The ROP chain compiler and loader runtime for Parallax.
//!
//! Verification code (paper §V) is produced here: IR functions are
//! translated into ROP chains ([`compile`]) laid out as 32-bit words in
//! data memory ([`chain`]), bootstrapped and unwound by a small native
//! runtime ([`runtime`]). Gadget selection honours the paper's §III
//! preference for gadgets overlapping the protected instructions, and
//! its §V-B probabilistic mode selects uniformly among shape-equivalent
//! gadgets so multiple variants of one chain can be generated.

#![warn(missing_docs)]

pub mod chain;
pub mod compile;
pub mod disasm;
pub mod runtime;

pub use chain::{Chain, ChainLabel, ChainLayoutError, Word};
pub use compile::{
    compile_chain, compile_chain_traced, compile_chain_with_guards, frame_size, ChainError,
    CompiledChain, Policy, TEMP_SLOTS,
};
pub use disasm::{disasm_chain, format_chain, ChainWord};
pub use runtime::{
    fnv1a, install_runtime, make_chain_checker, make_stub, make_stub_full, make_stub_with_checker,
    CALLSLOT, CALL_NATIVE, CELLS, CHAIN_CK_EXIT, CHAIN_ENTER, CHAIN_EXIT, EXITSLOT,
};
