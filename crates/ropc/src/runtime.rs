//! The native chain-loader runtime (paper §V-A).
//!
//! Three small native routines plus a few data cells bootstrap and
//! unwind ROP chains:
//!
//! * `__plx_chain_enter(chain)` — saves registers (`pushad`), stashes
//!   the stack pointer, pivots `esp` into the chain, and `ret`s into
//!   the first gadget;
//! * `__plx_chain_exit` — the epilogue target: restores the native
//!   stack and registers (`popad`) and returns the chain's result;
//! * `__plx_call_native` — the trampoline chains use to call ordinary
//!   functions: it switches back to the native stack, pushes the
//!   arguments the chain stored in the argument buffer, performs the
//!   call, and pivots back into the chain at its resume point.
//!
//! The paper's loader performs the same duties (pushad/popad around the
//! chain, a `pop esp` epilogue returning to the calling frame).

use parallax_image::Program;
use parallax_x86::{AluOp, Asm, Assembled, Cond, Mem, Reg32, RelocKind, SymReloc};

/// Symbol of the cell block.
pub const CELLS: &str = "__plx_cells";
/// Symbol of the call-trampoline pivot slot.
pub const CALLSLOT: &str = "__plx_callslot";
/// Symbol of the chain-exit pivot slot.
pub const EXITSLOT: &str = "__plx_exitslot";
/// Symbol of the enter routine.
pub const CHAIN_ENTER: &str = "__plx_chain_enter";
/// Symbol of the exit routine.
pub const CHAIN_EXIT: &str = "__plx_chain_exit";
/// Symbol of the native-call trampoline.
pub const CALL_NATIVE: &str = "__plx_call_native";

/// Offset of the saved native stack pointer within the cells.
pub const CELL_SAVED_ESP: i32 = 0;
/// Offset of the chain return value.
pub const CELL_RET: i32 = 4;
/// Offset of the chain resume stack pointer.
pub const CELL_RESUME: i32 = 8;
/// Offset of the native-call result.
pub const CELL_RET_TMP: i32 = 12;
/// Offset of the native-call target address.
pub const CELL_ARG_TARGET: i32 = 20;
/// Offset of the native-call argument count.
pub const CELL_ARG_N: i32 = 24;
/// Offset of the first native-call argument (1-based slots).
pub const CELL_ARGS: i32 = 28;
/// Maximum native-call arguments supported by the trampoline.
pub const MAX_NATIVE_ARGS: usize = 8;
/// Total size of the cell block.
pub const CELLS_SIZE: u32 = (CELL_ARGS as u32) + 4 * MAX_NATIVE_ARGS as u32;

fn chain_enter() -> Assembled {
    let mut a = Asm::new();
    a.pushad();
    a.mov_ri_sym(Reg32::Eax, CELLS, 0);
    a.mov_mr(Mem::base_disp(Reg32::Eax, CELL_SAVED_ESP), Reg32::Esp);
    // Argument sits above the pushad frame (32) and return address (4).
    a.mov_rm(Reg32::Eax, Mem::base_disp(Reg32::Esp, 36));
    a.mov_rr(Reg32::Esp, Reg32::Eax);
    a.ret(); // into the first gadget
    a.finish().expect("chain_enter assembles")
}

fn chain_exit() -> Assembled {
    let mut a = Asm::new();
    a.mov_ri_sym(Reg32::Esp, CELLS, 0);
    a.mov_rm(Reg32::Esp, Mem::base_disp(Reg32::Esp, CELL_SAVED_ESP));
    a.popad();
    a.mov_ri_sym(Reg32::Eax, CELLS, 0);
    a.mov_rm(Reg32::Eax, Mem::base_disp(Reg32::Eax, CELL_RET));
    a.ret();
    a.finish().expect("chain_exit assembles")
}

fn call_native() -> Assembled {
    let mut a = Asm::new();
    // Switch to the native stack, below the saved pushad frame.
    a.mov_ri_sym(Reg32::Esp, CELLS, 0);
    a.mov_rm(Reg32::Esp, Mem::base_disp(Reg32::Esp, CELL_SAVED_ESP));
    a.alu_ri(AluOp::Sub, Reg32::Esp, 0x40);
    a.mov_ri_sym(Reg32::Edx, CELLS, 0);
    a.mov_rm(Reg32::Ecx, Mem::base_disp(Reg32::Edx, CELL_ARG_N));
    let do_call = a.label();
    let top = a.here();
    a.test_rr(Reg32::Ecx, Reg32::Ecx);
    a.jcc(Cond::E, do_call);
    // push args right-to-left: arg[ecx] at cells + CELL_ARG_N + 4*ecx
    a.push_m(Mem {
        base: Some(Reg32::Edx),
        index: Some((Reg32::Ecx, 4)),
        disp: CELL_ARG_N,
    });
    a.dec_r(Reg32::Ecx);
    a.jmp(top);
    a.bind(do_call);
    a.mov_rm(Reg32::Eax, Mem::base_disp(Reg32::Edx, CELL_ARG_TARGET));
    a.call_r(Reg32::Eax);
    // The callee may clobber edx; reload the cell base.
    a.mov_ri_sym(Reg32::Edx, CELLS, 0);
    a.mov_mr(Mem::base_disp(Reg32::Edx, CELL_RET_TMP), Reg32::Eax);
    a.mov_rm(Reg32::Esp, Mem::base_disp(Reg32::Edx, CELL_RESUME));
    a.ret(); // back into the chain
    a.finish().expect("call_native assembles")
}

/// Installs the runtime (routines + cells) into `prog`. Idempotent.
pub fn install_runtime(prog: &mut Program) {
    if prog.func(CHAIN_ENTER).is_some() {
        return;
    }
    prog.add_func(CHAIN_ENTER, chain_enter());
    prog.add_func(CHAIN_EXIT, chain_exit());
    prog.add_func(CALL_NATIVE, call_native());
    prog.add_bss(CELLS, CELLS_SIZE);
    prog.add_data_with_relocs(
        CALLSLOT,
        vec![0; 4],
        vec![SymReloc {
            offset: 0,
            symbol: CALL_NATIVE.to_owned(),
            kind: RelocKind::Abs32,
            addend: 0,
        }],
    );
    prog.add_data_with_relocs(
        EXITSLOT,
        vec![0; 4],
        vec![SymReloc {
            offset: 0,
            symbol: CHAIN_EXIT.to_owned(),
            kind: RelocKind::Abs32,
            addend: 0,
        }],
    );
}

/// Exit status of the chain-checksum tamper response (§VI-C).
pub const CHAIN_CK_EXIT: i32 = 0x6b;

/// Builds a native FNV-1a checker over a data object (the verification
/// code, which lives in data memory — §VI-C: chains *can* be protected
/// by traditional checksumming, without Wurster risk, because they are
/// legitimately read as data). `data_sym` is summed over
/// `[len_sym]` bytes and compared with `[exp_sym]`; mismatch exits with
/// [`CHAIN_CK_EXIT`].
pub fn make_chain_checker(data_sym: &str, len_sym: &str, exp_sym: &str) -> Assembled {
    let mut a = Asm::new();
    a.push_r(Reg32::Ebx);
    a.mov_ri_sym(Reg32::Ecx, data_sym, 0);
    a.mov_ri_sym(Reg32::Ebx, len_sym, 0);
    a.mov_rm(Reg32::Ebx, Mem::base(Reg32::Ebx));
    a.alu_rr(AluOp::Add, Reg32::Ebx, Reg32::Ecx); // end pointer
    a.mov_ri(Reg32::Eax, 0x811c_9dc5u32 as i32); // FNV offset basis
    let done = a.label();
    let top = a.here();
    a.alu_rr(AluOp::Cmp, Reg32::Ecx, Reg32::Ebx);
    a.jcc(Cond::E, done);
    a.movzx_rm8(Reg32::Edx, Mem::base(Reg32::Ecx));
    a.alu_rr(AluOp::Xor, Reg32::Eax, Reg32::Edx);
    a.imul_rri(Reg32::Eax, Reg32::Eax, 16_777_619);
    a.inc_r(Reg32::Ecx);
    a.jmp(top);
    a.bind(done);
    a.mov_ri_sym(Reg32::Ecx, exp_sym, 0);
    a.mov_rm(Reg32::Ecx, Mem::base(Reg32::Ecx));
    let ok = a.label();
    a.alu_rr(AluOp::Cmp, Reg32::Eax, Reg32::Ecx);
    a.jcc(Cond::E, ok);
    a.mov_ri(Reg32::Eax, 1);
    a.mov_ri(Reg32::Ebx, CHAIN_CK_EXIT);
    a.int(0x80);
    a.bind(ok);
    a.pop_r(Reg32::Ebx);
    a.ret();
    a.finish().expect("chain checker assembles")
}

/// Host-side FNV-1a matching [`make_chain_checker`].
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(16_777_619);
    }
    h
}

/// Builds the stub that replaces a protected function's body: it copies
/// its stack arguments into the chain frame, obtains the chain address
/// (a static chain symbol, or by calling a generator that returns one),
/// and runs the chain through [`CHAIN_ENTER`].
pub fn make_stub(
    params: usize,
    frame_sym: &str,
    chain_sym: Option<&str>,
    generator_sym: Option<&str>,
) -> Assembled {
    make_stub_with_checker(params, frame_sym, chain_sym, generator_sym, None)
}

/// [`make_stub`] plus an optional §VI-C chain-checksum call performed
/// before every chain invocation.
pub fn make_stub_with_checker(
    params: usize,
    frame_sym: &str,
    chain_sym: Option<&str>,
    generator_sym: Option<&str>,
    checker_sym: Option<&str>,
) -> Assembled {
    make_stub_full(
        params,
        frame_sym,
        chain_sym,
        generator_sym,
        checker_sym,
        None,
    )
}

/// The full stub builder: optionally checksums the chain material
/// before the call (§VI-C) and *wipes* the regenerated plaintext chain
/// buffer after it (§V-B self-modification: the decrypted chain never
/// persists between calls). `wipe` is `(buffer_sym, len_cell_sym)`.
pub fn make_stub_full(
    params: usize,
    frame_sym: &str,
    chain_sym: Option<&str>,
    generator_sym: Option<&str>,
    checker_sym: Option<&str>,
    wipe: Option<(&str, &str)>,
) -> Assembled {
    let mut a = Asm::new();
    if let Some(ck) = checker_sym {
        a.call_sym(ck);
    }
    if params > 0 {
        a.mov_ri_sym(Reg32::Ecx, frame_sym, 0);
        for i in 0..params {
            a.mov_rm(Reg32::Eax, Mem::base_disp(Reg32::Esp, 4 + 4 * i as i32));
            a.mov_mr(Mem::base_disp(Reg32::Ecx, 4 * i as i32), Reg32::Eax);
        }
    }
    match (chain_sym, generator_sym) {
        (_, Some(generator)) => {
            a.call_sym(generator);
            a.push_r(Reg32::Eax);
        }
        (Some(chain), None) => {
            a.push_i_sym(chain, 0);
        }
        (None, None) => panic!("stub needs a chain symbol or a generator"),
    }
    a.call_sym(CHAIN_ENTER);
    a.alu_ri(AluOp::Add, Reg32::Esp, 4);
    if let Some((buf_sym, len_sym)) = wipe {
        // Zero the plaintext chain buffer; eax (the result) survives in
        // a stack slot.
        a.push_r(Reg32::Eax);
        a.mov_ri_sym(Reg32::Ecx, buf_sym, 0);
        a.mov_ri_sym(Reg32::Edx, len_sym, 0);
        a.mov_rm(Reg32::Edx, Mem::base(Reg32::Edx));
        let done = a.label();
        let top = a.here();
        a.test_rr(Reg32::Edx, Reg32::Edx);
        a.jcc(Cond::E, done);
        a.dec_r(Reg32::Edx);
        a.mov_mi8(
            Mem {
                base: Some(Reg32::Ecx),
                index: Some((Reg32::Edx, 1)),
                disp: 0,
            },
            0,
        );
        a.jmp(top);
        a.bind(done);
        a.pop_r(Reg32::Eax);
    }
    a.ret();
    a.finish().expect("stub assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_assembles_and_links() {
        let mut p = Program::new();
        let mut main = Asm::new();
        main.mov_ri(Reg32::Eax, 1);
        main.mov_ri(Reg32::Ebx, 0);
        main.int(0x80);
        p.add_func("main", main.finish().unwrap());
        install_runtime(&mut p);
        install_runtime(&mut p); // idempotent
        p.set_entry("main");
        let img = p.link().unwrap();
        assert!(img.symbol(CHAIN_ENTER).is_some());
        assert!(img.symbol(CELLS).unwrap().size >= CELLS_SIZE);
        // The call slot points at the trampoline.
        let slot = img.symbol(CALLSLOT).unwrap();
        let val = u32::from_le_bytes(img.read(slot.vaddr, 4).unwrap().try_into().unwrap());
        assert_eq!(val, img.symbol(CALL_NATIVE).unwrap().vaddr);
    }

    #[test]
    fn stub_shape() {
        let s = make_stub(2, "frame", Some("chain"), None);
        assert!(!s.bytes.is_empty());
        assert_eq!(
            s.relocs
                .iter()
                .filter(|r| r.kind == RelocKind::Abs32)
                .count(),
            2 // frame + chain
        );
        let s2 = make_stub(0, "frame", None, Some("gen"));
        assert!(s2.relocs.iter().any(|r| r.symbol == "gen"));
    }
}
