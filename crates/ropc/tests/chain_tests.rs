//! End-to-end verification-chain tests: translate IR functions into
//! ROP chains, execute them through the loader runtime, and check that
//! they compute exactly what the native code computed — and stop doing
//! so when a used gadget is tampered with.

// Test helpers unwrap freely (the crate-level unwrap_used deny is for
// production paths).
#![allow(clippy::unwrap_used)]

use parallax_compiler::ir::build::*;
use parallax_compiler::{compile_module, Function, Module, Stmt};
use parallax_gadgets::GadgetMap;
use parallax_image::LinkedImage;
use parallax_rewrite::{standard_set, STDSET_NAME};
use parallax_ropc::{compile_chain, frame_size, install_runtime, make_stub, CompiledChain, Policy};
use parallax_vm::{Exit, Vm};

/// Protects `vfunc` of `module` by translating it to a chain, applying
/// the full two-phase link. Returns the final image and the chain info.
fn protect(module: &Module, vfunc: &str, policy: Policy) -> (LinkedImage, CompiledChain) {
    let mut prog = compile_module(module).expect("module compiles");
    prog.add_func(STDSET_NAME, standard_set());
    install_runtime(&mut prog);

    let f = module.get_func(vfunc).expect("vfunc exists").clone();
    let frame_sym = format!("__plx_frame_{vfunc}");
    let chain_sym = format!("__plx_chain_{vfunc}");
    prog.add_bss(&frame_sym, frame_size(&f));
    prog.add_bss("__plx_scratch", 4096);

    // Replace the verification function's body with the loader stub.
    let stub = make_stub(f.params.len(), &frame_sym, Some(&chain_sym), None);
    {
        let slot = prog.func_mut(vfunc).unwrap();
        slot.bytes = stub.bytes.clone();
        slot.relocs = stub.relocs.clone();
        slot.markers = stub.markers.clone();
    }

    // Pass 1: empty placeholder to discover the chain length.
    prog.add_data(&chain_sym, Vec::new());
    let img1 = prog.link().expect("pass-1 links");
    let map = GadgetMap::new(parallax_gadgets::find_gadgets(&img1));
    let frame = img1.symbol(&frame_sym).unwrap().vaddr;
    let scratch = img1.symbol("__plx_scratch").unwrap().vaddr;
    let compiled1 = compile_chain(&f, &map, &img1, frame, scratch, policy.clone())
        .expect("chain compiles (pass 1)");

    // Pass 2: re-link with the placeholder sized, recompile against the
    // final addresses, and fill in the bytes.
    prog.data_item_mut(&chain_sym).unwrap().bytes = vec![0; compiled1.chain.byte_len()];
    let img2 = prog.link().expect("pass-2 links");
    let map2 = GadgetMap::new(parallax_gadgets::find_gadgets(&img2));
    let frame2 = img2.symbol(&frame_sym).unwrap().vaddr;
    let scratch2 = img2.symbol("__plx_scratch").unwrap().vaddr;
    let compiled2 =
        compile_chain(&f, &map2, &img2, frame2, scratch2, policy).expect("chain compiles (pass 2)");
    assert_eq!(
        compiled1.chain.byte_len(),
        compiled2.chain.byte_len(),
        "chain length must be stable across passes"
    );
    let base = img2.symbol(&chain_sym).unwrap().vaddr;
    let bytes = compiled2.chain.serialize(base).expect("serializes");
    prog.data_item_mut(&chain_sym).unwrap().bytes = bytes;
    let img3 = prog.link().expect("final link");
    (img3, compiled2)
}

fn run_vf(img: &LinkedImage, func: &str, args: &[u32]) -> Result<u32, Exit> {
    let mut vm = Vm::new(img);
    let entry = img.symbol(func).unwrap().vaddr;
    vm.call_function(entry, args)
}

#[test]
fn straight_line_arithmetic_chain() {
    let mut m = Module::new();
    m.func(Function::new(
        "vf",
        ["a", "b"],
        vec![
            let_("x", add(l("a"), c(10))),
            let_("y", mul(l("b"), c(3))),
            ret(sub(add(l("x"), l("y")), c(1))),
        ],
    ));
    m.func(Function::new(
        "main",
        [],
        vec![ret(call("vf", vec![c(1), c(2)]))],
    ));
    m.entry("main");

    // Native result first.
    let native = compile_module(&m).unwrap().link().unwrap();
    let expect = {
        let mut vm = Vm::new(&native);
        let entry = native.symbol("vf").unwrap().vaddr;
        vm.call_function(entry, &[5, 7]).unwrap()
    };
    assert_eq!(expect, (5 + 10) + (7 * 3) - 1);

    let (img, compiled) = protect(&m, "vf", Policy::First);
    assert!(compiled.ops > 5);
    assert_eq!(run_vf(&img, "vf", &[5, 7]).unwrap(), expect);
    // Different arguments, same chain.
    assert_eq!(run_vf(&img, "vf", &[100, 0]).unwrap(), 109);
}

#[test]
fn control_flow_chain_if_and_while() {
    let mut m = Module::new();
    // vf(n) = sum of odd i in 1..=n
    m.func(Function::new(
        "vf",
        ["n"],
        vec![
            let_("i", c(0)),
            let_("sum", c(0)),
            while_(
                lt_s(l("i"), l("n")),
                vec![
                    let_("i", add(l("i"), c(1))),
                    if_(
                        eq(and(l("i"), c(1)), c(1)),
                        vec![let_("sum", add(l("sum"), l("i")))],
                        vec![],
                    ),
                ],
            ),
            ret(l("sum")),
        ],
    ));
    m.func(Function::new("main", [], vec![ret(c(0))]));
    m.entry("main");

    let (img, _) = protect(&m, "vf", Policy::First);
    assert_eq!(run_vf(&img, "vf", &[10]).unwrap(), 25); // 1+3+5+7+9
    assert_eq!(run_vf(&img, "vf", &[0]).unwrap(), 0);
    assert_eq!(run_vf(&img, "vf", &[1]).unwrap(), 1);
    assert_eq!(run_vf(&img, "vf", &[100]).unwrap(), 2500);
}

#[test]
fn comparisons_and_bitwise_chain() {
    let mut m = Module::new();
    m.func(Function::new(
        "vf",
        ["a", "b"],
        vec![
            let_("r", c(0)),
            if_(
                lt_s(l("a"), l("b")),
                vec![let_("r", or(l("r"), c(1)))],
                vec![],
            ),
            if_(
                lt_u(l("a"), l("b")),
                vec![let_("r", or(l("r"), c(2)))],
                vec![],
            ),
            if_(
                eq(l("a"), l("b")),
                vec![let_("r", or(l("r"), c(4)))],
                vec![],
            ),
            if_(
                ne(l("a"), l("b")),
                vec![let_("r", or(l("r"), c(8)))],
                vec![],
            ),
            if_(
                ge_s(l("a"), l("b")),
                vec![let_("r", or(l("r"), c(16)))],
                vec![],
            ),
            ret(l("r")),
        ],
    ));
    m.func(Function::new("main", [], vec![ret(c(0))]));
    m.entry("main");
    let (img, _) = protect(&m, "vf", Policy::First);

    // a < b signed and unsigned
    assert_eq!(run_vf(&img, "vf", &[3, 9]).unwrap(), 1 | 2 | 8);
    // equal
    assert_eq!(run_vf(&img, "vf", &[7, 7]).unwrap(), 4 | 16);
    // a = -1 (signed less, unsigned greater)
    assert_eq!(run_vf(&img, "vf", &[0xffff_ffff, 4]).unwrap(), 1 | 8);
    // a > b both ways
    assert_eq!(run_vf(&img, "vf", &[9, 2]).unwrap(), 8 | 16);
}

#[test]
fn memory_and_shift_chain() {
    let mut m = Module::new();
    m.global("table", vec![1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]);
    m.bss("out", 16);
    m.func(Function::new(
        "vf",
        ["k"],
        vec![
            // out[0] = (table[0] + table[1] + table[2]) << k
            let_(
                "s",
                add(
                    load(g("table")),
                    add(load(add(g("table"), c(4))), load(add(g("table"), c(8)))),
                ),
            ),
            store(g("out"), shl(l("s"), l("k"))),
            ret(load(g("out"))),
        ],
    ));
    m.func(Function::new("main", [], vec![ret(c(0))]));
    m.entry("main");
    let (img, _) = protect(&m, "vf", Policy::First);
    assert_eq!(run_vf(&img, "vf", &[0]).unwrap(), 6);
    assert_eq!(run_vf(&img, "vf", &[4]).unwrap(), 96);
}

#[test]
fn syscall_chain_ptrace_detector() {
    // The paper's running example as verification code.
    let mut m = Module::new();
    m.func(Function::new(
        "check_ptrace",
        [],
        vec![if_(
            eq(syscall(26, vec![c(0)]), c(0)),
            vec![ret(c(0))],
            vec![ret(c(1))],
        )],
    ));
    m.func(Function::new("main", [], vec![ret(c(0))]));
    m.entry("main");
    let (img, _) = protect(&m, "check_ptrace", Policy::First);

    // Clean run: no debugger, detector returns 0.
    assert_eq!(run_vf(&img, "check_ptrace", &[]).unwrap(), 0);

    // With a debugger attached, the chain detects it.
    let mut vm = Vm::new(&img);
    vm.attach_debugger();
    let entry = img.symbol("check_ptrace").unwrap().vaddr;
    assert_eq!(vm.call_function(entry, &[]).unwrap(), 1);
}

#[test]
fn native_call_from_chain() {
    let mut m = Module::new();
    m.func(Function::new(
        "helper",
        ["x"],
        vec![ret(mul(l("x"), l("x")))],
    ));
    m.func(Function::new(
        "vf",
        ["a"],
        vec![ret(add(call("helper", vec![l("a")]), c(1)))],
    ));
    m.func(Function::new("main", [], vec![ret(c(0))]));
    m.entry("main");
    let (img, _) = protect(&m, "vf", Policy::First);
    assert_eq!(run_vf(&img, "vf", &[6]).unwrap(), 37);
    assert_eq!(run_vf(&img, "vf", &[0]).unwrap(), 1);
}

#[test]
fn tampering_with_used_gadget_breaks_chain() {
    let mut m = Module::new();
    m.func(Function::new(
        "vf",
        ["a", "b"],
        vec![ret(add(l("a"), l("b")))],
    ));
    m.func(Function::new("main", [], vec![ret(c(0))]));
    m.entry("main");
    let (img, compiled) = protect(&m, "vf", Policy::First);
    assert_eq!(run_vf(&img, "vf", &[2, 3]).unwrap(), 5);

    // Tamper with every used gadget in turn; each time, the chain must
    // stop producing the correct result.
    let mut detected = 0;
    for &gaddr in &compiled.used_gadgets {
        let mut broken = img.clone();
        // Overwrite the gadget's first byte with a NOP (0x90) — the
        // canonical attack from Listing 2.
        broken.write(gaddr, &[0x90]);
        let outcome = run_vf(&broken, "vf", &[2, 3]);
        match outcome {
            Ok(5) => {} // this particular patch went unnoticed
            _ => detected += 1,
        }
    }
    assert!(
        detected as f64 >= compiled.used_gadgets.len() as f64 * 0.8,
        "most gadget tampering must break the chain: {detected}/{}",
        compiled.used_gadgets.len()
    );
}

#[test]
fn probabilistic_variants_have_identical_shape() {
    let mut m = Module::new();
    m.func(Function::new(
        "vf",
        ["a"],
        vec![let_("x", add(l("a"), c(3))), ret(xor(l("x"), c(0x55)))],
    ));
    m.func(Function::new("main", [], vec![ret(c(0))]));
    m.entry("main");

    // Compile several Grouped variants against the same image.
    let (img, _) = protect(&m, "vf", Policy::Grouped { seed: 1 });
    let expect = run_vf(&img, "vf", &[10]).unwrap();
    assert_eq!(expect, (10 + 3) ^ 0x55);
}

#[test]
fn store8_in_chain() {
    let mut m = Module::new();
    m.global("buf", vec![0xaa, 0xbb, 0xcc, 0xdd, 0x11, 0x22, 0x33, 0x44]);
    m.func(Function::new(
        "vf",
        ["v"],
        vec![
            Stmt::Store8(add(g("buf"), c(1)), l("v")),
            ret(load(g("buf"))),
        ],
    ));
    m.func(Function::new("main", [], vec![ret(c(0))]));
    m.entry("main");
    let (img, _) = protect(&m, "vf", Policy::First);
    // Writing 0x7f at buf+1: word becomes dd cc 7f aa (LE: 0xddcc7faa)
    assert_eq!(run_vf(&img, "vf", &[0x7f]).unwrap(), 0xddcc_7faa);
}
