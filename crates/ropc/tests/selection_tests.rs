//! Focused tests of the chain compiler's gadget-selection rules, using
//! fabricated gadget maps (no VM execution — the chains are inspected
//! structurally).

// Test helpers unwrap freely (the crate-level unwrap_used deny is for
// production paths).
#![allow(clippy::unwrap_used)]

use parallax_compiler::ir::build::*;
use parallax_compiler::Function;
use parallax_gadgets::{Effect, GBinOp, Gadget, GadgetMap};
use parallax_image::LinkedImage;
use parallax_ropc::{compile_chain, install_runtime, ChainError, Policy, Word};
use parallax_x86::Reg32;

fn gadget(vaddr: u32, slots: u32, effects: Vec<Effect>, clobbers: Vec<Reg32>) -> Gadget {
    Gadget {
        vaddr,
        len: 2,
        far: false,
        slots,
        effects,
        clobbers,
        mem_preconditions: vec![],
        disasm: format!("fab@{vaddr:#x}"),
        insn_count: 2,
    }
}

/// A minimal runtime-bearing image (the chain compiler needs the cell
/// and pivot-slot symbols).
fn runtime_image() -> LinkedImage {
    let mut p = parallax_image::Program::new();
    let mut main = parallax_x86::Asm::new();
    main.mov_ri(Reg32::Eax, 1);
    main.int(0x80);
    p.add_func("main", main.finish().unwrap());
    install_runtime(&mut p);
    p.add_bss("frame", 512);
    p.add_bss("scratch", 512);
    p.set_entry("main");
    p.link().unwrap()
}

/// The full fabricated standard set on the chain ABI.
fn full_map(extra: Vec<Gadget>) -> GadgetMap {
    let mut g = vec![
        gadget(
            0x100,
            1,
            vec![Effect::LoadConst {
                dst: Reg32::Eax,
                slot: 0,
            }],
            vec![],
        ),
        gadget(
            0x102,
            1,
            vec![Effect::LoadConst {
                dst: Reg32::Ecx,
                slot: 0,
            }],
            vec![],
        ),
        gadget(
            0x104,
            0,
            vec![Effect::MovReg {
                dst: Reg32::Ecx,
                src: Reg32::Eax,
            }],
            vec![],
        ),
        gadget(
            0x106,
            0,
            vec![Effect::MovReg {
                dst: Reg32::Eax,
                src: Reg32::Ecx,
            }],
            vec![],
        ),
        gadget(
            0x108,
            0,
            vec![Effect::Binary {
                op: GBinOp::Add,
                dst: Reg32::Eax,
                src: Reg32::Ecx,
            }],
            vec![],
        ),
        gadget(
            0x10a,
            0,
            vec![Effect::Binary {
                op: GBinOp::Sub,
                dst: Reg32::Eax,
                src: Reg32::Ecx,
            }],
            vec![],
        ),
        gadget(
            0x10c,
            0,
            vec![Effect::Binary {
                op: GBinOp::Xor,
                dst: Reg32::Eax,
                src: Reg32::Ecx,
            }],
            vec![],
        ),
        gadget(
            0x10e,
            0,
            vec![Effect::LoadMem {
                dst: Reg32::Eax,
                addr: Reg32::Ecx,
                off: 0,
            }],
            vec![],
        ),
        gadget(
            0x110,
            0,
            vec![Effect::LoadMem {
                dst: Reg32::Ecx,
                addr: Reg32::Ecx,
                off: 0,
            }],
            vec![],
        ),
        gadget(
            0x112,
            0,
            vec![Effect::StoreMem {
                addr: Reg32::Ecx,
                off: 0,
                src: Reg32::Eax,
            }],
            vec![],
        ),
        gadget(0x114, 0, vec![Effect::PopEsp], vec![]),
        gadget(0x116, 0, vec![Effect::AddEsp { src: Reg32::Eax }], vec![]),
    ];
    g.extend(extra);
    GadgetMap::new(g)
}

#[test]
fn missing_gadget_type_is_reported() {
    let img = runtime_image();
    // Map with no Binary Add.
    let map = GadgetMap::new(vec![
        gadget(
            0x100,
            1,
            vec![Effect::LoadConst {
                dst: Reg32::Eax,
                slot: 0,
            }],
            vec![],
        ),
        gadget(
            0x102,
            1,
            vec![Effect::LoadConst {
                dst: Reg32::Ecx,
                slot: 0,
            }],
            vec![],
        ),
        gadget(
            0x112,
            0,
            vec![Effect::StoreMem {
                addr: Reg32::Ecx,
                off: 0,
                src: Reg32::Eax,
            }],
            vec![],
        ),
        gadget(0x114, 0, vec![Effect::PopEsp], vec![]),
    ]);
    let f = Function::new("vf", [], vec![ret(add(c(1), c(2)))]);
    let frame = img.symbol("frame").unwrap().vaddr;
    let scratch = img.symbol("scratch").unwrap().vaddr;
    let err = compile_chain(&f, &map, &img, frame, scratch, Policy::First).unwrap_err();
    assert!(matches!(err, ChainError::MissingGadget(_)), "{err}");
}

#[test]
fn clobbering_gadgets_avoided_while_register_is_live() {
    let img = runtime_image();
    // Two LoadConst(ecx) gadgets: the cheap one at 0x200 clobbers eax.
    let map = full_map(vec![gadget(
        0x200,
        1,
        vec![Effect::LoadConst {
            dst: Reg32::Ecx,
            slot: 0,
        }],
        vec![Reg32::Eax],
    )]);
    // `ret(a + 1)`: after evaluating `a` into eax, the constant loads
    // into ecx must NOT pick the eax-clobbering 0x200 gadget.
    let f = Function::new("vf", ["a"], vec![ret(add(l("a"), c(1)))]);
    let frame = img.symbol("frame").unwrap().vaddr;
    let scratch = img.symbol("scratch").unwrap().vaddr;
    let out = compile_chain(&f, &map, &img, frame, scratch, Policy::First).unwrap();

    // Find the Add gadget (0x108); the LoadConst(ecx) directly before
    // it (while eax holds `a`) must be the clean 0x102.
    let words = out.chain.words();
    let add_pos = words
        .iter()
        .position(|w| matches!(w, Word::Gadget(0x108)))
        .expect("add gadget used");
    let prior_loadconst = words[..add_pos]
        .iter()
        .rev()
        .find_map(|w| match w {
            Word::Gadget(v) if *v == 0x102 || *v == 0x200 => Some(*v),
            _ => None,
        })
        .expect("a LoadConst(ecx) precedes the add");
    assert_eq!(
        prior_loadconst, 0x102,
        "the eax-clobbering gadget must not be used while eax is live"
    );
}

#[test]
fn junk_slots_filled_for_multi_pop_gadgets() {
    let img = runtime_image();
    // Only LoadConst(eax) available consumes 3 slots, value in slot 1.
    let mut gs = full_map(vec![]).gadgets().to_vec();
    gs.retain(|g| {
        !g.effects.iter().any(|e| {
            matches!(
                e,
                Effect::LoadConst {
                    dst: Reg32::Eax,
                    ..
                }
            )
        })
    });
    gs.push(gadget(
        0x300,
        3,
        vec![Effect::LoadConst {
            dst: Reg32::Eax,
            slot: 1,
        }],
        vec![Reg32::Edx, Reg32::Ebx],
    ));
    let map = GadgetMap::new(gs);
    let f = Function::new("vf", [], vec![ret(c(0x42))]);
    let frame = img.symbol("frame").unwrap().vaddr;
    let scratch = img.symbol("scratch").unwrap().vaddr;
    let out = compile_chain(&f, &map, &img, frame, scratch, Policy::First).unwrap();
    let words = out.chain.words();
    let pos = words
        .iter()
        .position(|w| matches!(w, Word::Gadget(0x300)))
        .expect("multi-pop gadget used");
    // Layout: [gadget][junk][const][junk]
    assert!(matches!(words[pos + 1], Word::Junk));
    assert!(matches!(words[pos + 2], Word::Const(0x42)));
    assert!(matches!(words[pos + 3], Word::Junk));
}

#[test]
fn far_gadgets_get_cs_slots_and_pivots_stay_near() {
    let img = runtime_image();
    // The ONLY Binary Add gadget is a far one; PopEsp has near + far.
    let mut far_add = gadget(
        0x400,
        0,
        vec![Effect::Binary {
            op: GBinOp::Add,
            dst: Reg32::Eax,
            src: Reg32::Ecx,
        }],
        vec![],
    );
    far_add.far = true;
    let mut far_pivot = gadget(0x402, 0, vec![Effect::PopEsp], vec![]);
    far_pivot.far = true;
    let mut gs = full_map(vec![far_add, far_pivot]).gadgets().to_vec();
    gs.retain(|g| g.vaddr != 0x108); // remove the near add
    let map = GadgetMap::new(gs);

    let f = Function::new("vf", [], vec![ret(add(c(1), c(2)))]);
    let frame = img.symbol("frame").unwrap().vaddr;
    let scratch = img.symbol("scratch").unwrap().vaddr;
    let out = compile_chain(&f, &map, &img, frame, scratch, Policy::First).unwrap();
    let words = out.chain.words();

    // The far add is used; the word *after the next gadget address*
    // must be the dummy CS.
    let pos = words
        .iter()
        .position(|w| matches!(w, Word::Gadget(0x400)))
        .expect("far add used");
    assert!(
        matches!(words[pos + 2], Word::DummyCs),
        "layout around far gadget: {:?}",
        &words[pos..pos + 3.min(words.len() - pos)]
    );

    // The final pivot must be the near one (0x114), never 0x402.
    assert!(
        words.iter().any(|w| matches!(w, Word::Gadget(0x114))),
        "near pivot used"
    );
    assert!(
        !words.iter().any(|w| matches!(w, Word::Gadget(0x402))),
        "far pivot must not be used"
    );
}

#[test]
fn grouped_policy_produces_equal_length_variants() {
    let img = runtime_image();
    // Three interchangeable Add gadgets with identical shape.
    let map = full_map(vec![
        gadget(
            0x500,
            0,
            vec![Effect::Binary {
                op: GBinOp::Add,
                dst: Reg32::Eax,
                src: Reg32::Ecx,
            }],
            vec![],
        ),
        gadget(
            0x502,
            0,
            vec![Effect::Binary {
                op: GBinOp::Add,
                dst: Reg32::Eax,
                src: Reg32::Ecx,
            }],
            vec![],
        ),
    ]);
    let f = Function::new(
        "vf",
        ["a"],
        vec![
            let_("x", add(l("a"), c(3))),
            let_("x", add(l("x"), c(5))),
            let_("x", add(l("x"), c(7))),
            ret(l("x")),
        ],
    );
    let frame = img.symbol("frame").unwrap().vaddr;
    let scratch = img.symbol("scratch").unwrap().vaddr;
    let mut lens = Vec::new();
    let mut distinct_choices = std::collections::HashSet::new();
    for seed in 1..8u64 {
        let out = compile_chain(&f, &map, &img, frame, scratch, Policy::Grouped { seed }).unwrap();
        lens.push(out.chain.len());
        for w in out.chain.words() {
            if let Word::Gadget(v) = w {
                if matches!(v, 0x108 | 0x500 | 0x502) {
                    distinct_choices.insert(*v);
                }
            }
        }
    }
    assert!(lens.windows(2).all(|w| w[0] == w[1]), "lengths: {lens:?}");
    assert!(
        distinct_choices.len() > 1,
        "different seeds should choose different equivalent gadgets"
    );
}
