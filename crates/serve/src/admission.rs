//! Bounded admission control for the resident service.
//!
//! The queue is the daemon's *only* buffer between the accept loop and
//! the worker pool, and it is deliberately small: a request that can't
//! be queued is refused immediately with a typed [`ShedReason`] rather
//! than waiting unboundedly (fail-fast backpressure). The state
//! machine has three phases:
//!
//! ```text
//!   Accepting ──drain()──▶ Draining ──(queue empty, nothing
//!       │                     │         in flight)──▶ Idle
//!       │ submit: admitted    │ submit: Refused(Shutdown)
//!       │   or Refused        │ pop: remaining items, then None
//!       │   (QueueFull)       ▼
//!       ▼                  workers finish in-flight jobs
//! ```
//!
//! The invariant the overload test pins down: **every admitted item is
//! eventually popped and completed** — draining never discards queued
//! work, it only refuses *new* work. Zero accepted-then-dropped jobs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use parallax_engine::ShedReason;

/// A typed admission refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Refusal {
    /// Why the item was refused.
    pub reason: ShedReason,
    /// Queue depth at refusal time.
    pub depth: usize,
    /// Configured queue capacity.
    pub capacity: usize,
}

impl std::fmt::Display for Refusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            ShedReason::QueueFull => write!(
                f,
                "admission queue full ({}/{} jobs queued)",
                self.depth, self.capacity
            ),
            ShedReason::Shutdown => write!(f, "service is draining for shutdown"),
            ShedReason::Oversize => write!(f, "request exceeds the size cap"),
            ShedReason::Timeout => write!(f, "request timed out in the admission queue"),
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    draining: bool,
    in_flight: usize,
}

/// A bounded MPMC job queue with drain semantics.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled when the queue gains an item or enters drain.
    takers: Condvar,
    /// Signalled when the queue may have gone idle.
    idle: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue admitting at most `capacity` waiting items
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                draining: false,
                in_flight: 0,
            }),
            takers: Condvar::new(),
            idle: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (waiting items, not in-flight ones).
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether the queue is draining.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Tries to admit `item`. On success returns the queue depth
    /// *after* admission; on refusal the item is handed back alongside
    /// the typed reason so the caller can answer the client.
    pub fn submit(&self, item: T) -> Result<usize, (T, Refusal)> {
        let mut s = self.lock();
        if s.draining {
            let depth = s.queue.len();
            return Err((
                item,
                Refusal {
                    reason: ShedReason::Shutdown,
                    depth,
                    capacity: self.capacity,
                },
            ));
        }
        if s.queue.len() >= self.capacity {
            let depth = s.queue.len();
            return Err((
                item,
                Refusal {
                    reason: ShedReason::QueueFull,
                    depth,
                    capacity: self.capacity,
                },
            ));
        }
        s.queue.push_back(item);
        let depth = s.queue.len();
        drop(s);
        self.takers.notify_one();
        Ok(depth)
    }

    /// Blocks for the next item. Returns `None` once the queue is
    /// draining *and* empty — the worker's signal to exit. A returned
    /// item is counted in-flight until [`AdmissionQueue::done`].
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.queue.pop_front() {
                s.in_flight += 1;
                return Some(item);
            }
            if s.draining {
                return None;
            }
            s = match self.takers.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Marks one popped item as finished.
    pub fn done(&self) {
        let mut s = self.lock();
        s.in_flight = s.in_flight.saturating_sub(1);
        let idle = s.queue.is_empty() && s.in_flight == 0;
        drop(s);
        if idle {
            self.idle.notify_all();
        }
    }

    /// Enters the draining phase: queued items still run, new submits
    /// are refused with [`ShedReason::Shutdown`], and blocked `pop`s
    /// return once the queue empties.
    pub fn drain(&self) {
        let mut s = self.lock();
        s.draining = true;
        drop(s);
        self.takers.notify_all();
        self.idle.notify_all();
    }

    /// Blocks until the queue is draining, empty, and nothing is in
    /// flight — i.e. every admitted item has been completed.
    pub fn await_idle(&self) {
        let mut s = self.lock();
        while !(s.draining && s.queue.is_empty() && s.in_flight == 0) {
            s = match self.idle.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn refuses_when_full_and_when_draining() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.submit(1).expect("fits"), 1);
        assert_eq!(q.submit(2).expect("fits"), 2);
        let (item, r) = q.submit(3).expect_err("full");
        assert_eq!(item, 3);
        assert_eq!(r.reason, ShedReason::QueueFull);
        assert_eq!((r.depth, r.capacity), (2, 2));
        assert!(r.to_string().contains("2/2"));

        q.drain();
        let (_, r) = q.submit(4).expect_err("draining");
        assert_eq!(r.reason, ShedReason::Shutdown);
    }

    #[test]
    fn drain_completes_admitted_items_then_idles() {
        let q = Arc::new(AdmissionQueue::new(8));
        for i in 0..5 {
            q.submit(i).expect("admitted");
        }
        q.drain();
        let done = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    while let Some(_item) = q.pop() {
                        done.fetch_add(1, Ordering::SeqCst);
                        q.done();
                    }
                })
            })
            .collect();
        q.await_idle();
        // Draining never discarded admitted work.
        assert_eq!(done.load(Ordering::SeqCst), 5);
        for w in workers {
            w.join().expect("worker exits");
        }
        assert_eq!(q.depth(), 0);
        assert!(q.is_draining());
    }

    #[test]
    fn pop_blocks_until_submit() {
        let q = Arc::new(AdmissionQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit(7).expect("admitted");
        assert_eq!(t.join().expect("no panic"), Some(7));
    }
}
