//! A minimal blocking client for the `plx serve` protocol.
//!
//! One [`Client`] wraps one TCP connection and exchanges one
//! request/response pair per [`Client::call`]. The loadgen bench, the
//! CI smoke probe, and the `examples/serve_client.rs` walkthrough all
//! sit on this type; it is deliberately synchronous — fleet
//! concurrency comes from many clients, not from multiplexing one.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    decode_response, encode_request, read_frame, Request, Response, WireError, DEFAULT_MAX_FRAME,
};

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
}

impl Client {
    /// Connects to `addr`, applying `timeout` to the connection
    /// attempt and to every subsequent read and write.
    pub fn connect(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let mut last_err = None;
        for sock in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    return Ok(Client {
                        stream,
                        max_frame: DEFAULT_MAX_FRAME,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        }))
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        use std::io::Write as _;
        let frame = encode_request(req);
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        let body = read_frame(&mut self.stream, self.max_frame)?;
        Ok(decode_response(&body)?)
    }
}
