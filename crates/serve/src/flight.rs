//! The flight recorder: a black box for the resident daemon.
//!
//! The daemon continuously appends a compact [`RequestTrace`] for every
//! request it finishes (or refuses) into a bounded in-memory ring. The
//! ring costs a few kilobytes and is overwritten in steady state; it
//! only becomes interesting when something goes wrong. On an
//! **anomaly** — an admission shed, a request slower than the
//! configured threshold, or a verification failure — the recorder
//! snapshots the ring: the anomaly plus the N requests that led up to
//! it, exactly the context that is gone by the time an operator starts
//! asking questions.
//!
//! Snapshots are kept in a second bounded ring (retrievable over the
//! wire through the `Report` opcode) and, when a black-box directory is
//! configured, dumped to disk as NDJSON — one self-describing line per
//! event, written atomically enough for post-mortem collection (a
//! single `write` of a complete buffer).
//!
//! The recorder is deliberately lock-light: one mutex around each ring,
//! held only to push/clone. Nothing in the hot path blocks on disk I/O
//! except the snapshot itself, which is rare by construction.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a snapshot was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anomaly {
    /// Admission control refused a job (queue full, oversize, shutdown).
    Shed,
    /// A request's service latency crossed the configured threshold.
    SlowRequest,
    /// A verification request failed, or a protect job's validation
    /// verdict was not clean.
    VerifyFail,
}

impl Anomaly {
    /// Stable lowercase name, used in counters and file names.
    pub fn name(self) -> &'static str {
        match self {
            Anomaly::Shed => "shed",
            Anomaly::SlowRequest => "slow-request",
            Anomaly::VerifyFail => "verify-fail",
        }
    }
}

/// One recorded request: enough to reconstruct what the daemon was
/// doing around an anomaly, small enough to keep hundreds of.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Job id (`u64::MAX` for requests refused before acquiring one).
    pub id: u64,
    /// Request kind (`protect`, `verify`, ...).
    pub kind: String,
    /// Completion time, microseconds since daemon start.
    pub ts_us: u64,
    /// Service latency in microseconds (0 for refusals).
    pub latency_us: u64,
    /// Queue depth observed at completion.
    pub queue_depth: u32,
    /// Outcome: `ok`, `shed: <reason>`, `error: <detail>`, ...
    pub outcome: String,
}

impl RequestTrace {
    fn ndjson(&self) -> String {
        format!(
            "{{\"type\":\"request\",\"id\":{},\"kind\":\"{}\",\"ts_us\":{},\"latency_us\":{},\"queue_depth\":{},\"outcome\":\"{}\"}}",
            self.id,
            esc(&self.kind),
            self.ts_us,
            self.latency_us,
            self.queue_depth,
            esc(&self.outcome)
        )
    }
}

/// One black-box snapshot: the anomaly and the ring at trigger time.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Monotonic snapshot sequence number (0-based).
    pub seq: u64,
    /// What tripped the recorder.
    pub anomaly: Anomaly,
    /// Human-readable trigger detail.
    pub detail: String,
    /// Trigger time, microseconds since daemon start.
    pub ts_us: u64,
    /// The recent-request ring, oldest first, trigger last.
    pub recent: Vec<RequestTrace>,
    /// Where the NDJSON dump landed, if a black-box dir is configured.
    pub path: Option<PathBuf>,
}

impl Snapshot {
    /// Renders the snapshot as NDJSON: a trigger line, then one line
    /// per recorded request, oldest first.
    pub fn ndjson(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"snapshot\",\"seq\":{},\"anomaly\":\"{}\",\"ts_us\":{},\"detail\":\"{}\"}}\n",
            self.seq,
            self.anomaly.name(),
            self.ts_us,
            esc(&self.detail)
        );
        for r in &self.recent {
            out.push_str(&r.ndjson());
            out.push('\n');
        }
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Flight-recorder configuration.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Requests retained in the in-memory ring.
    pub ring_capacity: usize,
    /// Snapshots retained for retrieval over the wire.
    pub snapshot_capacity: usize,
    /// Latency threshold that counts as an anomaly (`None` disables
    /// the slow-request trigger).
    pub slow_request_us: Option<u64>,
    /// Directory for NDJSON black-box dumps (`None` keeps snapshots
    /// memory-only).
    pub blackbox_dir: Option<PathBuf>,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            ring_capacity: 64,
            snapshot_capacity: 8,
            slow_request_us: None,
            blackbox_dir: None,
        }
    }
}

/// The recorder itself. Shared across the daemon's threads.
pub struct FlightRecorder {
    cfg: FlightConfig,
    ring: Mutex<VecDeque<RequestTrace>>,
    snapshots: Mutex<VecDeque<Snapshot>>,
    seq: AtomicU64,
    recorded: AtomicU64,
}

impl FlightRecorder {
    /// Builds a recorder. The black-box directory is created lazily on
    /// the first snapshot, not here.
    pub fn new(cfg: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(cfg.ring_capacity)),
            snapshots: Mutex::new(VecDeque::new()),
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            cfg,
        }
    }

    /// The configured slow-request threshold, if any.
    pub fn slow_request_us(&self) -> Option<u64> {
        self.cfg.slow_request_us
    }

    /// Appends one finished/refused request to the ring.
    pub fn record(&self, rt: RequestTrace) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = lock(&self.ring);
        if ring.len() >= self.cfg.ring_capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(rt);
    }

    /// Total requests recorded since start (ring churn included).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Trips the recorder: snapshots the ring, retains the snapshot,
    /// and dumps it to the black-box directory when one is configured.
    /// Returns the snapshot's sequence number.
    pub fn anomaly(&self, anomaly: Anomaly, detail: &str, ts_us: u64) -> u64 {
        let recent: Vec<RequestTrace> = lock(&self.ring).iter().cloned().collect();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut snap = Snapshot {
            seq,
            anomaly,
            detail: detail.to_string(),
            ts_us,
            recent,
            path: None,
        };
        if let Some(dir) = &self.cfg.blackbox_dir {
            let path = dir.join(format!("blackbox-{seq:06}-{}.ndjson", anomaly.name()));
            let dump = snap.ndjson();
            // Best-effort: a full disk must not take down the daemon.
            let written = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, dump))
                .is_ok();
            if written {
                snap.path = Some(path);
            }
        }
        let mut snaps = lock(&self.snapshots);
        if snaps.len() >= self.cfg.snapshot_capacity.max(1) {
            snaps.pop_front();
        }
        snaps.push_back(snap);
        seq
    }

    /// The retained snapshots, oldest first.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        lock(&self.snapshots).iter().cloned().collect()
    }

    /// Renders the `flight recorder` text block for the wire `Report`
    /// opcode: per-snapshot trigger summaries plus the tail of the most
    /// recent snapshot's ring.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let snaps = self.snapshots();
        let mut out = String::from("flight recorder\n");
        let _ = writeln!(
            out,
            "  recorded {} requests, {} snapshots retained",
            self.recorded(),
            snaps.len()
        );
        for s in &snaps {
            let _ = writeln!(
                out,
                "  snapshot #{:<3} {:<12} at {:>10.3} s  ({} recent requests)  {}",
                s.seq,
                s.anomaly.name(),
                s.ts_us as f64 / 1e6,
                s.recent.len(),
                s.detail
            );
        }
        if let Some(last) = snaps.last() {
            for r in last.recent.iter().rev().take(5).rev() {
                let _ = writeln!(
                    out,
                    "    #{:<4} {:<8} {:>9.3} ms  depth {}  {}",
                    if r.id == u64::MAX {
                        "-".to_string()
                    } else {
                        r.id.to_string()
                    },
                    r.kind,
                    r.latency_us as f64 / 1e3,
                    r.queue_depth,
                    r.outcome
                );
            }
        }
        out
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(id: u64, outcome: &str) -> RequestTrace {
        RequestTrace {
            id,
            kind: "protect".to_string(),
            ts_us: id * 10,
            latency_us: 1_000,
            queue_depth: 1,
            outcome: outcome.to_string(),
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let fr = FlightRecorder::new(FlightConfig {
            ring_capacity: 3,
            ..FlightConfig::default()
        });
        for i in 0..10 {
            fr.record(rt(i, "ok"));
        }
        assert_eq!(fr.recorded(), 10);
        let seq = fr.anomaly(Anomaly::Shed, "queue full", 12_345);
        assert_eq!(seq, 0);
        let snaps = fr.snapshots();
        assert_eq!(snaps.len(), 1);
        let ids: Vec<u64> = snaps[0].recent.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![7, 8, 9], "ring keeps the newest, oldest first");
    }

    #[test]
    fn snapshot_ring_is_bounded() {
        let fr = FlightRecorder::new(FlightConfig {
            snapshot_capacity: 2,
            ..FlightConfig::default()
        });
        for i in 0..5 {
            fr.anomaly(Anomaly::SlowRequest, &format!("t{i}"), i);
        }
        let snaps = fr.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].seq, 3);
        assert_eq!(snaps[1].seq, 4);
    }

    #[test]
    fn ndjson_dump_lands_in_blackbox_dir() {
        let dir = std::env::temp_dir().join(format!("plx-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(FlightConfig {
            blackbox_dir: Some(dir.clone()),
            ..FlightConfig::default()
        });
        fr.record(rt(1, "ok"));
        fr.record(rt(2, "error: verify: tampered"));
        fr.anomaly(Anomaly::VerifyFail, "verify: tampered", 99);
        let snap = &fr.snapshots()[0];
        let path = snap.path.as_ref().expect("dump path recorded");
        let text = std::fs::read_to_string(path).expect("dump readable");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "trigger + 2 requests:\n{text}");
        assert!(lines[0].contains("\"anomaly\":\"verify-fail\""), "{text}");
        assert!(
            lines[2].contains("\\\"tampered\\\"") || lines[2].contains("tampered"),
            "{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_names_triggers() {
        let fr = FlightRecorder::new(FlightConfig {
            slow_request_us: Some(500),
            ..FlightConfig::default()
        });
        fr.record(rt(7, "ok"));
        fr.anomaly(
            Anomaly::SlowRequest,
            "protect took 900 us (threshold 500 us)",
            42,
        );
        let text = fr.render();
        assert!(text.contains("flight recorder"), "{text}");
        assert!(text.contains("slow-request"), "{text}");
        assert!(text.contains("threshold 500 us"), "{text}");
        assert!(text.contains("1 snapshots retained"), "{text}");
    }
}
