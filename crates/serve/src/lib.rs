//! Protection-as-a-service: the resident daemon behind `plx serve`.
//!
//! The paper frames Parallax as a toolchain step, but the fleet
//! scenario the roadmap targets — many clients re-protecting a small
//! population of distinct binaries — wants the engine *resident*: the
//! content-addressed artifact caches only pay off when they stay warm
//! across requests. This crate is that front door:
//!
//! * [`proto`] — a length-prefixed binary wire protocol with a typed
//!   codec: every decode failure is a [`proto::ProtocolError`] with an
//!   offset, never a panic, and declared lengths are validated before
//!   allocation so hostile frames cannot OOM the daemon.
//! * [`admission`] — a bounded job queue with fail-fast backpressure:
//!   a request that cannot be queued is refused immediately with a
//!   typed [`parallax_engine::ShedReason`], and draining completes
//!   every admitted job (zero accepted-then-dropped).
//! * [`flight`] — the black-box flight recorder: a bounded ring of
//!   recent request traces, snapshotted to memory (and NDJSON on disk)
//!   whenever the daemon sheds, serves a request over the latency
//!   threshold, or fails a verification.
//! * [`server`] — the daemon: one long-lived engine, one thread per
//!   connection, a small worker pool, per-connection read/write
//!   timeouts, live `serve.*` counters, and graceful drain.
//! * [`client`] — the blocking client used by the loadgen bench, CI
//!   smoke probes, and the `examples/serve_client.rs` walkthrough.
//! * [`signal`] — SIGINT/SIGTERM → atomic flag, shared with
//!   `plx batch`'s drain path.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod flight;
pub mod proto;
pub mod server;
pub mod signal;

pub use admission::{AdmissionQueue, Refusal};
pub use client::Client;
pub use flight::{Anomaly, FlightConfig, FlightRecorder, RequestTrace, Snapshot};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, frame_len, read_frame,
    JobSpec, ProtoErrorKind, ProtocolError, Request, Response, WireError, DEFAULT_MAX_FRAME,
    HEADER_LEN, MAGIC, VERSION,
};
pub use server::{render_service_report, ServeOptions, ServeSummary, Server, ServerHandle};
pub use signal::{install_shutdown_signal, request_shutdown, shutdown_flag, shutdown_requested};
