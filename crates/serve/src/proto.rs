//! The `plx serve` wire protocol: length-prefixed frames with a typed
//! binary codec.
//!
//! A frame is an 8-byte header — the magic `PLXS` plus a `u32` LE body
//! length — followed by the body: one version byte, one opcode byte,
//! and the opcode's fields. All integers are little-endian; strings
//! and byte blobs are `u32` length-prefixed. There is no serde and no
//! text parsing on the hot path, in the same spirit as the `PLX` image
//! codec in `parallax-image`.
//!
//! Decoding is *total*: any byte soup produces a typed
//! [`ProtocolError`] carrying the offset of the first bad byte (body-
//! relative), never a panic and never an allocation proportional to an
//! attacker-chosen count. Length fields are validated against the
//! bytes actually present before anything is allocated, and the frame
//! header is validated against a configurable cap before the body is
//! read at all, so a hostile client cannot make the daemon allocate
//! unbounded memory.

use std::fmt;
use std::io::Read;

use parallax_engine::ShedReason;

/// Frame magic, first 4 bytes of every frame in both directions.
pub const MAGIC: [u8; 4] = *b"PLXS";
/// Protocol version carried in every body.
pub const VERSION: u8 = 1;
/// Frame header length: magic + `u32` body length.
pub const HEADER_LEN: usize = 8;
/// Default cap on the body length a peer may declare (16 MiB).
pub const DEFAULT_MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Cap on a single length-prefixed string (1 MiB — inline program
/// sources are the largest legitimate strings on the wire).
const MAX_STRING: usize = 1024 * 1024;
/// Cap on list counts (verification-function lists).
const MAX_LIST: usize = 256;

/// What went wrong while decoding, without position information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoErrorKind {
    /// The frame did not start with [`MAGIC`].
    BadMagic,
    /// The buffer ended before the field at `offset` was complete.
    Truncated,
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A declared length exceeded the allowed cap.
    Oversize {
        /// The declared length.
        len: u64,
        /// The cap it violated.
        max: u64,
    },
    /// The body decoded cleanly but bytes remained after the last field.
    TrailingBytes,
    /// A field held a value outside its domain (named in the payload).
    BadValue(&'static str),
}

/// A typed decode failure: what went wrong and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolError {
    /// The failure class.
    pub kind: ProtoErrorKind,
    /// Byte offset of the first bad byte, relative to the start of the
    /// buffer handed to the decoder (the frame body for
    /// [`decode_request`] / [`decode_response`], the header for
    /// [`frame_len`]).
    pub offset: usize,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ProtoErrorKind::BadMagic => write!(f, "bad frame magic at offset {}", self.offset),
            ProtoErrorKind::Truncated => write!(f, "truncated at offset {}", self.offset),
            ProtoErrorKind::BadVersion(v) => {
                write!(f, "unknown protocol version {v} at offset {}", self.offset)
            }
            ProtoErrorKind::BadOpcode(op) => {
                write!(f, "unknown opcode 0x{op:02x} at offset {}", self.offset)
            }
            ProtoErrorKind::BadUtf8 => write!(f, "invalid UTF-8 at offset {}", self.offset),
            ProtoErrorKind::Oversize { len, max } => write!(
                f,
                "declared length {len} exceeds cap {max} at offset {}",
                self.offset
            ),
            ProtoErrorKind::TrailingBytes => {
                write!(f, "{} trailing bytes after last field", self.offset)
            }
            ProtoErrorKind::BadValue(what) => {
                write!(f, "bad {what} value at offset {}", self.offset)
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Where a protect request's program comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// A named program from the built-in evaluation corpus.
    Corpus(String),
    /// Inline source text in the toy language, compiled server-side.
    Inline(String),
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Protect a program and return the protected image.
    Protect {
        /// The program to protect.
        spec: JobSpec,
        /// Chain-mode name (`""` for the default mode); resolved
        /// server-side via the batch-manifest mode table.
        mode: String,
        /// Protection seed.
        seed: u64,
        /// Verification functions (empty for the corpus default).
        verify: Vec<String>,
    },
    /// Verify a protected image fail-closed and report the outcome.
    Verify {
        /// The serialized `PLX` image.
        image: Vec<u8>,
        /// Use the strict (provenance-requiring) verifier.
        strict: bool,
    },
    /// Fetch the live metrics snapshot.
    Status,
    /// Fetch the rendered service report (latency quantiles, shed
    /// taxonomy) built from the daemon's `serve.*` counters.
    Report,
    /// Ask the daemon to drain and exit.
    Shutdown,
}

impl Request {
    /// Stable request-kind tag, used for `serve.requests.*` counters
    /// and per-kind latency histogram names.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Protect { .. } => "protect",
            Request::Verify { .. } => "verify",
            Request::Status => "status",
            Request::Report => "report",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The protected image and its summary.
    Protected {
        /// Serialized `PLX` image bytes.
        image: Vec<u8>,
        /// Gadgets surviving selection.
        gadget_count: u32,
        /// Whether the result was served from the warm artifact cache.
        cached: bool,
        /// Server-side job wall time in microseconds.
        micros: u64,
    },
    /// Outcome of a verify request.
    VerifyResult {
        /// Whether the image passed fail-closed verification.
        ok: bool,
        /// Human-readable verifier detail (error text when `!ok`).
        detail: String,
    },
    /// The live metrics snapshot.
    Status {
        /// Daemon uptime in microseconds.
        uptime_us: u64,
        /// Jobs admitted since start.
        admitted: u64,
        /// Jobs shed since start.
        shed: u64,
        /// Current admission-queue depth.
        queue_depth: u32,
        /// Rendered `MetricsSnapshot` text block.
        text: String,
    },
    /// The rendered service report.
    Report {
        /// Rendered report text.
        text: String,
    },
    /// The job was refused by admission control (typed load shedding).
    Refused {
        /// Why the job was shed.
        reason: ShedReason,
        /// Context (queue depth, capacity, drain state).
        detail: String,
    },
    /// The job was admitted but failed in the pipeline.
    Error {
        /// The pipeline error, with stage provenance.
        detail: String,
    },
    /// Acknowledgement of a shutdown request; the daemon is draining.
    ShuttingDown,
}

// ----- opcodes -----

const OP_PROTECT: u8 = 0x01;
const OP_VERIFY: u8 = 0x02;
const OP_STATUS: u8 = 0x03;
const OP_REPORT: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;

const OP_PROTECTED: u8 = 0x81;
const OP_VERIFY_RESULT: u8 = 0x82;
const OP_STATUS_RESULT: u8 = 0x83;
const OP_REPORT_RESULT: u8 = 0x84;
const OP_REFUSED: u8 = 0x85;
const OP_ERROR: u8 = 0x86;
const OP_SHUTTING_DOWN: u8 = 0x87;

const SPEC_CORPUS: u8 = 0;
const SPEC_INLINE: u8 = 1;

fn shed_code(r: ShedReason) -> u8 {
    match r {
        ShedReason::QueueFull => 0,
        ShedReason::Shutdown => 1,
        ShedReason::Oversize => 2,
        ShedReason::Timeout => 3,
    }
}

fn shed_of(code: u8) -> Option<ShedReason> {
    ShedReason::ALL
        .iter()
        .copied()
        .find(|r| shed_code(*r) == code)
}

// ----- encoding -----

struct Enc {
    body: Vec<u8>,
}

impl Enc {
    fn new(opcode: u8) -> Enc {
        Enc {
            body: vec![VERSION, opcode],
        }
    }
    fn u8(&mut self, v: u8) {
        self.body.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.body.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.body.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.body.extend_from_slice(v);
    }
    fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    fn strings(&mut self, v: &[String]) {
        self.u32(v.len() as u32);
        for s in v {
            self.string(s);
        }
    }
    /// Prepends the frame header and returns the full frame.
    fn frame(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.body.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }
}

/// Encodes a request as a complete frame (header + body).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e;
    match req {
        Request::Protect {
            spec,
            mode,
            seed,
            verify,
        } => {
            e = Enc::new(OP_PROTECT);
            match spec {
                JobSpec::Corpus(name) => {
                    e.u8(SPEC_CORPUS);
                    e.string(name);
                }
                JobSpec::Inline(src) => {
                    e.u8(SPEC_INLINE);
                    e.string(src);
                }
            }
            e.string(mode);
            e.u64(*seed);
            e.strings(verify);
        }
        Request::Verify { image, strict } => {
            e = Enc::new(OP_VERIFY);
            e.bytes(image);
            e.u8(u8::from(*strict));
        }
        Request::Status => e = Enc::new(OP_STATUS),
        Request::Report => e = Enc::new(OP_REPORT),
        Request::Shutdown => e = Enc::new(OP_SHUTDOWN),
    }
    e.frame()
}

/// Encodes a response as a complete frame (header + body).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut e;
    match resp {
        Response::Protected {
            image,
            gadget_count,
            cached,
            micros,
        } => {
            e = Enc::new(OP_PROTECTED);
            e.bytes(image);
            e.u32(*gadget_count);
            e.u8(u8::from(*cached));
            e.u64(*micros);
        }
        Response::VerifyResult { ok, detail } => {
            e = Enc::new(OP_VERIFY_RESULT);
            e.u8(u8::from(*ok));
            e.string(detail);
        }
        Response::Status {
            uptime_us,
            admitted,
            shed,
            queue_depth,
            text,
        } => {
            e = Enc::new(OP_STATUS_RESULT);
            e.u64(*uptime_us);
            e.u64(*admitted);
            e.u64(*shed);
            e.u32(*queue_depth);
            e.string(text);
        }
        Response::Report { text } => {
            e = Enc::new(OP_REPORT_RESULT);
            e.string(text);
        }
        Response::Refused { reason, detail } => {
            e = Enc::new(OP_REFUSED);
            e.u8(shed_code(*reason));
            e.string(detail);
        }
        Response::Error { detail } => {
            e = Enc::new(OP_ERROR);
            e.string(detail);
        }
        Response::ShuttingDown => e = Enc::new(OP_SHUTTING_DOWN),
    }
    e.frame()
}

// ----- decoding -----

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn err(&self, kind: ProtoErrorKind) -> ProtocolError {
        ProtocolError {
            kind,
            offset: self.pos,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err(ProtoErrorKind::Truncated));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, ProtocolError> {
        let at = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtocolError {
                kind: ProtoErrorKind::BadValue(what),
                offset: at,
            }),
        }
    }

    /// A length-prefixed blob. The declared length is validated against
    /// the bytes actually remaining *before* any allocation, so a
    /// hostile length can never trigger an oversized reservation.
    fn bytes(&mut self, cap: usize) -> Result<Vec<u8>, ProtocolError> {
        let at = self.pos;
        let len = self.u32()? as usize;
        if len > cap {
            return Err(ProtocolError {
                kind: ProtoErrorKind::Oversize {
                    len: len as u64,
                    max: cap as u64,
                },
                offset: at,
            });
        }
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let at = self.pos;
        let raw = self.bytes(MAX_STRING)?;
        String::from_utf8(raw).map_err(|_| ProtocolError {
            kind: ProtoErrorKind::BadUtf8,
            offset: at,
        })
    }

    fn strings(&mut self) -> Result<Vec<String>, ProtocolError> {
        let at = self.pos;
        let n = self.u32()? as usize;
        if n > MAX_LIST {
            return Err(ProtocolError {
                kind: ProtoErrorKind::Oversize {
                    len: n as u64,
                    max: MAX_LIST as u64,
                },
                offset: at,
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.string()?);
        }
        Ok(out)
    }

    /// Fails with [`ProtoErrorKind::TrailingBytes`] unless the buffer
    /// is fully consumed; the offset carries the leftover count.
    fn finish<T>(self, v: T) -> Result<T, ProtocolError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(ProtocolError {
                kind: ProtoErrorKind::TrailingBytes,
                offset: left,
            });
        }
        Ok(v)
    }

    /// Common body prelude: version byte. Returns the opcode.
    fn prelude(&mut self) -> Result<u8, ProtocolError> {
        let at = self.pos;
        let v = self.u8()?;
        if v != VERSION {
            return Err(ProtocolError {
                kind: ProtoErrorKind::BadVersion(v),
                offset: at,
            });
        }
        self.u8()
    }
}

/// Validates a frame header and returns the body length.
///
/// `max_frame` bounds the length a peer may declare; a violation is a
/// typed [`ProtoErrorKind::Oversize`] *before* any body byte is read,
/// which is what keeps a hostile client from OOMing the daemon.
pub fn frame_len(header: &[u8; HEADER_LEN], max_frame: u32) -> Result<usize, ProtocolError> {
    if header[..4] != MAGIC {
        return Err(ProtocolError {
            kind: ProtoErrorKind::BadMagic,
            offset: 0,
        });
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_frame {
        return Err(ProtocolError {
            kind: ProtoErrorKind::Oversize {
                len: len as u64,
                max: max_frame as u64,
            },
            offset: 4,
        });
    }
    Ok(len as usize)
}

/// Decodes a request body (the bytes after the 8-byte header).
pub fn decode_request(body: &[u8]) -> Result<Request, ProtocolError> {
    let mut d = Dec::new(body);
    let op_at = d.pos + 1;
    let op = d.prelude()?;
    match op {
        OP_PROTECT => {
            let tag_at = d.pos;
            let tag = d.u8()?;
            let spec = match tag {
                SPEC_CORPUS => JobSpec::Corpus(d.string()?),
                SPEC_INLINE => JobSpec::Inline(d.string()?),
                _ => {
                    return Err(ProtocolError {
                        kind: ProtoErrorKind::BadValue("job-spec tag"),
                        offset: tag_at,
                    })
                }
            };
            let mode = d.string()?;
            let seed = d.u64()?;
            let verify = d.strings()?;
            d.finish(Request::Protect {
                spec,
                mode,
                seed,
                verify,
            })
        }
        OP_VERIFY => {
            let image = d.bytes(usize::MAX)?;
            let strict = d.bool("strict flag")?;
            d.finish(Request::Verify { image, strict })
        }
        OP_STATUS => d.finish(Request::Status),
        OP_REPORT => d.finish(Request::Report),
        OP_SHUTDOWN => d.finish(Request::Shutdown),
        other => Err(ProtocolError {
            kind: ProtoErrorKind::BadOpcode(other),
            offset: op_at,
        }),
    }
}

/// Decodes a response body (the bytes after the 8-byte header).
pub fn decode_response(body: &[u8]) -> Result<Response, ProtocolError> {
    let mut d = Dec::new(body);
    let op_at = d.pos + 1;
    let op = d.prelude()?;
    match op {
        OP_PROTECTED => {
            let image = d.bytes(usize::MAX)?;
            let gadget_count = d.u32()?;
            let cached = d.bool("cached flag")?;
            let micros = d.u64()?;
            d.finish(Response::Protected {
                image,
                gadget_count,
                cached,
                micros,
            })
        }
        OP_VERIFY_RESULT => {
            let ok = d.bool("ok flag")?;
            let detail = d.string()?;
            d.finish(Response::VerifyResult { ok, detail })
        }
        OP_STATUS_RESULT => {
            let uptime_us = d.u64()?;
            let admitted = d.u64()?;
            let shed = d.u64()?;
            let queue_depth = d.u32()?;
            let text = d.string()?;
            d.finish(Response::Status {
                uptime_us,
                admitted,
                shed,
                queue_depth,
                text,
            })
        }
        OP_REPORT_RESULT => {
            let text = d.string()?;
            d.finish(Response::Report { text })
        }
        OP_REFUSED => {
            let code_at = d.pos;
            let code = d.u8()?;
            let reason = shed_of(code).ok_or(ProtocolError {
                kind: ProtoErrorKind::BadValue("shed-reason code"),
                offset: code_at,
            })?;
            let detail = d.string()?;
            d.finish(Response::Refused { reason, detail })
        }
        OP_ERROR => {
            let detail = d.string()?;
            d.finish(Response::Error { detail })
        }
        OP_SHUTTING_DOWN => d.finish(Response::ShuttingDown),
        other => Err(ProtocolError {
            kind: ProtoErrorKind::BadOpcode(other),
            offset: op_at,
        }),
    }
}

// ----- stream I/O -----

/// A transport-level failure while exchanging frames.
#[derive(Debug)]
pub enum WireError {
    /// The socket failed (includes read/write timeouts).
    Io(std::io::Error),
    /// The peer sent bytes that do not decode.
    Protocol(ProtocolError),
    /// The peer closed the connection cleanly between frames.
    Closed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Protocol(e) => write!(f, "protocol: {e}"),
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<ProtocolError> for WireError {
    fn from(e: ProtocolError) -> WireError {
        WireError::Protocol(e)
    }
}

/// Reads one frame body from `r`, honouring `max_frame`.
///
/// Distinguishes a clean close *between* frames ([`WireError::Closed`])
/// from a close mid-frame (an [`WireError::Io`] unexpected-EOF): the
/// former is how clients normally hang up.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Err(WireError::Closed);
            }
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-header",
            )));
        }
        got += n;
    }
    let len = frame_len(&header, max_frame)?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = encode_request(&req);
        let len = frame_len(
            frame[..HEADER_LEN].try_into().expect("header"),
            DEFAULT_MAX_FRAME,
        )
        .expect("header valid");
        assert_eq!(len, frame.len() - HEADER_LEN);
        let got = decode_request(&frame[HEADER_LEN..]).expect("decodes");
        assert_eq!(got, req);
    }

    fn roundtrip_response(resp: Response) {
        let frame = encode_response(&resp);
        let got = decode_response(&frame[HEADER_LEN..]).expect("decodes");
        assert_eq!(got, resp);
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip_request(Request::Protect {
            spec: JobSpec::Corpus("wget".into()),
            mode: "xor".into(),
            seed: 0x5eed,
            verify: vec!["vf".into(), "vf2".into()],
        });
        roundtrip_request(Request::Protect {
            spec: JobSpec::Inline("fn main() { return 1; }".into()),
            mode: String::new(),
            seed: 0,
            verify: vec![],
        });
        roundtrip_request(Request::Verify {
            image: vec![0x50, 0x4c, 0x58, 0x00],
            strict: true,
        });
        roundtrip_request(Request::Status);
        roundtrip_request(Request::Report);
        roundtrip_request(Request::Shutdown);

        roundtrip_response(Response::Protected {
            image: vec![1, 2, 3],
            gadget_count: 42,
            cached: true,
            micros: 1234,
        });
        roundtrip_response(Response::VerifyResult {
            ok: false,
            detail: "image: bad magic".into(),
        });
        roundtrip_response(Response::Status {
            uptime_us: 55,
            admitted: 9,
            shed: 2,
            queue_depth: 1,
            text: "jobs 9\n".into(),
        });
        roundtrip_response(Response::Report {
            text: "service\n".into(),
        });
        for reason in ShedReason::ALL {
            roundtrip_response(Response::Refused {
                reason,
                detail: format!("queue full ({reason})"),
            });
        }
        roundtrip_response(Response::Error {
            detail: "gadget-scan: no gadgets".into(),
        });
        roundtrip_response(Response::ShuttingDown);
    }

    #[test]
    fn header_rejections_are_typed() {
        let mut h = [0u8; HEADER_LEN];
        h[..4].copy_from_slice(b"nope");
        assert_eq!(
            frame_len(&h, DEFAULT_MAX_FRAME)
                .expect_err("bad magic")
                .kind,
            ProtoErrorKind::BadMagic
        );
        h[..4].copy_from_slice(&MAGIC);
        h[4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = frame_len(&h, 1024).expect_err("oversize");
        assert!(matches!(
            err.kind,
            ProtoErrorKind::Oversize { max: 1024, .. }
        ));
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn truncations_carry_offsets() {
        let frame = encode_request(&Request::Protect {
            spec: JobSpec::Corpus("wget".into()),
            mode: "xor".into(),
            seed: 1,
            verify: vec!["vf".into()],
        });
        let body = &frame[HEADER_LEN..];
        // Every strict prefix of a valid body must fail typed, and the
        // reported offset must stay inside the prefix.
        for cut in 0..body.len() {
            let err = decode_request(&body[..cut]).expect_err("prefix must not decode");
            assert!(err.offset <= cut, "offset {} beyond cut {cut}", err.offset);
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A verify body declaring a huge image length with no bytes
        // behind it: rejected as truncated, not allocated.
        let mut e = Enc::new(OP_VERIFY);
        e.u32(u32::MAX);
        let frame = e.frame();
        let err = decode_request(&frame[HEADER_LEN..]).expect_err("rejects");
        assert_eq!(err.kind, ProtoErrorKind::Truncated);

        // A strings count beyond the list cap is a typed oversize.
        let mut e = Enc::new(OP_PROTECT);
        e.u8(SPEC_CORPUS);
        e.string("wget");
        e.string("");
        e.u64(0);
        e.u32(u32::MAX); // verify-list count
        let frame = e.frame();
        let err = decode_request(&frame[HEADER_LEN..]).expect_err("rejects");
        assert!(matches!(err.kind, ProtoErrorKind::Oversize { .. }));
    }

    #[test]
    fn trailing_bytes_and_bad_enums_are_typed() {
        let mut frame = encode_request(&Request::Status);
        frame.push(0xff);
        // Fix up the declared length to include the junk byte.
        let body_len = (frame.len() - HEADER_LEN) as u32;
        frame[4..8].copy_from_slice(&body_len.to_le_bytes());
        let err = decode_request(&frame[HEADER_LEN..]).expect_err("rejects");
        assert_eq!(err.kind, ProtoErrorKind::TrailingBytes);

        let mut e = Enc::new(OP_REFUSED);
        e.u8(0x7f); // unknown shed-reason code
        e.string("");
        let frame = e.frame();
        let err = decode_response(&frame[HEADER_LEN..]).expect_err("rejects");
        assert_eq!(err.kind, ProtoErrorKind::BadValue("shed-reason code"));

        let err = decode_request(&[9, OP_STATUS]).expect_err("bad version");
        assert_eq!(err.kind, ProtoErrorKind::BadVersion(9));
        let err = decode_request(&[VERSION, 0x7e]).expect_err("bad opcode");
        assert_eq!(err.kind, ProtoErrorKind::BadOpcode(0x7e));
    }
}
