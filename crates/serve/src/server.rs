//! The resident protection daemon.
//!
//! One [`Server`] owns one long-lived [`Engine`], so the in-memory LRU
//! and on-disk artifact caches stay warm across requests — the fleet
//! scenario: many clients re-protecting a small population of distinct
//! binaries hit the `Protected` artifact cache almost every time.
//!
//! Threading model (all `std`, no runtime):
//!
//! * the **accept loop** (the thread inside [`Server::run`]) polls a
//!   non-blocking listener and spawns one thread per connection;
//! * **connection threads** frame and decode requests, answer
//!   status/report inline, and push protect/verify work through the
//!   [`AdmissionQueue`] — refusals are answered immediately with a
//!   typed [`Response::Refused`];
//! * **worker threads** pop admitted jobs, execute them on the shared
//!   engine, and fill the per-request response slot the connection
//!   thread is waiting on.
//!
//! Graceful drain: a shutdown request (or [`ServerHandle::shutdown`])
//! stops the accept loop, flips the queue into draining — queued and
//! in-flight jobs complete and are answered, new submissions are
//! refused with [`ShedReason::Shutdown`] — and `run` returns once the
//! queue is idle. Admitted work is never dropped.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parallax_compiler::parse_module;
use parallax_core::{
    load_verified_image, load_verified_image_strict, FaultPlan, ProtectConfig, Verdict,
};
use parallax_engine::{
    chain_mode_for, Engine, EngineEvent, EngineOptions, Job, JobSource, Metrics, ShedReason,
};
use parallax_trace::Tracer;

use crate::admission::AdmissionQueue;
use crate::flight::{Anomaly, FlightConfig, FlightRecorder, RequestTrace};
use crate::proto::{
    decode_request, encode_response, read_frame, Request, Response, WireError, DEFAULT_MAX_FRAME,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing admitted jobs.
    pub workers: usize,
    /// Admission-queue capacity (waiting jobs beyond the workers).
    pub queue_capacity: usize,
    /// In-memory artifact-cache capacity, in entries.
    pub cache_capacity: usize,
    /// On-disk cache directory (`None` for memory-only).
    pub cache_dir: Option<PathBuf>,
    /// Validate every protected image in the VM before answering.
    pub validate: bool,
    /// Per-connection read timeout (an idle client is disconnected).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Cap on the frame body length a client may declare.
    pub max_frame: u32,
    /// Cap on a single job's payload (inline source or image bytes);
    /// larger jobs are shed with [`ShedReason::Oversize`].
    pub max_job_bytes: usize,
    /// Flight-recorder configuration (ring sizes, slow-request
    /// threshold, black-box dump directory).
    pub flight: FlightConfig,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 4096,
            cache_dir: None,
            validate: true,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
            max_job_bytes: 4 * 1024 * 1024,
            flight: FlightConfig::default(),
        }
    }
}

/// End-of-life summary returned by [`Server::run`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Total requests decoded, by any kind.
    pub requests: u64,
    /// Jobs admitted through the queue.
    pub admitted: u64,
    /// Jobs shed.
    pub shed: u64,
    /// Daemon uptime.
    pub uptime: Duration,
    /// Rendered final metrics snapshot.
    pub metrics_text: String,
}

/// One queued unit of work: the request plus the slot its connection
/// thread is waiting on.
struct WorkItem {
    id: u64,
    request: Request,
    slot: Arc<RespSlot>,
}

/// A single-use response mailbox (mutex + condvar).
struct RespSlot {
    value: std::sync::Mutex<Option<Response>>,
    ready: std::sync::Condvar,
}

impl RespSlot {
    fn new() -> Arc<RespSlot> {
        Arc::new(RespSlot {
            value: std::sync::Mutex::new(None),
            ready: std::sync::Condvar::new(),
        })
    }

    fn fill(&self, resp: Response) {
        if let Ok(mut v) = self.value.lock() {
            *v = Some(resp);
        }
        self.ready.notify_all();
    }

    fn wait(&self) -> Response {
        let mut v = match self.value.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        loop {
            if let Some(resp) = v.take() {
                return resp;
            }
            v = match self.ready.wait(v) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }
}

struct Shared {
    opts: ServeOptions,
    engine: Engine,
    queue: AdmissionQueue<WorkItem>,
    metrics: Metrics,
    tracer: Arc<Tracer>,
    flight: FlightRecorder,
    shutdown: AtomicBool,
    started: Instant,
    next_id: AtomicU64,
    conns: AtomicUsize,
    requests: AtomicU64,
}

impl Shared {
    /// Publishes an admission-control event to the long-lived metrics
    /// and the `serve.*` counter namespace.
    fn admission_event(&self, ev: &EngineEvent) {
        self.metrics.absorb(ev);
        match ev {
            EngineEvent::JobAdmitted { depth, .. } => {
                self.tracer.count("serve.admitted", 1);
                self.tracer.record("serve.queue.depth", *depth as u64);
            }
            EngineEvent::JobShed { reason, .. } => {
                self.tracer.count(&format!("serve.shed.{reason}"), 1);
            }
            EngineEvent::QueueDepth { depth, .. } => {
                self.tracer.record("serve.queue.depth", *depth as u64);
            }
            _ => {}
        }
    }

    fn status_response(&self) -> Response {
        let snap = self
            .metrics
            .snapshot(self.started.elapsed(), self.engine.cache().stats());
        Response::Status {
            uptime_us: self.started.elapsed().as_micros() as u64,
            admitted: snap.admitted,
            shed: snap.shed,
            queue_depth: self.queue.depth() as u32,
            text: snap.render(),
        }
    }

    fn report_response(&self) -> Response {
        let mut text = render_service_report(&self.tracer);
        text.push('\n');
        text.push_str(&self.flight.render());
        Response::Report { text }
    }

    /// Microseconds since the daemon started (flight-recorder clock).
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Records a refused job in the flight recorder and trips a `shed`
    /// snapshot — an admission refusal is always anomalous from the
    /// client's point of view, and the ring explains what the daemon
    /// was busy with when it happened.
    fn flight_shed(&self, id: u64, kind: &str, detail: &str) {
        let ts_us = self.now_us();
        self.flight.record(RequestTrace {
            id,
            kind: kind.to_string(),
            ts_us,
            latency_us: 0,
            queue_depth: self.queue.depth() as u32,
            outcome: format!("shed: {detail}"),
        });
        self.flight.anomaly(Anomaly::Shed, detail, ts_us);
        self.tracer.count("serve.flight.recorded", 1);
        self.tracer.count("serve.flight.snapshot.shed", 1);
    }

    /// Records a completed job and trips slow-request / verify-fail
    /// snapshots as configured.
    fn flight_done(&self, id: u64, kind: &str, latency_us: u64, resp: &Response) {
        let ts_us = self.now_us();
        let outcome = match resp {
            Response::Protected { cached, .. } => {
                if *cached {
                    "ok (cached)".to_string()
                } else {
                    "ok".to_string()
                }
            }
            Response::VerifyResult { ok: true, .. } => "ok".to_string(),
            Response::VerifyResult { ok: false, detail } => format!("verify-fail: {detail}"),
            Response::Error { detail } => format!("error: {detail}"),
            Response::Refused { reason, .. } => format!("shed: {reason}"),
            _ => "ok".to_string(),
        };
        self.flight.record(RequestTrace {
            id,
            kind: kind.to_string(),
            ts_us,
            latency_us,
            queue_depth: self.queue.depth() as u32,
            outcome: outcome.clone(),
        });
        self.tracer.count("serve.flight.recorded", 1);
        if let Some(threshold) = self.flight.slow_request_us() {
            if latency_us >= threshold {
                self.flight.anomaly(
                    Anomaly::SlowRequest,
                    &format!("{kind} took {latency_us} us (threshold {threshold} us)"),
                    ts_us,
                );
                self.tracer.count("serve.flight.snapshot.slow-request", 1);
            }
        }
        let verify_fail = matches!(resp, Response::VerifyResult { ok: false, .. })
            || matches!(resp, Response::Error { detail } if detail.starts_with("verify:"));
        if verify_fail {
            self.flight.anomaly(Anomaly::VerifyFail, &outcome, ts_us);
            self.tracer.count("serve.flight.snapshot.verify-fail", 1);
        }
    }
}

/// Renders the "service" text block from a tracer's `serve.*` counters
/// and histograms: request mix, per-kind latency quantiles, queue
/// depth, and the shed taxonomy. The same counters, written to a trace
/// file, feed `plx report`'s service section offline.
pub fn render_service_report(tracer: &Tracer) -> String {
    use std::fmt::Write as _;
    let snap = tracer.snapshot();
    let mut out = String::from("service\n");
    let mut kinds: Vec<(&str, u64)> = Vec::new();
    for kind in ["protect", "verify", "status", "report", "shutdown"] {
        let n = snap
            .counters
            .get(&format!("serve.requests.{kind}"))
            .copied()
            .unwrap_or(0);
        if n > 0 {
            kinds.push((kind, n));
        }
    }
    let _ = writeln!(
        out,
        "  requests    {}",
        if kinds.is_empty() {
            "none".to_string()
        } else {
            kinds
                .iter()
                .map(|(k, n)| format!("{k} {n}"))
                .collect::<Vec<_>>()
                .join("  ")
        }
    );
    for (kind, _) in &kinds {
        if let Some(h) = snap.hists.get(&format!("serve.latency.{kind}_us")) {
            let _ = writeln!(
                out,
                "  latency     {kind:<8} p50 {:>8} us  p99 {:>8} us  ({} samples)",
                h.percentile(0.50),
                h.percentile(0.99),
                h.count
            );
        }
    }
    if let Some(h) = snap.hists.get("serve.queue.depth") {
        let _ = writeln!(out, "  queue depth max {} ({} samples)", h.max, h.count);
    }
    let admitted = snap.counters.get("serve.admitted").copied().unwrap_or(0);
    let shed: Vec<(ShedReason, u64)> = ShedReason::ALL
        .iter()
        .filter_map(|r| {
            snap.counters
                .get(&format!("serve.shed.{r}"))
                .copied()
                .filter(|&n| n > 0)
                .map(|n| (*r, n))
        })
        .collect();
    let shed_total: u64 = shed.iter().map(|(_, n)| n).sum();
    let rate = if admitted + shed_total == 0 {
        0.0
    } else {
        shed_total as f64 / (admitted + shed_total) as f64
    };
    let _ = writeln!(
        out,
        "  admission   {admitted} admitted / {shed_total} shed (shed rate {:.1}%)",
        rate * 100.0
    );
    for (reason, n) in shed {
        let _ = writeln!(out, "    shed.{:<11} {n}", reason.name());
    }
    out
}

/// A handle for stopping a running server from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests a graceful drain: stop accepting, finish admitted
    /// work, then return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.drain();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// The resident protection service.
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds the listen socket and builds the engine. The server does
    /// not accept connections until [`Server::run`].
    pub fn bind(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let engine = Engine::new(EngineOptions {
            workers: 1, // each request is one job; parallelism comes from the worker pool
            cache_capacity: opts.cache_capacity,
            cache_dir: opts.cache_dir.clone(),
            validate: opts.validate,
            ..EngineOptions::default()
        });
        let queue = AdmissionQueue::new(opts.queue_capacity);
        let shared = Arc::new(Shared {
            engine,
            queue,
            metrics: Metrics::default(),
            tracer: Arc::new(Tracer::new()),
            flight: FlightRecorder::new(opts.flight.clone()),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            next_id: AtomicU64::new(0),
            conns: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            opts,
        });
        Ok(Server {
            shared,
            listener,
            local_addr,
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clonable shutdown handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The server's tracer (the `serve.*` counter namespace); clone it
    /// to write a trace file after [`Server::run`] returns.
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.shared.tracer)
    }

    /// Serves until shutdown is requested, then drains and returns the
    /// end-of-life summary.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let workers: Vec<_> = (0..self.shared.opts.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("plx-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<_>>()?;

        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared.tracer.count("serve.conn.accepted", 1);
                    self.shared.conns.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&self.shared);
                    let _ = std::thread::Builder::new()
                        .name("plx-serve-conn".to_string())
                        .spawn(move || {
                            handle_conn(&shared, stream);
                            shared.conns.fetch_sub(1, Ordering::SeqCst);
                        });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: admitted work completes, workers exit on empty queue.
        self.shared.queue.drain();
        self.shared.queue.await_idle();
        for w in workers {
            let _ = w.join();
        }
        // Give connection threads a bounded window to flush their last
        // responses; they die with the process either way.
        let deadline = Instant::now() + self.shared.opts.read_timeout + Duration::from_secs(1);
        while self.shared.conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }

        let snap = self.shared.metrics.snapshot(
            self.shared.started.elapsed(),
            self.shared.engine.cache().stats(),
        );
        Ok(ServeSummary {
            requests: self.shared.requests.load(Ordering::SeqCst),
            admitted: snap.admitted,
            shed: snap.shed,
            uptime: self.shared.started.elapsed(),
            metrics_text: snap.render(),
        })
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(item) = shared.queue.pop() {
        shared.admission_event(&EngineEvent::QueueDepth {
            job: item.id as usize,
            depth: shared.queue.depth(),
        });
        let kind = item.request.kind();
        let t0 = Instant::now();
        // A panicking job must not kill the worker or strand the
        // connection thread: answer with a typed error and move on.
        let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(shared, &item.request)
        }))
        .unwrap_or_else(|_| Response::Error {
            detail: "internal: job panicked".to_string(),
        });
        let latency_us = t0.elapsed().as_micros() as u64;
        shared
            .tracer
            .record(&format!("serve.latency.{kind}_us"), latency_us);
        shared.flight_done(item.id, kind, latency_us, &resp);
        item.slot.fill(resp);
        shared.queue.done();
    }
}

/// Executes one admitted protect/verify job on the shared engine.
fn execute(shared: &Shared, request: &Request) -> Response {
    match request {
        Request::Protect {
            spec,
            mode,
            seed,
            verify,
        } => {
            let mut cfg = ProtectConfig {
                verify_funcs: verify.clone(),
                seed: *seed,
                ..ProtectConfig::default()
            };
            if !mode.is_empty() {
                match chain_mode_for(mode, *seed) {
                    Some(m) => cfg.mode = m,
                    None => {
                        return Response::Error {
                            detail: format!("select: unknown chain mode '{mode}'"),
                        }
                    }
                }
            }
            let mode_tag = if mode.is_empty() { "default" } else { mode };
            let (name, source) = match spec {
                crate::proto::JobSpec::Corpus(prog) => (
                    format!("{prog}/{mode_tag}#{seed}"),
                    JobSource::Corpus(prog.clone()),
                ),
                crate::proto::JobSpec::Inline(src) => match parse_module(src) {
                    Ok(module) => (
                        format!("inline/{mode_tag}#{seed}"),
                        JobSource::Module(Box::new(module)),
                    ),
                    Err(e) => {
                        return Response::Error {
                            detail: format!("load: {e}"),
                        }
                    }
                },
            };
            let job = Job {
                name,
                source,
                cfg,
                input: None,
                plan: FaultPlan::default(),
            };
            let report = match shared.engine.run(vec![job], |ev| shared.metrics.absorb(ev)) {
                Ok(r) => r,
                Err(e) => {
                    return Response::Error {
                        detail: format!("engine: {e}"),
                    }
                }
            };
            let Some(result) = report.results.into_iter().next() else {
                return Response::Error {
                    detail: "engine: empty batch report".to_string(),
                };
            };
            if let Some(e) = result.error {
                return Response::Error { detail: e };
            }
            if let Some(v) = result.verdict {
                if v != Verdict::Clean {
                    return Response::Error {
                        detail: format!("verify: validation verdict {v}"),
                    };
                }
            }
            Response::Protected {
                image: result.image,
                gadget_count: result.gadget_count as u32,
                cached: result.cached,
                micros: result.micros,
            }
        }
        Request::Verify { image, strict } => {
            let outcome = if *strict {
                load_verified_image_strict(image)
            } else {
                load_verified_image(image)
            };
            match outcome {
                Ok(_) => Response::VerifyResult {
                    ok: true,
                    detail: if *strict {
                        "verified (strict)".to_string()
                    } else {
                        "verified".to_string()
                    },
                },
                Err(e) => Response::VerifyResult {
                    ok: false,
                    detail: e.to_string(),
                },
            }
        }
        // Status/report/shutdown are answered inline by the connection
        // thread and never admitted; this arm is unreachable in the
        // daemon but kept total for direct callers.
        other => Response::Error {
            detail: format!("internal: {} is not a worker request", other.kind()),
        },
    }
}

/// Size of the payload a job carries (what `max_job_bytes` caps).
fn job_payload_len(req: &Request) -> usize {
    match req {
        Request::Protect { spec, .. } => match spec {
            crate::proto::JobSpec::Corpus(name) => name.len(),
            crate::proto::JobSpec::Inline(src) => src.len(),
        },
        Request::Verify { image, .. } => image.len(),
        _ => 0,
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> bool {
    use std::io::Write as _;
    let frame = encode_response(resp);
    stream
        .write_all(&frame)
        .and_then(|()| stream.flush())
        .is_ok()
}

fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
    loop {
        let body = match read_frame(&mut stream, shared.opts.max_frame) {
            Ok(body) => body,
            Err(WireError::Closed) => return,
            Err(WireError::Io(e)) => {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    shared.tracer.count("serve.conn.timeout", 1);
                }
                return;
            }
            Err(WireError::Protocol(e)) => {
                // A framing-level violation (bad magic / oversize
                // header): answer typed, then hang up — the byte
                // stream can no longer be trusted to re-synchronise.
                shared.tracer.count("serve.proto.error", 1);
                let _ = write_response(
                    &mut stream,
                    &Response::Error {
                        detail: format!("protocol: {e}"),
                    },
                );
                return;
            }
        };
        let request = match decode_request(&body) {
            Ok(r) => r,
            Err(e) => {
                // The frame boundary was sound, only the body was
                // malformed: answer typed and keep the connection.
                shared.tracer.count("serve.proto.error", 1);
                if !write_response(
                    &mut stream,
                    &Response::Error {
                        detail: format!("protocol: {e}"),
                    },
                ) {
                    return;
                }
                continue;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        shared
            .tracer
            .count(&format!("serve.requests.{}", request.kind()), 1);

        let response = match &request {
            Request::Status => shared.status_response(),
            Request::Report => shared.report_response(),
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.queue.drain();
                Response::ShuttingDown
            }
            Request::Protect { .. } | Request::Verify { .. } => {
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                let payload = job_payload_len(&request);
                if payload > shared.opts.max_job_bytes {
                    shared.admission_event(&EngineEvent::JobShed {
                        job: id as usize,
                        reason: ShedReason::Oversize,
                    });
                    let detail = format!(
                        "job payload {payload} bytes exceeds cap {}",
                        shared.opts.max_job_bytes
                    );
                    shared.flight_shed(id, request.kind(), &detail);
                    Response::Refused {
                        reason: ShedReason::Oversize,
                        detail,
                    }
                } else {
                    let slot = RespSlot::new();
                    let item = WorkItem {
                        id,
                        request,
                        slot: Arc::clone(&slot),
                    };
                    match shared.queue.submit(item) {
                        Ok(depth) => {
                            shared.admission_event(&EngineEvent::JobAdmitted {
                                job: id as usize,
                                depth,
                            });
                            slot.wait()
                        }
                        Err((item, refusal)) => {
                            shared.admission_event(&EngineEvent::JobShed {
                                job: id as usize,
                                reason: refusal.reason,
                            });
                            shared.flight_shed(id, item.request.kind(), &refusal.to_string());
                            Response::Refused {
                                reason: refusal.reason,
                                detail: refusal.to_string(),
                            }
                        }
                    }
                }
            }
        };
        if !write_response(&mut stream, &response) {
            return;
        }
    }
}
