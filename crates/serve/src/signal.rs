//! Process shutdown-signal plumbing.
//!
//! The daemon (and `plx batch`'s drain path) need exactly one bit from
//! the OS: "the user asked us to stop". On Unix that is SIGINT/SIGTERM
//! delivered to a handler that does the only async-signal-safe thing
//! possible — store into a static atomic. Elsewhere the flag simply
//! never flips and Ctrl-C keeps its default kill behaviour.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received since
/// [`install_shutdown_signal`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// The flag itself, for wiring into drain-aware loops
/// (`Engine::run_with_cancel`).
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// Test/emergency seam: flips the flag as if a signal had arrived.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::*;

    extern "C" fn on_signal(_sig: i32) {
        // Only an atomic store: everything else is unsafe in a signal
        // handler.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        // SAFETY: `signal` with a handler that performs a single
        // atomic store is async-signal-safe; the handler address
        // outlives the process.
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (no-op off Unix). Idempotent.
pub fn install_shutdown_signal() {
    imp::install();
}
