//! Property tests for the `plx serve` wire codec, mirroring the PLX
//! container proptests: decoding is total on arbitrary byte soup — a
//! typed [`ProtocolError`] with an in-range offset, never a panic —
//! and encode ∘ decode is the identity on every variant.

use proptest::prelude::*;

use parallax_engine::ShedReason;
use parallax_serve::proto::{
    decode_request, decode_response, encode_request, encode_response, frame_len, JobSpec, Request,
    Response, DEFAULT_MAX_FRAME, HEADER_LEN, MAGIC, VERSION,
};

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,12}".prop_map(JobSpec::Corpus),
        "[ -~]{0,200}".prop_map(JobSpec::Inline),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            arb_spec(),
            "[a-z-]{0,12}",
            any::<u64>(),
            proptest::collection::vec("[a-z_]{1,8}".prop_map(String::from), 0..4),
        )
            .prop_map(|(spec, mode, seed, verify)| Request::Protect {
                spec,
                mode,
                seed,
                verify,
            }),
        (
            proptest::collection::vec(any::<u8>(), 0..256),
            any::<bool>()
        )
            .prop_map(|(image, strict)| Request::Verify { image, strict }),
        Just(Request::Status),
        Just(Request::Report),
        Just(Request::Shutdown),
    ]
}

fn arb_shed() -> impl Strategy<Value = ShedReason> {
    prop_oneof![
        Just(ShedReason::QueueFull),
        Just(ShedReason::Shutdown),
        Just(ShedReason::Oversize),
        Just(ShedReason::Timeout),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (
            proptest::collection::vec(any::<u8>(), 0..256),
            any::<u32>(),
            any::<bool>(),
            any::<u64>(),
        )
            .prop_map(
                |(image, gadget_count, cached, micros)| Response::Protected {
                    image,
                    gadget_count,
                    cached,
                    micros,
                }
            ),
        (any::<bool>(), "[ -~]{0,100}")
            .prop_map(|(ok, detail)| Response::VerifyResult { ok, detail }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            "[ -~\\n]{0,200}",
        )
            .prop_map(|(uptime_us, admitted, shed, queue_depth, text)| {
                Response::Status {
                    uptime_us,
                    admitted,
                    shed,
                    queue_depth,
                    text,
                }
            }),
        "[ -~\\n]{0,200}".prop_map(|text| Response::Report { text }),
        (arb_shed(), "[ -~]{0,100}")
            .prop_map(|(reason, detail)| Response::Refused { reason, detail }),
        "[ -~]{0,100}".prop_map(|detail| Response::Error { detail }),
        Just(Response::ShuttingDown),
    ]
}

proptest! {
    /// encode ∘ decode is the identity on requests, and the header
    /// always validates and frames the body exactly.
    #[test]
    fn request_roundtrip(req in arb_request()) {
        let frame = encode_request(&req);
        let header: &[u8; HEADER_LEN] = frame[..HEADER_LEN].try_into().unwrap();
        let len = frame_len(header, DEFAULT_MAX_FRAME).unwrap();
        prop_assert_eq!(len, frame.len() - HEADER_LEN);
        prop_assert_eq!(decode_request(&frame[HEADER_LEN..]).unwrap(), req);
    }

    /// encode ∘ decode is the identity on responses.
    #[test]
    fn response_roundtrip(resp in arb_response()) {
        let frame = encode_response(&resp);
        prop_assert_eq!(decode_response(&frame[HEADER_LEN..]).unwrap(), resp);
    }

    /// Both decoders are total on raw byte soup: `Ok` or a typed
    /// error whose offset stays inside the buffer — never a panic.
    /// Also drives the soup through a valid version byte so the
    /// per-opcode field parsers are reached.
    #[test]
    fn decoders_total_on_byte_soup(soup in proptest::collection::vec(any::<u8>(), 0..2048)) {
        for body in [&soup[..], &{
            let mut v = vec![VERSION];
            v.extend_from_slice(&soup);
            v
        }[..]] {
            // TrailingBytes reports the leftover count, which is also
            // bounded by the buffer.
            if let Err(e) = decode_request(body) {
                prop_assert!(e.offset <= body.len(),
                    "request offset {} beyond body {}", e.offset, body.len());
            }
            if let Err(e) = decode_response(body) {
                prop_assert!(e.offset <= body.len(),
                    "response offset {} beyond body {}", e.offset, body.len());
            }
        }
    }

    /// Header validation is total on arbitrary 8-byte headers and
    /// never admits a length beyond the cap.
    #[test]
    fn header_total(raw in proptest::collection::vec(any::<u8>(), HEADER_LEN..HEADER_LEN + 1),
                    cap in 0u32..1_000_000) {
        let header: &[u8; HEADER_LEN] = raw[..].try_into().unwrap();
        if let Ok(len) = frame_len(header, cap) {
            prop_assert!(len <= cap as usize);
            prop_assert_eq!(&raw[..4], &MAGIC[..]);
        }
    }

    /// Truncating a valid frame body at any point fails typed, with
    /// the offset inside the truncated buffer.
    #[test]
    fn truncation_is_typed(req in arb_request(), cut in any::<prop::sample::Index>()) {
        let frame = encode_request(&req);
        let body = &frame[HEADER_LEN..];
        let cut = cut.index(body.len().max(1)).min(body.len().saturating_sub(1));
        let err = decode_request(&body[..cut]).unwrap_err();
        prop_assert!(err.offset <= cut);
    }

    /// Flipping any single byte of a valid frame body either still
    /// decodes (to something) or fails typed — never panics.
    #[test]
    fn bitflips_never_panic(req in arb_request(),
                            at in any::<prop::sample::Index>(),
                            byte in any::<u8>()) {
        let frame = encode_request(&req);
        let mut body = frame[HEADER_LEN..].to_vec();
        if !body.is_empty() {
            let i = at.index(body.len());
            body[i] = byte;
            let _ = decode_request(&body);
            let _ = decode_response(&body);
        }
    }
}
