//! End-to-end tests of the resident daemon over real loopback sockets:
//! warm-cache protect, fail-closed verify, status/report, graceful
//! drain with typed `Shutdown` refusals, overload shedding with zero
//! accepted-then-dropped jobs, and the per-connection read timeout.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parallax_engine::ShedReason;
use parallax_serve::{
    Client, FlightConfig, JobSpec, Request, Response, ServeOptions, ServeSummary, Server,
    ServerHandle,
};

const SRC: &str = "fn vf(x) { return x * 5 + 3; }\nfn main() { return vf(7); }\n";

fn spawn(opts: ServeOptions) -> (ServerHandle, SocketAddr, JoinHandle<ServeSummary>) {
    let server = Server::bind(opts).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let t = std::thread::spawn(move || server.run().expect("server runs"));
    (handle, addr, t)
}

fn client(addr: SocketAddr) -> Client {
    Client::connect(&addr.to_string(), Duration::from_secs(30)).expect("connect")
}

fn protect_req(seed: u64) -> Request {
    Request::Protect {
        spec: JobSpec::Inline(SRC.to_string()),
        mode: String::new(),
        seed,
        verify: vec!["vf".to_string()],
    }
}

#[test]
fn protect_verify_status_report_roundtrip() {
    let (handle, addr, t) = spawn(ServeOptions::default());
    let mut c = client(addr);

    // Cold protect, then the same request again: the second answer
    // must be served from the warm artifact cache, byte-identical.
    let (image, cached_cold) = match c.call(&protect_req(7)).expect("protect") {
        Response::Protected { image, cached, .. } => (image, cached),
        other => panic!("expected Protected, got {other:?}"),
    };
    assert!(!cached_cold, "cold request must compute");
    assert!(!image.is_empty());
    let (image2, cached_warm) = match c.call(&protect_req(7)).expect("repeat protect") {
        Response::Protected { image, cached, .. } => (image, cached),
        other => panic!("expected Protected, got {other:?}"),
    };
    assert!(cached_warm, "repeat request must hit the warm cache");
    assert_eq!(image, image2, "cache hit must be byte-identical");

    // The protected image passes fail-closed verification; corrupting
    // one byte makes it fail with a typed detail, not a panic.
    match c
        .call(&Request::Verify {
            image: image.clone(),
            strict: true,
        })
        .expect("verify")
    {
        Response::VerifyResult { ok, .. } => assert!(ok, "clean image verifies"),
        other => panic!("expected VerifyResult, got {other:?}"),
    }
    let mut bad = image.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    match c
        .call(&Request::Verify {
            image: bad,
            strict: false,
        })
        .expect("verify corrupt")
    {
        Response::VerifyResult { ok, detail } => {
            assert!(!ok, "corrupt image must fail closed");
            assert!(!detail.is_empty());
        }
        other => panic!("expected VerifyResult, got {other:?}"),
    }

    // Status reflects the admitted jobs; report renders the service
    // section with per-kind latency.
    match c.call(&Request::Status).expect("status") {
        Response::Status {
            admitted,
            shed,
            text,
            ..
        } => {
            assert_eq!(admitted, 4, "four jobs admitted so far");
            assert_eq!(shed, 0);
            assert!(text.contains("jobs"), "{text}");
        }
        other => panic!("expected Status, got {other:?}"),
    }
    match c.call(&Request::Report).expect("report") {
        Response::Report { text } => {
            assert!(text.contains("service"), "{text}");
            assert!(text.contains("protect"), "{text}");
            assert!(text.contains("p99"), "{text}");
        }
        other => panic!("expected Report, got {other:?}"),
    }

    // A malformed body on an intact frame is answered typed and the
    // connection survives.
    // (Exercised through the public API: an unknown opcode.)
    drop(handle);
    assert!(matches!(
        c.call(&Request::Shutdown).expect("shutdown"),
        Response::ShuttingDown
    ));
    drop(c);
    let summary = t.join().expect("no panic");
    assert_eq!(summary.admitted, 4);
    assert_eq!(summary.shed, 0);
    assert!(summary.metrics_text.contains("admission"));
}

#[test]
fn drain_refuses_new_work_with_typed_shutdown() {
    let (_handle, addr, t) = spawn(ServeOptions::default());
    let mut a = client(addr);
    let mut b = client(addr);

    // Warm the engine with one job so drain has something behind it.
    assert!(matches!(
        a.call(&protect_req(1)).expect("protect"),
        Response::Protected { .. }
    ));

    assert!(matches!(
        a.call(&Request::Shutdown).expect("shutdown"),
        Response::ShuttingDown
    ));
    // A request arriving on another live connection during drain gets
    // the typed Shutdown refusal, not a hang and not a dropped socket.
    match b.call(&protect_req(2)).expect("refused, not dropped") {
        Response::Refused { reason, detail } => {
            assert_eq!(reason, ShedReason::Shutdown);
            assert!(detail.contains("drain"), "{detail}");
        }
        other => panic!("expected Refused, got {other:?}"),
    }
    drop(a);
    drop(b);
    let summary = t.join().expect("no panic");
    assert_eq!(summary.admitted, 1);
    assert_eq!(summary.shed, 1);
}

#[test]
fn overload_sheds_typed_and_never_drops_admitted_jobs() {
    // One worker, a one-slot queue, and a burst of concurrent distinct
    // requests: most must be shed as QueueFull, and every response is
    // either Protected or Refused — an admitted job is never dropped.
    let (handle, addr, t) = spawn(ServeOptions {
        workers: 1,
        queue_capacity: 1,
        ..ServeOptions::default()
    });
    const BURST: u64 = 16;
    let protected = Arc::new(AtomicU64::new(0));
    let refused = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..BURST)
        .map(|i| {
            let protected = Arc::clone(&protected);
            let refused = Arc::clone(&refused);
            std::thread::spawn(move || {
                let mut c = client(addr);
                // Distinct seeds: every job is a cache miss, keeping
                // the single worker busy long enough to saturate.
                match c.call(&protect_req(1000 + i)).expect("typed answer") {
                    Response::Protected { .. } => protected.fetch_add(1, Ordering::SeqCst),
                    Response::Refused {
                        reason: ShedReason::QueueFull,
                        ..
                    } => refused.fetch_add(1, Ordering::SeqCst),
                    other => panic!("expected Protected or Refused(QueueFull), got {other:?}"),
                };
            })
        })
        .collect();
    for th in threads {
        th.join().expect("client thread");
    }
    let protected = protected.load(Ordering::SeqCst);
    let refused = refused.load(Ordering::SeqCst);
    assert_eq!(protected + refused, BURST, "every request got an answer");
    assert!(refused > 0, "saturation must shed");
    assert!(protected > 0, "admitted work must complete");

    handle.shutdown();
    let summary = t.join().expect("no panic");
    // Zero accepted-then-dropped: everything admitted was answered
    // with a Protected response.
    assert_eq!(summary.admitted, protected);
    assert_eq!(summary.shed, refused);
}

#[test]
fn anomalies_trip_the_flight_recorder() {
    // Saturate a one-worker/one-slot daemon with the slow-request
    // threshold at zero: every completed request and every queue-full
    // refusal is an anomaly, so the black box must fill
    // deterministically. A corrupt verify adds the third trigger kind.
    let dir = std::env::temp_dir().join(format!("plx-blackbox-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (handle, addr, t) = spawn(ServeOptions {
        workers: 1,
        queue_capacity: 1,
        flight: FlightConfig {
            slow_request_us: Some(0),
            blackbox_dir: Some(dir.clone()),
            ..FlightConfig::default()
        },
        ..ServeOptions::default()
    });
    const BURST: u64 = 16;
    let refused = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..BURST)
        .map(|i| {
            let refused = Arc::clone(&refused);
            std::thread::spawn(move || {
                let mut c = client(addr);
                match c.call(&protect_req(2000 + i)).expect("typed answer") {
                    Response::Protected { .. } => {}
                    Response::Refused {
                        reason: ShedReason::QueueFull,
                        ..
                    } => {
                        refused.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("expected Protected or Refused(QueueFull), got {other:?}"),
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("client thread");
    }
    assert!(
        refused.load(Ordering::SeqCst) > 0,
        "saturation must shed at least one job"
    );

    // An unloadable image fails verification -> verify-fail snapshot.
    let mut c = client(addr);
    match c
        .call(&Request::Verify {
            image: vec![0xde, 0xad, 0xbe, 0xef],
            strict: false,
        })
        .expect("verify garbage")
    {
        Response::VerifyResult { ok, .. } => assert!(!ok, "garbage must fail verification"),
        other => panic!("expected VerifyResult, got {other:?}"),
    }

    // The wire Report opcode exposes the retained snapshots.
    let text = match c.call(&Request::Report).expect("report") {
        Response::Report { text } => text,
        other => panic!("expected Report, got {other:?}"),
    };
    assert!(text.contains("flight recorder"), "{text}");
    assert!(text.contains("snapshot #"), "{text}");
    assert!(text.contains("slow-request"), "{text}");
    assert!(text.contains("verify-fail"), "{text}");
    assert!(text.contains("shed"), "{text}");

    // The black-box directory holds NDJSON dumps for each trigger
    // kind, and each dump leads with its trigger line.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("blackbox dir exists")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    for kind in ["shed", "slow-request", "verify-fail"] {
        assert!(
            names
                .iter()
                .any(|n| n.contains(kind) && n.ends_with(".ndjson")),
            "missing {kind} dump in {names:?}"
        );
    }
    let sample = std::fs::read_to_string(dir.join(&names[0])).expect("dump readable");
    assert!(
        sample
            .lines()
            .next()
            .unwrap_or("")
            .contains("\"type\":\"snapshot\""),
        "{sample}"
    );

    handle.shutdown();
    t.join().expect("no panic");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_connections_hit_the_read_timeout() {
    let (handle, addr, t) = spawn(ServeOptions {
        read_timeout: Duration::from_millis(150),
        ..ServeOptions::default()
    });
    let mut c = client(addr);
    std::thread::sleep(Duration::from_millis(500));
    // The daemon dropped the idle connection; the next exchange fails
    // at the transport level instead of hanging.
    assert!(
        c.call(&Request::Status).is_err(),
        "idle connection must be disconnected"
    );
    // A fresh connection still works.
    let mut c2 = client(addr);
    assert!(matches!(
        c2.call(&Request::Status).expect("status"),
        Response::Status { .. }
    ));
    handle.shutdown();
    t.join().expect("no panic");
}
