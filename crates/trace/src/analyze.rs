//! Critical-path and concurrency analysis over a parsed [`TraceFile`].
//!
//! `plx profile` (and the bottlenecks section of `plx report`) are
//! built on [`analyze`]: it reconstructs the lane timeline of a
//! protect() run from the span DAG, sweeps it, and reports
//!
//! * the **critical-path length** — the union of lane-busy time, i.e.
//!   the wall time that cannot be removed by adding workers because at
//!   least one lane is executing;
//! * the **serial / parallel split** — time with exactly one lane
//!   active vs. two or more (the measured Amdahl serial fraction);
//! * the **Amdahl ceiling** for N workers implied by that fraction;
//! * per-span-name **serial attribution** (which spans the run was
//!   single-laned inside — the top blockers); and
//! * per-**stage** wall/serial splits for the pipeline's stage spans.
//!
//! Lanes whose name marks them as cycle-denominated (ending in
//! `"(cycles)"`, e.g. the VM chain-trace lane) are excluded: their
//! timestamps are not microseconds and would corrupt the sweep.

use std::collections::BTreeMap;

use crate::read::{SpanRec, TraceFile};

/// Serial time attributed to one span name: how long the run was
/// single-laned while this span was the innermost active one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialSpan {
    /// Span name, with any `#<item>` suffix stripped (pool item spans
    /// aggregate per site).
    pub name: String,
    /// Microseconds with exactly this span active and no other lane
    /// busy.
    pub serial_us: u64,
}

/// Wall/serial split of one pipeline stage (spans with category
/// `"stage"`), aggregated by name across fixpoint passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProfile {
    /// Stage name (e.g. `"gadget-scan"`).
    pub name: String,
    /// Total stage span duration, µs.
    pub wall_us: u64,
    /// Portion of that duration with at most one lane busy, µs.
    pub serial_us: u64,
}

impl StageProfile {
    /// `serial_us / wall_us` (1.0 for a zero-length stage).
    pub fn serial_fraction(&self) -> f64 {
        if self.wall_us == 0 {
            1.0
        } else {
            self.serial_us as f64 / self.wall_us as f64
        }
    }
}

/// The result of [`analyze`]: the concurrency structure of one trace.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Earliest included span start, µs.
    pub start_us: u64,
    /// Latest included span end, µs.
    pub end_us: u64,
    /// Critical-path length: union of lane-busy time, µs. Adding
    /// workers cannot push the run below this.
    pub critical_us: u64,
    /// Time with exactly one lane active, µs.
    pub serial_us: u64,
    /// Time with two or more lanes active, µs.
    pub parallel_us: u64,
    /// Time inside the run window with no lane active, µs.
    pub idle_us: u64,
    /// Lanes that carried at least one included span.
    pub lanes: usize,
    /// Peak number of simultaneously busy lanes.
    pub max_concurrency: usize,
    /// Serial time by span name, descending (the top blockers).
    pub serial_spans: Vec<SerialSpan>,
    /// Per-stage wall/serial splits, in pipeline-span order.
    pub stages: Vec<StageProfile>,
}

impl Profile {
    /// Run window length (`end_us - start_us`).
    pub fn wall_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Measured Amdahl serial fraction: the share of the critical path
    /// that ran single-laned. 1.0 for an empty profile.
    pub fn serial_fraction(&self) -> f64 {
        if self.critical_us == 0 {
            1.0
        } else {
            self.serial_us as f64 / self.critical_us as f64
        }
    }

    /// The speedup ceiling Amdahl's law implies for `n` workers given
    /// the measured serial fraction: `1 / (s + (1 - s) / n)`.
    pub fn amdahl_ceiling(&self, n: usize) -> f64 {
        let s = self.serial_fraction();
        let n = n.max(1) as f64;
        1.0 / (s + (1.0 - s) / n)
    }
}

/// Strips a pool item span's `#<item>` suffix so per-item spans
/// aggregate under their site name.
fn group_name(name: &str) -> &str {
    name.split('#').next().unwrap_or(name)
}

/// True when the lane's recorded name marks it as cycle-denominated
/// (not microseconds), e.g. `"vm-chain (cycles)"`.
fn is_cycle_lane(tf: &TraceFile, tid: u64) -> bool {
    tf.thread_names
        .get(&tid)
        .is_some_and(|n| n.ends_with("(cycles)"))
}

/// Sweeps the trace's span timeline and computes its [`Profile`].
///
/// Every wall-clock span participates: per lane, overlapping and
/// nested spans union into busy intervals; the sweep then counts busy
/// lanes per elementary slice. Serial slices (exactly one busy lane)
/// are attributed to the innermost span active on that lane.
pub fn analyze(tf: &TraceFile) -> Profile {
    let included: Vec<&SpanRec> = tf
        .spans
        .iter()
        .filter(|s| !is_cycle_lane(tf, s.tid))
        .collect();
    if included.is_empty() {
        return Profile::default();
    }

    // Per-lane span lists and merged busy intervals.
    let mut lanes: BTreeMap<u64, Vec<&SpanRec>> = BTreeMap::new();
    for s in &included {
        lanes.entry(s.tid).or_default().push(s);
    }
    let mut lane_busy: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for (&tid, spans) in &lanes {
        let mut iv: Vec<(u64, u64)> = spans
            .iter()
            .map(|s| (s.ts_us, s.ts_us + s.dur_us.max(1)))
            .collect();
        iv.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
        for (a, b) in iv {
            match merged.last_mut() {
                Some((_, end)) if a <= *end => *end = (*end).max(b),
                _ => merged.push((a, b)),
            }
        }
        lane_busy.insert(tid, merged);
    }

    // Elementary slice boundaries: every span edge (not just merged
    // busy-interval edges — attribution needs to see nested and
    // back-to-back span boundaries too).
    let mut cuts: Vec<u64> = included
        .iter()
        .flat_map(|s| [s.ts_us, s.ts_us + s.dur_us.max(1)])
        .collect();
    cuts.sort_unstable();
    cuts.dedup();

    let mut prof = Profile {
        start_us: cuts.first().copied().unwrap_or(0),
        end_us: cuts.last().copied().unwrap_or(0),
        lanes: lanes.len(),
        ..Profile::default()
    };
    let mut serial_by_name: BTreeMap<String, u64> = BTreeMap::new();
    // (slice start, slice end, busy-lane count) — kept for the stage
    // overlap pass below.
    let mut slices: Vec<(u64, u64, usize)> = Vec::with_capacity(cuts.len());
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let len = b - a;
        let busy: Vec<u64> = lane_busy
            .iter()
            .filter(|(_, iv)| iv.iter().any(|&(s, e)| s <= a && b <= e))
            .map(|(&tid, _)| tid)
            .collect();
        let k = busy.len();
        slices.push((a, b, k));
        prof.max_concurrency = prof.max_concurrency.max(k);
        match k {
            0 => prof.idle_us += len,
            1 => {
                prof.critical_us += len;
                prof.serial_us += len;
                // Attribute to the innermost active span on the lane:
                // the covering span with the latest start (ties: the
                // shortest).
                let tid = busy[0];
                if let Some(span) = lanes[&tid]
                    .iter()
                    .filter(|s| s.ts_us <= a && b <= s.ts_us + s.dur_us.max(1))
                    .min_by_key(|s| (u64::MAX - s.ts_us, s.dur_us))
                {
                    *serial_by_name
                        .entry(group_name(&span.name).to_string())
                        .or_insert(0) += len;
                }
            }
            _ => {
                prof.critical_us += len;
                prof.parallel_us += len;
            }
        }
    }

    let mut serial_spans: Vec<SerialSpan> = serial_by_name
        .into_iter()
        .map(|(name, serial_us)| SerialSpan { name, serial_us })
        .collect();
    serial_spans.sort_by(|x, y| y.serial_us.cmp(&x.serial_us).then(x.name.cmp(&y.name)));
    prof.serial_spans = serial_spans;

    // Stage profiles: overlap each `cat == "stage"` span's window with
    // the sweep's ≤1-lane slices, aggregated by stage name.
    let mut stage_order: Vec<String> = Vec::new();
    let mut stages: BTreeMap<String, StageProfile> = BTreeMap::new();
    for s in included.iter().filter(|s| s.cat == "stage") {
        let (w0, w1) = (s.ts_us, s.ts_us + s.dur_us);
        let serial: u64 = slices
            .iter()
            .filter(|&&(_, _, k)| k <= 1)
            .map(|&(a, b, _)| b.min(w1).saturating_sub(a.max(w0)))
            .sum();
        let entry = stages.entry(s.name.clone()).or_insert_with(|| {
            stage_order.push(s.name.clone());
            StageProfile {
                name: s.name.clone(),
                wall_us: 0,
                serial_us: 0,
            }
        });
        entry.wall_us += s.dur_us;
        entry.serial_us += serial;
    }
    prof.stages = stage_order
        .into_iter()
        .filter_map(|n| stages.remove(&n))
        .collect();
    prof
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, cat: &str, tid: u64, ts: u64, dur: u64) -> SpanRec {
        SpanRec {
            name: name.to_string(),
            cat: cat.to_string(),
            tid,
            ts_us: ts,
            dur_us: dur,
            id: 0,
            parent: None,
        }
    }

    #[test]
    fn empty_trace_profiles_empty() {
        let p = analyze(&TraceFile::default());
        assert_eq!(p.critical_us, 0);
        assert_eq!(p.serial_fraction(), 1.0);
        assert_eq!(p.amdahl_ceiling(8), 1.0);
    }

    #[test]
    fn pure_serial_dag() {
        // One lane, two back-to-back spans: everything is serial, and
        // no worker count can speed it up.
        let tf = TraceFile {
            spans: vec![
                span("scan", "stage", 0, 0, 60),
                span("chain-compile", "stage", 0, 60, 40),
            ],
            ..TraceFile::default()
        };
        let p = analyze(&tf);
        assert_eq!(p.critical_us, 100, "critical path is the whole run");
        assert_eq!(p.serial_us, 100);
        assert_eq!(p.parallel_us, 0);
        assert_eq!(p.idle_us, 0);
        assert_eq!(p.serial_fraction(), 1.0);
        assert_eq!(p.amdahl_ceiling(4), 1.0);
        assert_eq!(p.amdahl_ceiling(1024), 1.0);
        assert_eq!(p.max_concurrency, 1);
        // Both spans are attributed their own serial time.
        assert_eq!(p.serial_spans.len(), 2);
        assert_eq!(p.serial_spans[0].name, "scan");
        assert_eq!(p.serial_spans[0].serial_us, 60);
        assert_eq!(p.serial_spans[1].serial_us, 40);
    }

    #[test]
    fn perfectly_parallel_dag() {
        // Four lanes fully overlapped: critical path is one lane's
        // length, serial fraction 0, ceiling N.
        let spans = (0..4)
            .map(|w| span(&format!("chain#{w}"), "pool", w, 0, 100))
            .collect();
        let tf = TraceFile {
            spans,
            ..TraceFile::default()
        };
        let p = analyze(&tf);
        assert_eq!(p.critical_us, 100, "critical path is one lane");
        assert_eq!(p.serial_us, 0);
        assert_eq!(p.parallel_us, 100);
        assert_eq!(p.serial_fraction(), 0.0);
        assert_eq!(p.amdahl_ceiling(4), 4.0);
        assert_eq!(p.amdahl_ceiling(8), 8.0);
        assert_eq!(p.max_concurrency, 4);
        assert!(p.serial_spans.is_empty());
    }

    #[test]
    fn one_straggler_worker() {
        // Three workers finish at t=10; one runs to t=100. The
        // critical path is the straggler's lane; 90 of its 100 µs are
        // single-laned, so s = 0.9 and the 4-worker ceiling is
        // 1 / (0.9 + 0.1/4) = 1.081081...
        let mut spans: Vec<SpanRec> = (0..3)
            .map(|w| span(&format!("scan#{w}"), "pool", w, 0, 10))
            .collect();
        spans.push(span("scan#3", "pool", 3, 0, 100));
        let tf = TraceFile {
            spans,
            ..TraceFile::default()
        };
        let p = analyze(&tf);
        assert_eq!(p.critical_us, 100, "straggler sets the critical path");
        assert_eq!(p.serial_us, 90);
        assert_eq!(p.parallel_us, 10);
        assert_eq!(p.serial_fraction(), 0.9);
        let ceiling = p.amdahl_ceiling(4);
        assert!(
            (ceiling - 1.0 / (0.9 + 0.1 / 4.0)).abs() < 1e-12,
            "got {ceiling}"
        );
        // The straggler's site owns all the serial time.
        assert_eq!(
            p.serial_spans,
            vec![SerialSpan {
                name: "scan".to_string(),
                serial_us: 90,
            }]
        );
    }

    #[test]
    fn nested_spans_do_not_double_count_and_innermost_wins() {
        // A root span covering [0,100) with a child [20,50): one lane,
        // all serial, and the child's window is attributed to the
        // child (innermost), the rest to the root.
        let mut root = span("protect", "pipeline", 0, 0, 100);
        root.id = 1;
        let mut child = span("link", "stage", 0, 20, 30);
        child.id = 2;
        child.parent = Some(1);
        let tf = TraceFile {
            spans: vec![root, child],
            ..TraceFile::default()
        };
        let p = analyze(&tf);
        assert_eq!(p.critical_us, 100);
        assert_eq!(p.serial_us, 100);
        let by_name: BTreeMap<&str, u64> = p
            .serial_spans
            .iter()
            .map(|s| (s.name.as_str(), s.serial_us))
            .collect();
        assert_eq!(by_name["protect"], 70);
        assert_eq!(by_name["link"], 30);
    }

    #[test]
    fn idle_gaps_and_cycle_lanes() {
        // A gap between two spans is idle; a cycle-denominated lane is
        // excluded entirely even though its timestamps are enormous.
        let mut tf = TraceFile {
            spans: vec![
                span("a", "stage", 0, 0, 10),
                span("b", "stage", 0, 30, 10),
                span("ep", "vm", 7, 1_000_000_000, 5_000_000_000),
            ],
            ..TraceFile::default()
        };
        tf.thread_names.insert(7, "vm-chain (cycles)".to_string());
        let p = analyze(&tf);
        assert_eq!(p.lanes, 1, "cycle lane is excluded");
        assert_eq!(p.critical_us, 20);
        assert_eq!(p.idle_us, 20);
        assert_eq!(p.end_us, 40);
    }

    #[test]
    fn stage_profiles_split_wall_and_serial() {
        // A gadget-scan stage span [0,100) on lane 0; pool lanes busy
        // [10,60) — so 50 µs of the stage are parallel, 50 serial.
        let tf = TraceFile {
            spans: vec![
                span("gadget-scan", "stage", 0, 0, 100),
                span("scan#0", "pool", 1, 10, 50),
                span("scan#1", "pool", 2, 10, 50),
            ],
            ..TraceFile::default()
        };
        let p = analyze(&tf);
        assert_eq!(p.stages.len(), 1);
        let st = &p.stages[0];
        assert_eq!(st.name, "gadget-scan");
        assert_eq!(st.wall_us, 100);
        assert_eq!(st.serial_us, 50);
        assert!((st.serial_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(p.max_concurrency, 3);
    }
}
