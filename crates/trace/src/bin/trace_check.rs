//! CI gate: validates that Chrome trace files parse and are non-empty.
//!
//! Usage: `trace_check [--require <prefix>]... <trace.json>...` —
//! exits nonzero if any file is unreadable, is not valid Chrome
//! trace-event JSON, contains no events, or is missing a required
//! counter/histogram namespace (`--require pool.` demands at least one
//! counter or histogram whose name starts with `pool.`). Prints a
//! one-line summary per file.

use std::process::ExitCode;

use parallax_trace::TraceFile;

fn check(path: &str, require: &[String]) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let tf = TraceFile::parse(&text)?;
    if tf.spans.is_empty() {
        return Err("trace contains no spans".to_string());
    }
    for prefix in require {
        let hit = tf.counters.keys().any(|k| k.starts_with(prefix.as_str()))
            || tf.hists.keys().any(|k| k.starts_with(prefix.as_str()));
        if !hit {
            return Err(format!(
                "no counter or histogram in required namespace `{prefix}*`"
            ));
        }
    }
    Ok(format!(
        "{} spans, {} instants, {} counters, {} histograms, {} lanes",
        tf.spans.len(),
        tf.instants.len(),
        tf.counters.len(),
        tf.hists.len(),
        tf.thread_names.len()
    ))
}

fn main() -> ExitCode {
    let mut require: Vec<String> = Vec::new();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--require" {
            match args.next() {
                Some(p) => require.push(p),
                None => {
                    eprintln!("--require needs a namespace prefix");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(a);
        }
    }
    if paths.is_empty() {
        eprintln!("usage: trace_check [--require <prefix>]... <trace.json>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match check(path, &require) {
            Ok(summary) => println!("OK {path}: {summary}"),
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
