//! CI gate: validates that Chrome trace files parse and are non-empty.
//!
//! Usage: `trace_check <trace.json>...` — exits nonzero if any file
//! is unreadable, is not valid Chrome trace-event JSON, or contains
//! no events. Prints a one-line summary per file.

use std::process::ExitCode;

use parallax_trace::TraceFile;

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let tf = TraceFile::parse(&text)?;
    if tf.spans.is_empty() {
        return Err("trace contains no spans".to_string());
    }
    Ok(format!(
        "{} spans, {} instants, {} counters, {} histograms, {} lanes",
        tf.spans.len(),
        tf.instants.len(),
        tf.counters.len(),
        tf.hists.len(),
        tf.thread_names.len()
    ))
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.json>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match check(path) {
            Ok(summary) => println!("OK {path}: {summary}"),
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
