//! Exporters: Chrome trace-event JSON and NDJSON.
//!
//! The Chrome format is the interchange format — `chrome://tracing`
//! and Perfetto load it directly, and [`crate::read`] parses it back
//! for `plx report --from`/`--diff`. Every span becomes a complete
//! (`"ph":"X"`) event carrying its id and parent link in `args`;
//! instants become `"ph":"i"`; counters and histograms are emitted as
//! `"ph":"C"` counter samples at the snapshot timestamp, with the
//! `counter.`/`hist.` name prefixes the reader keys on.

use crate::tracer::{ArgValue, Event, TraceSnapshot};

/// Appends `s` to `out` as the body of a JSON string literal.
pub fn esc_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    esc_json(val, out);
    out.push('"');
}

fn push_args(out: &mut String, args: &[(String, ArgValue)]) {
    out.push_str("\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        esc_json(k, out);
        out.push_str("\":");
        match v {
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::Str(s) => {
                out.push('"');
                esc_json(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Renders a snapshot as Chrome trace-event JSON
/// (`{"traceEvents":[...]}`), loadable in `chrome://tracing`.
pub fn chrome_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n{");
    };

    for (tid, name) in snap.thread_names.iter().enumerate() {
        sep(&mut out);
        out.push_str("\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,");
        out.push_str(&format!("\"tid\":{tid},"));
        out.push_str("\"args\":{\"name\":\"");
        esc_json(name, &mut out);
        out.push_str("\"}}");
    }

    for ev in &snap.events {
        sep(&mut out);
        match ev {
            Event::Span {
                id,
                parent,
                name,
                cat,
                tid,
                start_us,
                dur_us,
            } => {
                out.push_str("\"ph\":\"X\",");
                push_str_field(&mut out, "name", name);
                out.push(',');
                push_str_field(&mut out, "cat", cat);
                out.push_str(&format!(
                    ",\"ts\":{start_us},\"dur\":{dur_us},\"pid\":1,\"tid\":{tid},"
                ));
                let mut args = vec![("id".to_string(), ArgValue::U64(*id))];
                if let Some(p) = parent {
                    args.push(("parent".to_string(), ArgValue::U64(*p)));
                }
                push_args(&mut out, &args);
                out.push('}');
            }
            Event::Instant {
                name,
                cat,
                tid,
                ts_us,
                args,
            } => {
                out.push_str("\"ph\":\"i\",\"s\":\"t\",");
                push_str_field(&mut out, "name", name);
                out.push(',');
                push_str_field(&mut out, "cat", cat);
                out.push_str(&format!(",\"ts\":{ts_us},\"pid\":1,\"tid\":{tid},"));
                push_args(&mut out, args);
                out.push('}');
            }
        }
    }

    for (name, value) in &snap.counters {
        sep(&mut out);
        out.push_str("\"ph\":\"C\",");
        push_str_field(&mut out, "name", &format!("counter.{name}"));
        out.push_str(&format!(",\"ts\":{},\"pid\":1,\"tid\":0,", snap.end_us));
        push_args(&mut out, &[("value".to_string(), ArgValue::U64(*value))]);
        out.push('}');
    }

    for (name, h) in &snap.hists {
        sep(&mut out);
        out.push_str("\"ph\":\"C\",");
        push_str_field(&mut out, "name", &format!("hist.{name}"));
        out.push_str(&format!(",\"ts\":{},\"pid\":1,\"tid\":0,", snap.end_us));
        let mut args = vec![
            ("count".to_string(), ArgValue::U64(h.count)),
            ("sum".to_string(), ArgValue::U64(h.sum)),
            ("min".to_string(), ArgValue::U64(h.min)),
            ("max".to_string(), ArgValue::U64(h.max)),
        ];
        for (i, n) in h.buckets.iter().enumerate() {
            if *n > 0 {
                args.push((format!("p2_{i}"), ArgValue::U64(*n)));
            }
        }
        push_args(&mut out, &args);
        out.push('}');
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"parallax-trace\"}}\n");
    out
}

/// Renders a snapshot as newline-delimited JSON, one event per line,
/// in the same style as the engine's `--log-json` output.
pub fn ndjson(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    for ev in &snap.events {
        match ev {
            Event::Span {
                id,
                parent,
                name,
                cat,
                tid,
                start_us,
                dur_us,
            } => {
                out.push_str("{\"type\":\"span\",");
                push_str_field(&mut out, "name", name);
                out.push(',');
                push_str_field(&mut out, "cat", cat);
                out.push_str(&format!(
                    ",\"tid\":{tid},\"ts_us\":{start_us},\"dur_us\":{dur_us},\"id\":{id}"
                ));
                if let Some(p) = parent {
                    out.push_str(&format!(",\"parent\":{p}"));
                }
                out.push_str("}\n");
            }
            Event::Instant {
                name,
                cat,
                tid,
                ts_us,
                args,
            } => {
                out.push_str("{\"type\":\"instant\",");
                push_str_field(&mut out, "name", name);
                out.push(',');
                push_str_field(&mut out, "cat", cat);
                out.push_str(&format!(",\"tid\":{tid},\"ts_us\":{ts_us},"));
                push_args(&mut out, args);
                out.push_str("}\n");
            }
        }
    }
    for (name, value) in &snap.counters {
        out.push_str("{\"type\":\"counter\",");
        push_str_field(&mut out, "name", name);
        out.push_str(&format!(",\"value\":{value}}}\n"));
    }
    for (name, h) in &snap.hists {
        out.push_str("{\"type\":\"hist\",");
        push_str_field(&mut out, "name", name);
        out.push_str(&format!(
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{",
            h.count, h.sum, h.min, h.max
        ));
        let mut first = true;
        for (i, n) in h.buckets.iter().enumerate() {
            if *n > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"p2_{i}\":{n}"));
            }
        }
        out.push_str("}}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn esc_json_escapes_specials() {
        let mut s = String::new();
        esc_json("a\"b\\c\nd\te\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn chrome_json_has_span_and_counter() {
        let t = Tracer::new();
        {
            let _g = t.span("select", "stage");
        }
        t.count("jobs", 3);
        t.record("chain.words", 17);
        let json = chrome_json(&t.snapshot());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"select\""));
        assert!(json.contains("\"counter.jobs\""));
        assert!(json.contains("\"hist.chain.words\""));
        assert!(json.contains("\"p2_5\":1")); // 17 is 5 bits
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn ndjson_is_one_object_per_line() {
        let t = Tracer::new();
        {
            let _g = t.span("load", "stage");
        }
        t.instant(
            "gadget",
            "vm",
            vec![("vaddr".to_string(), crate::ArgValue::U64(0x1000))],
        );
        t.count("n", 1);
        let nd = ndjson(&t.snapshot());
        let lines: Vec<&str> = nd.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
