//! A minimal recursive-descent JSON parser.
//!
//! The workspace writes all its JSON by hand; this is the matching
//! reader, used to load Chrome traces back for `plx report` and the
//! CI `trace_check` gate. It accepts standard JSON (RFC 8259): all
//! escape forms including `\uXXXX` with surrogate pairs, nested
//! containers, and arbitrary whitespace. Numbers are kept as `f64`,
//! which is exact for every integer the exporters emit below 2^53.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, stored as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is not preserved (key-sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value truncated to `u64`, if it is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, val: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            map.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny"},"t":true,"n":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""q\"b\\sAé""#).unwrap();
        assert_eq!(v.as_str(), Some("q\"b\\sA\u{e9}"));
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn roundtrips_exporter_output() {
        let t = crate::Tracer::new();
        {
            let _g = t.span("name with \"quotes\" and \\slashes\\", "test");
        }
        t.count("c", 9);
        let json = crate::chrome_json(&t.snapshot());
        let v = parse(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(
            span.get("name").unwrap().as_str(),
            Some("name with \"quotes\" and \\slashes\\")
        );
    }
}
