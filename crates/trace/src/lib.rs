//! Hierarchical span tracing and execution telemetry for Parallax.
//!
//! The paper's evaluation (§VI, Figures 5a/5b/6) is all about runtime
//! numbers — per-function verification overhead, gadget-translation
//! cost, chain slowdown — and this crate is how the workspace produces
//! them. It is std-only and dependency-free, like everything else in
//! the tree:
//!
//! * [`Tracer`] records **hierarchical spans** (enter/exit with parent
//!   links and monotonic µs timing), **instant events** (e.g. one per
//!   gadget dispatched while a verification chain runs), **counters**,
//!   and **power-of-two bucket histograms** (chain lengths, gadget
//!   dispatch counts, VM cycles per verification invocation). It is
//!   `Send + Sync`: one tracer collects a whole multi-worker batch
//!   onto a single timeline, one lane per thread.
//! * [`export`] renders a snapshot as Chrome trace-event JSON
//!   (loadable in `chrome://tracing` / Perfetto) or as the workspace's
//!   hand-rolled NDJSON style.
//! * [`read`] parses a Chrome trace produced by [`export`] back into
//!   structured records — `plx report --from`/`--diff` and the CI
//!   `trace_check` binary are built on it — via the minimal JSON
//!   parser in [`json`].
//!
//! Everything is deterministic modulo timestamps: event order, ids,
//! counters and histogram contents depend only on the traced work.

#![warn(missing_docs)]

pub mod analyze;
pub mod export;
pub mod json;
pub mod read;
pub mod tracer;

pub use analyze::{analyze, Profile, SerialSpan, StageProfile};
pub use export::{chrome_json, esc_json, ndjson};
pub use read::{HistRec, InstantRec, SpanRec, TraceFile};
pub use tracer::{ArgValue, Event, Histogram, SpanGuard, SpanId, TraceSnapshot, Tracer};
