//! Reads Chrome trace-event JSON written by [`crate::export`] back
//! into structured records for reporting and CI validation.

use std::collections::BTreeMap;

use crate::json::{parse, Value};
use crate::tracer::ArgValue;

/// One complete (`"ph":"X"`) span from a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Span name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Thread lane.
    pub tid: u64,
    /// Start timestamp, µs.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Span id (0 if the file carried none).
    pub id: u64,
    /// Parent span id, if any.
    pub parent: Option<u64>,
}

/// One instant (`"ph":"i"`) event from a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantRec {
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Thread lane.
    pub tid: u64,
    /// Timestamp, µs.
    pub ts_us: u64,
    /// Arguments (numbers become `ArgValue::U64`).
    pub args: Vec<(String, ArgValue)>,
}

/// A histogram reconstructed from a `hist.*` counter event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistRec {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Minimum observation.
    pub min: u64,
    /// Maximum observation.
    pub max: u64,
    /// Non-empty power-of-two buckets as `(bit_length, count)`.
    pub buckets: Vec<(usize, u64)>,
}

impl HistRec {
    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`, mirroring
    /// `Histogram::percentile` on the writer side: the upper bound of
    /// the power-of-two bucket holding the rank-`ceil(q·count)`
    /// observation, clamped to `[min, max]`. 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            // Mirrors the writer: p0 is the observed minimum exactly.
            return self.min;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bits, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let hi = match bits {
                    0 => 0,
                    64 => u64::MAX,
                    b => (1u64 << b) - 1,
                };
                return hi.min(self.max).max(self.min);
            }
        }
        self.max
    }
}

/// Everything extracted from one Chrome trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceFile {
    /// All complete spans, in file order.
    pub spans: Vec<SpanRec>,
    /// All instant events, in file order.
    pub instants: Vec<InstantRec>,
    /// Counters (the `counter.` prefix is stripped).
    pub counters: BTreeMap<String, u64>,
    /// Histograms (the `hist.` prefix is stripped).
    pub hists: BTreeMap<String, HistRec>,
    /// Thread lane names from `thread_name` metadata, by tid.
    pub thread_names: BTreeMap<u64, String>,
}

fn str_of(ev: &Value, key: &str) -> String {
    ev.get(key)
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}

fn u64_of(ev: &Value, key: &str) -> u64 {
    ev.get(key).and_then(Value::as_u64).unwrap_or(0)
}

impl TraceFile {
    /// Parses Chrome trace-event JSON text. Fails on malformed JSON,
    /// a missing/empty `traceEvents` array, or non-object events.
    pub fn parse(text: &str) -> Result<TraceFile, String> {
        let root = parse(text)?;
        let events = root
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or("missing traceEvents array")?;
        if events.is_empty() {
            return Err("traceEvents is empty".to_string());
        }
        let mut tf = TraceFile::default();
        for ev in events {
            if ev.as_obj().is_none() {
                return Err("traceEvents entry is not an object".to_string());
            }
            let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
            let name = str_of(ev, "name");
            match ph {
                "X" => tf.spans.push(SpanRec {
                    cat: str_of(ev, "cat"),
                    tid: u64_of(ev, "tid"),
                    ts_us: u64_of(ev, "ts"),
                    dur_us: u64_of(ev, "dur"),
                    id: ev.get("args").map(|a| u64_of(a, "id")).unwrap_or(0),
                    parent: ev
                        .get("args")
                        .and_then(|a| a.get("parent"))
                        .and_then(Value::as_u64),
                    name,
                }),
                "i" => {
                    let mut args = Vec::new();
                    if let Some(m) = ev.get("args").and_then(Value::as_obj) {
                        for (k, v) in m {
                            match v {
                                Value::Num(_) => {
                                    args.push((k.clone(), ArgValue::U64(v.as_u64().unwrap_or(0))));
                                }
                                Value::Str(s) => args.push((k.clone(), ArgValue::Str(s.clone()))),
                                _ => {}
                            }
                        }
                    }
                    tf.instants.push(InstantRec {
                        cat: str_of(ev, "cat"),
                        tid: u64_of(ev, "tid"),
                        ts_us: u64_of(ev, "ts"),
                        args,
                        name,
                    });
                }
                "C" => {
                    let args = ev.get("args");
                    if let Some(rest) = name.strip_prefix("counter.") {
                        let v = args.map(|a| u64_of(a, "value")).unwrap_or(0);
                        tf.counters.insert(rest.to_string(), v);
                    } else if let Some(rest) = name.strip_prefix("hist.") {
                        let mut h = HistRec::default();
                        if let Some(a) = args {
                            h.count = u64_of(a, "count");
                            h.sum = u64_of(a, "sum");
                            h.min = u64_of(a, "min");
                            h.max = u64_of(a, "max");
                            if let Some(m) = a.as_obj() {
                                for (k, v) in m {
                                    if let Some(bits) = k.strip_prefix("p2_") {
                                        if let (Ok(b), Some(n)) =
                                            (bits.parse::<usize>(), v.as_u64())
                                        {
                                            h.buckets.push((b, n));
                                        }
                                    }
                                }
                            }
                        }
                        h.buckets.sort_unstable();
                        tf.hists.insert(rest.to_string(), h);
                    }
                }
                "M" if name == "thread_name" => {
                    let tid = u64_of(ev, "tid");
                    if let Some(n) = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                    {
                        tf.thread_names.insert(tid, n.to_string());
                    }
                }
                _ => {}
            }
        }
        Ok(tf)
    }

    /// Spans with the given name, in file order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRec> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Total duration (µs) of all spans with the given name.
    pub fn total_dur_us(&self, name: &str) -> u64 {
        self.spans_named(name).map(|s| s.dur_us).sum()
    }

    /// Direct children of the span with id `id`.
    pub fn children_of(&self, id: u64) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn roundtrip_spans_counters_hists() {
        let t = Tracer::new();
        let outer = t.enter("protect", "pipeline");
        {
            let _g = t.span("select", "stage");
        }
        t.exit(outer);
        t.instant(
            "gadget",
            "vm",
            vec![
                ("vaddr".to_string(), ArgValue::U64(0x8049000)),
                ("kind".to_string(), ArgValue::Str("pop".to_string())),
            ],
        );
        t.count("chain.pick.overlapping", 12);
        t.record("vm.verify.cycles", 4096);
        let json = crate::chrome_json(&t.snapshot());
        let tf = TraceFile::parse(&json).expect("parse own output");

        assert_eq!(tf.spans.len(), 2);
        let select = tf.spans_named("select").next().expect("select span");
        assert_eq!(select.parent, Some(1));
        assert_eq!(tf.instants.len(), 1);
        assert_eq!(
            tf.instants[0].args,
            vec![
                ("kind".to_string(), ArgValue::Str("pop".to_string())),
                ("vaddr".to_string(), ArgValue::U64(0x8049000)),
            ]
        );
        assert_eq!(tf.counters["chain.pick.overlapping"], 12);
        let h = &tf.hists["vm.verify.cycles"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 4096);
        assert_eq!(h.buckets, vec![(13, 1)]);
        assert_eq!(tf.children_of(1).len(), 1);
        assert!(tf.total_dur_us("protect") >= tf.total_dur_us("select"));
    }

    #[test]
    fn histrec_percentile_matches_writer_side() {
        // The same observations recorded into a live Histogram and
        // round-tripped through chrome_json must agree on quantiles.
        let t = crate::Tracer::new();
        for _ in 0..99 {
            t.record("serve.latency.protect_us", 100);
        }
        t.record("serve.latency.protect_us", 9_000);
        let live = t.snapshot().hists["serve.latency.protect_us"].clone();
        let json = crate::chrome_json(&t.snapshot());
        let tf = TraceFile::parse(&json).expect("parse own output");
        let rec = &tf.hists["serve.latency.protect_us"];
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(rec.percentile(q), live.percentile(q), "q={q}");
        }
        assert_eq!(rec.percentile(1.0), 9_000);
        assert_eq!(HistRec::default().percentile(0.99), 0);
    }

    /// Satellite edge cases: empty histogram, single sample, the
    /// saturating top bucket (bit length 64), and p0/p100 — asserted
    /// on both the writer (`Histogram`) and reader (`HistRec`) sides,
    /// plus exact round-trip parity through the Chrome exporter.
    #[test]
    fn percentile_edge_cases_agree_across_writer_and_reader() {
        use crate::tracer::Histogram;

        // Empty: 0 everywhere, on both sides.
        let empty = Histogram::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.percentile(q), 0);
            assert_eq!(HistRec::default().percentile(q), 0);
        }

        // Single sample: every quantile is that sample, exactly (the
        // bucket upper bound clamps to [min, max] = [v, v]).
        let t = Tracer::new();
        t.record("one", 100);
        // Saturating top bucket: u64::MAX lands in bucket 64, whose
        // upper bound must not overflow on either side.
        t.record("top", u64::MAX);
        t.record("top", 1);
        // p0 vs a shared bucket: 5 and 7 share bucket 3; p0 must be
        // the true minimum, not the bucket's upper bound.
        t.record("shared", 5);
        t.record("shared", 7);
        let live = t.snapshot().hists.clone();
        let tf = TraceFile::parse(&crate::chrome_json(&t.snapshot())).expect("parse own output");

        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(live["one"].percentile(q), 100, "single sample q={q}");
            assert_eq!(tf.hists["one"].percentile(q), 100, "single sample q={q}");
        }
        assert_eq!(live["top"].percentile(1.0), u64::MAX);
        assert_eq!(tf.hists["top"].percentile(1.0), u64::MAX);
        assert_eq!(live["top"].percentile(0.0), 1);
        assert_eq!(tf.hists["top"].percentile(0.0), 1);
        assert_eq!(live["shared"].percentile(0.0), 5, "p0 is the exact minimum");
        assert_eq!(tf.hists["shared"].percentile(0.0), 5);
        assert_eq!(live["shared"].percentile(1.0), 7);
        assert_eq!(tf.hists["shared"].percentile(1.0), 7);

        // Full writer/reader parity across every histogram and a
        // quantile grid (including the saturating bucket).
        for (name, h) in &live {
            let rec = &tf.hists[name];
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(rec.percentile(q), h.percentile(q), "{name} q={q}");
            }
        }
    }

    #[test]
    fn rejects_empty_trace() {
        assert!(TraceFile::parse("{\"traceEvents\":[]}").is_err());
        assert!(TraceFile::parse("not json").is_err());
        assert!(TraceFile::parse("{}").is_err());
    }
}
