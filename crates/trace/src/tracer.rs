//! The tracer itself: spans, instants, counters, histograms.
//!
//! All mutation goes through one mutex-guarded [`State`]; the tracer
//! is shared by reference (or `Arc`) across threads and each thread
//! gets its own lane (`tid`) and its own open-span stack, so parent
//! links never cross threads. Timestamps are microseconds since the
//! tracer's construction, taken from a monotonic [`Instant`].

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

/// Identifier of a span handed out by [`Tracer::enter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// A typed argument attached to an instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer argument.
    U64(u64),
    /// A string argument.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One finished event on the timeline.
#[derive(Debug, Clone)]
pub enum Event {
    /// A closed (or snapshot-closed) hierarchical span.
    Span {
        /// Unique id of this span (1-based, allocation order).
        id: u64,
        /// Id of the enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name, e.g. `"chain-compile"`.
        name: String,
        /// Category lane, e.g. `"stage"`, `"vm"`, `"engine"`.
        cat: &'static str,
        /// Dense thread lane index.
        tid: usize,
        /// Start, µs since tracer construction.
        start_us: u64,
        /// Duration in µs.
        dur_us: u64,
    },
    /// A point-in-time event with free-form arguments.
    Instant {
        /// Event name, e.g. `"gadget"`.
        name: String,
        /// Category lane.
        cat: &'static str,
        /// Dense thread lane index.
        tid: usize,
        /// Timestamp, µs since tracer construction.
        ts_us: u64,
        /// Key/value arguments.
        args: Vec<(String, ArgValue)>,
    },
}

/// A power-of-two bucket histogram.
///
/// Bucket `0` holds the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i - 1]` — i.e. the bucket index is the value's bit
/// length. 65 buckets cover the whole `u64` range; only buckets up to
/// the largest observed value are materialised.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts, indexed by bit length.
    pub buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Histogram {
    /// The bucket index a value falls into (its bit length).
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// The inclusive value range covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// power-of-two bucket holding the rank-`ceil(q·count)`
    /// observation, clamped to the observed `[min, max]`. Accurate to
    /// within one bucket (a factor of two), which is what a bit-length
    /// histogram can promise; 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            // p0 is the observed minimum exactly — the bucket upper
            // bound would overshoot whenever min shares a bucket with
            // larger observations.
            return self.min;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, hi) = Self::bucket_range(i);
                return hi.min(self.max).max(self.min);
            }
        }
        self.max
    }
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    cat: &'static str,
    tid: usize,
    parent: Option<u64>,
    start_us: u64,
}

#[derive(Debug, Default)]
struct State {
    next_id: u64,
    events: Vec<Event>,
    open: HashMap<u64, OpenSpan>,
    /// `Some(id)` for OS-thread lanes, `None` for virtual lanes
    /// allocated via [`Tracer::lane`].
    threads: Vec<Option<ThreadId>>,
    thread_names: Vec<String>,
    stacks: Vec<Vec<u64>>,
    counters: std::collections::BTreeMap<String, u64>,
    hists: std::collections::BTreeMap<String, Histogram>,
}

impl State {
    fn tid(&mut self) -> usize {
        let me = std::thread::current().id();
        if let Some(i) = self.threads.iter().position(|t| *t == Some(me)) {
            return i;
        }
        let i = self.threads.len();
        self.threads.push(Some(me));
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{i}"));
        self.thread_names.push(name);
        self.stacks.push(Vec::new());
        i
    }
}

/// An immutable copy of everything a tracer has collected.
///
/// Spans still open at snapshot time are closed at the snapshot
/// timestamp so exporters never see dangling state.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// All closed events, in close order.
    pub events: Vec<Event>,
    /// Monotonic counters, name-sorted.
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Histograms, name-sorted.
    pub hists: std::collections::BTreeMap<String, Histogram>,
    /// Lane names, indexed by `tid`.
    pub thread_names: Vec<String>,
    /// Snapshot timestamp, µs since tracer construction.
    pub end_us: u64,
}

/// Collects spans, instants, counters and histograms from any number
/// of threads onto one timeline.
pub struct Tracer {
    epoch: Instant,
    state: Mutex<State>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.locked();
        f.debug_struct("Tracer")
            .field("events", &s.events.len())
            .field("open", &s.open.len())
            .field("counters", &s.counters.len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates an empty tracer; its epoch (timestamp zero) is now.
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            state: Mutex::new(State::default()),
        }
    }

    fn locked(&self) -> MutexGuard<'_, State> {
        // A panic while holding the lock only loses telemetry; the
        // data itself is append-only and still consistent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Microseconds since the tracer's epoch — the timestamp base for
    /// re-anchoring externally timed windows (e.g. pool item spans)
    /// onto this timeline via [`Tracer::span_at`].
    pub fn elapsed_us(&self) -> u64 {
        self.now_us()
    }

    /// Names the current thread's lane in exported traces.
    pub fn set_thread_name(&self, name: &str) {
        let mut s = self.locked();
        let tid = s.tid();
        s.thread_names[tid] = name.to_string();
    }

    /// Opens a span; its parent is the innermost span still open on
    /// this thread. Close it with [`Tracer::exit`].
    pub fn enter(&self, name: &str, cat: &'static str) -> SpanId {
        let now = self.now_us();
        let mut s = self.locked();
        let tid = s.tid();
        s.next_id += 1;
        let id = s.next_id;
        let parent = s.stacks[tid].last().copied();
        s.open.insert(
            id,
            OpenSpan {
                name: name.to_string(),
                cat,
                tid,
                parent,
                start_us: now,
            },
        );
        s.stacks[tid].push(id);
        SpanId(id)
    }

    /// Closes a span opened by [`Tracer::enter`]. Closing a span that
    /// is not the innermost one also unwinds (closes) everything
    /// nested inside it, so a missed `exit` cannot corrupt the stack.
    pub fn exit(&self, id: SpanId) {
        let now = self.now_us();
        let mut s = self.locked();
        let Some(open) = s.open.remove(&id.0) else {
            return;
        };
        let stack = &mut s.stacks[open.tid];
        if let Some(pos) = stack.iter().position(|&x| x == id.0) {
            let orphans: Vec<u64> = stack.drain(pos..).skip(1).collect();
            stack.truncate(pos);
            for oid in orphans {
                if let Some(o) = s.open.remove(&oid) {
                    s.events.push(Event::Span {
                        id: oid,
                        parent: o.parent,
                        name: o.name,
                        cat: o.cat,
                        tid: o.tid,
                        start_us: o.start_us,
                        dur_us: now.saturating_sub(o.start_us),
                    });
                }
            }
        }
        s.events.push(Event::Span {
            id: id.0,
            parent: open.parent,
            name: open.name,
            cat: open.cat,
            tid: open.tid,
            start_us: open.start_us,
            dur_us: now.saturating_sub(open.start_us),
        });
    }

    /// Opens a span and returns a guard that closes it on drop.
    pub fn span(&self, name: &str, cat: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            id: self.enter(name, cat),
        }
    }

    /// Records a point-in-time event with arguments.
    pub fn instant(&self, name: &str, cat: &'static str, args: Vec<(String, ArgValue)>) {
        let now = self.now_us();
        let mut s = self.locked();
        let tid = s.tid();
        s.events.push(Event::Instant {
            name: name.to_string(),
            cat,
            tid,
            ts_us: now,
            args,
        });
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn count(&self, name: &str, delta: u64) {
        let mut s = self.locked();
        *s.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter's current value (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.locked().counters.get(name).copied().unwrap_or(0)
    }

    /// Records one observation into the named histogram.
    pub fn record(&self, name: &str, value: u64) {
        let mut s = self.locked();
        s.hists.entry(name.to_string()).or_default().record(value);
    }

    /// Allocates (or finds) a named *virtual lane* — a timeline lane
    /// not tied to any OS thread, for retroactively recorded events
    /// whose timestamps live in a different unit (e.g. VM cycles).
    /// Returns the lane's `tid` for [`Tracer::span_at`] /
    /// [`Tracer::instant_at`].
    pub fn lane(&self, name: &str) -> usize {
        let mut s = self.locked();
        if let Some(i) =
            (0..s.threads.len()).find(|&i| s.threads[i].is_none() && s.thread_names[i] == name)
        {
            return i;
        }
        let i = s.threads.len();
        s.threads.push(None);
        s.thread_names.push(name.to_string());
        s.stacks.push(Vec::new());
        i
    }

    /// Records an already-finished span on an explicit lane with
    /// caller-supplied timestamps. No parent linking or nesting is
    /// applied; viewers stack overlapping spans on the lane visually.
    pub fn span_at(&self, name: &str, cat: &'static str, tid: usize, start: u64, dur: u64) {
        let mut s = self.locked();
        s.next_id += 1;
        let id = s.next_id;
        s.events.push(Event::Span {
            id,
            parent: None,
            name: name.to_string(),
            cat,
            tid,
            start_us: start,
            dur_us: dur,
        });
    }

    /// Records a point-in-time event on an explicit lane with a
    /// caller-supplied timestamp.
    pub fn instant_at(
        &self,
        name: &str,
        cat: &'static str,
        tid: usize,
        ts: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        let mut s = self.locked();
        s.events.push(Event::Instant {
            name: name.to_string(),
            cat,
            tid,
            ts_us: ts,
            args,
        });
    }

    /// Takes an immutable copy of everything collected so far; spans
    /// still open are closed at the snapshot timestamp.
    pub fn snapshot(&self) -> TraceSnapshot {
        let now = self.now_us();
        let s = self.locked();
        let mut events = s.events.clone();
        let mut still_open: Vec<(&u64, &OpenSpan)> = s.open.iter().collect();
        still_open.sort_by_key(|(id, _)| **id);
        for (id, o) in still_open {
            events.push(Event::Span {
                id: *id,
                parent: o.parent,
                name: o.name.clone(),
                cat: o.cat,
                tid: o.tid,
                start_us: o.start_us,
                dur_us: now.saturating_sub(o.start_us),
            });
        }
        TraceSnapshot {
            events,
            counters: s.counters.clone(),
            hists: s.hists.clone(),
            thread_names: s.thread_names.clone(),
            end_us: now,
        }
    }
}

/// RAII handle from [`Tracer::span`]: closes the span when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: SpanId,
}

impl SpanGuard<'_> {
    /// The underlying span id (e.g. to link child events to it).
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.exit(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_link_parents() {
        let t = Tracer::new();
        let outer = t.enter("outer", "test");
        let inner = t.enter("inner", "test");
        t.exit(inner);
        t.exit(outer);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 2);
        let (mut outer_parent, mut inner_parent) = (Some(99), None);
        for ev in &snap.events {
            if let Event::Span { name, parent, .. } = ev {
                match name.as_str() {
                    "outer" => outer_parent = *parent,
                    "inner" => inner_parent = *parent,
                    _ => unreachable!(),
                }
            }
        }
        assert_eq!(outer_parent, None);
        assert_eq!(inner_parent, Some(1));
    }

    #[test]
    fn exit_unwinds_orphaned_children() {
        let t = Tracer::new();
        let outer = t.enter("outer", "test");
        let _leaked = t.enter("leaked", "test");
        t.exit(outer); // closes "leaked" too
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 2);
        // A new span after the unwind is a root again.
        let root = t.enter("root2", "test");
        t.exit(root);
        let snap = t.snapshot();
        let last = snap.events.last().expect("span recorded");
        if let Event::Span { name, parent, .. } = last {
            assert_eq!(name, "root2");
            assert_eq!(*parent, None);
        } else {
            panic!("expected span event");
        }
    }

    #[test]
    fn guard_closes_on_drop() {
        let t = Tracer::new();
        {
            let _g = t.span("guarded", "test");
        }
        assert_eq!(t.snapshot().events.len(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let t = Tracer::new();
        t.count("x", 2);
        t.count("x", 3);
        assert_eq!(t.counter("x"), 5);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_are_bit_lengths() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 1));
        assert_eq!(Histogram::bucket_range(3), (4, 7));
        assert_eq!(Histogram::bucket_range(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn histogram_tracks_min_max_sum() {
        let mut h = Histogram::default();
        for v in [7, 0, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1007);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 1); // the 0
        assert_eq!(h.buckets[3], 1); // 7
        assert_eq!(h.buckets[10], 1); // 1000 (512..1023)
        assert!((h.mean() - 1007.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentile_is_bucket_bounded() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(0.99), 0, "empty histogram");
        for _ in 0..99 {
            h.record(100); // bucket 7: 64..127
        }
        h.record(9_000); // bucket 14: 8192..16383
                         // p50 lands in the 100s bucket; its upper bound is 127.
        let p50 = h.percentile(0.50);
        assert!((100..=127).contains(&p50), "p50 = {p50}");
        // p99 still lands in the dense bucket (rank 99 of 100); p100
        // reaches the outlier and clamps to the observed max.
        assert_eq!(h.percentile(1.0), 9_000);
        assert!(h.percentile(0.0) >= h.min);
        assert!(h.percentile(1.0) <= h.max);
    }

    #[test]
    fn snapshot_closes_open_spans() {
        let t = Tracer::new();
        let _open = t.enter("still-open", "test");
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 1);
        if let Event::Span { name, .. } = &snap.events[0] {
            assert_eq!(name, "still-open");
        } else {
            panic!("expected span");
        }
    }

    #[test]
    fn virtual_lanes_take_explicit_timestamps() {
        let t = Tracer::new();
        let real = t.enter("real", "test");
        t.exit(real);
        let lane = t.lane("cycles");
        assert_eq!(t.lane("cycles"), lane, "lane lookup is idempotent");
        t.span_at("ep", "vm", lane, 100, 50);
        t.instant_at("hit", "vm", lane, 120, vec![("v".to_string(), 7u64.into())]);
        let snap = t.snapshot();
        assert_eq!(snap.thread_names[lane], "cycles");
        let ep = snap
            .events
            .iter()
            .find_map(|e| match e {
                Event::Span {
                    name,
                    tid,
                    start_us,
                    dur_us,
                    ..
                } if name == "ep" => Some((*tid, *start_us, *dur_us)),
                _ => None,
            })
            .expect("explicit span recorded");
        assert_eq!(ep, (lane, 100, 50));
        // A real-thread span after lane creation does not collide with
        // the virtual lane.
        let real2 = t.enter("real2", "test");
        t.exit(real2);
        let snap = t.snapshot();
        let real2_tid = snap
            .events
            .iter()
            .find_map(|e| match e {
                Event::Span { name, tid, .. } if name == "real2" => Some(*tid),
                _ => None,
            })
            .expect("real2 recorded");
        assert_ne!(real2_tid, lane);
    }

    #[test]
    fn threads_get_distinct_lanes() {
        let t = Tracer::new();
        let main = t.enter("main-lane", "test");
        t.exit(main);
        std::thread::scope(|s| {
            s.spawn(|| {
                let id = t.enter("worker-lane", "test");
                t.exit(id);
            });
        });
        let snap = t.snapshot();
        let tids: Vec<usize> = snap
            .events
            .iter()
            .map(|e| match e {
                Event::Span { tid, .. } | Event::Instant { tid, .. } => *tid,
            })
            .collect();
        assert_eq!(tids.len(), 2);
        assert_ne!(tids[0], tids[1]);
        assert_eq!(snap.thread_names.len(), 2);
    }
}
