//! Predecoded basic blocks and the block-translation cache.
//!
//! Instead of decoding (or probing a `HashMap` of decoded instructions)
//! once per retired instruction, the VM predecodes each straight-line
//! run — from an entry `eip` up to and including the next control
//! transfer — into a flat [`Block`] and caches it in a direct-mapped,
//! array-indexed [`BlockCache`]. Execution then walks the block's `Vec`
//! with no per-instruction map lookups or `Rc` clones.
//!
//! Invalidation is *range-based*: a code write (icache patch, debugger
//! patch, or an in-VM store to text with W⊕X disabled) evicts exactly
//! the blocks whose byte span overlaps the written range. Data writes
//! evict nothing. This preserves tamper semantics — a patched gadget
//! byte is observed on the next entry of any block covering it — while
//! leaving the rest of the cache hot.
//!
//! Each predecoded instruction also carries a [`FastOp`]: a
//! pre-extracted micro-op for the handful of forms that dominate ROP
//! chain execution (`ret`, `pop r32`, `push r32`, `mov`/ALU on dword
//! registers). These skip operand-`Vec` matching and the memory-operand
//! cost scan entirely; everything else takes the full [`Insn`]
//! interpreter, so semantics, cycle costs, and tracing hooks stay
//! bit-identical either way.

use std::rc::Rc;

use parallax_x86::insn::{AluOp, Insn, Mem, Mnemonic, OpSize, Operand};
use parallax_x86::{decode, Reg, Reg32};

use crate::error::{Fault, FaultKind};
use crate::mem::Memory;

/// Maximum instructions predecoded into a single block. Bounds the
/// work wasted when a block is invalidated or its tail never runs.
pub const MAX_BLOCK_INSNS: usize = 64;

/// Slot count of the direct-mapped block cache (a power of two).
pub const BLOCK_CACHE_SLOTS: usize = 4096;

/// Counters for the block-translation cache, exposed through
/// `Vm::block_stats` and exported as `vm.block.*` trace counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Block lookups served from the cache.
    pub hits: u64,
    /// Lookups that predecoded a fresh block.
    pub misses: u64,
    /// Blocks evicted because a code write overlapped their span.
    pub invalidated: u64,
}

/// Pre-extracted micro-op for the hottest instruction forms. `Slow`
/// routes through the full `Insn` interpreter.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastOp {
    /// Plain near `ret` (no stack-release immediate).
    Ret,
    /// `pop r32`.
    PopR(Reg32),
    /// `push r32`.
    PushR(Reg32),
    /// `push imm32`.
    PushI(u32),
    /// `mov r32, imm32`.
    MovRI(Reg32, u32),
    /// `mov r32, r32`.
    MovRR(Reg32, Reg32),
    /// Dword group-1 ALU `op r32, r32`.
    AluRR(AluOp, Reg32, Reg32),
    /// Dword group-1 ALU `op r32, imm32`.
    AluRI(AluOp, Reg32, u32),
    /// `mov r32, [base + disp]` (dword load, no index register).
    LoadRM(Reg32, Option<Reg32>, i32),
    /// `mov [base + disp], r32` (dword store, no index register).
    StoreMR(Option<Reg32>, i32, Reg32),
    /// `lea r32, [mem]` — address arithmetic only, never touches
    /// memory (and pays no memory-cycle cost, matching `exec_insn`'s
    /// explicit `Lea` cost exemption).
    LeaRM(Reg32, Mem),
    /// `xchg r32, r32`.
    XchgRR(Reg32, Reg32),
    /// `test r32, r32` — flags only, no writeback.
    TestRR(Reg32, Reg32),
    /// `test r32, imm32` — flags only, no writeback.
    TestRI(Reg32, u32),
    /// `push dword [mem]`.
    PushM(Mem),
    /// `pop dword [mem]`.
    PopM(Mem),
    /// Everything else: execute via the full interpreter.
    Slow,
}

/// One predecoded instruction inside a block.
#[derive(Debug)]
pub(crate) struct Predecoded {
    /// Address of the instruction.
    pub eip: u32,
    /// Address of the following instruction (`eip + len`).
    pub next: u32,
    /// Fast-path micro-op, or `Slow`.
    pub fast: FastOp,
    /// The decoded instruction (authoritative semantics).
    pub insn: Insn,
}

/// Maximum body micro-ops (before the trailing `ret`) a gadget block
/// may carry in its fused header. Gadgets scan up to 6 instructions;
/// 4 body ops + `ret` fuses every common shape while keeping the
/// header a small fixed-size copy.
pub const MAX_FUSED_OPS: usize = 4;

/// One body micro-op of a fused gadget, with its addresses.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedOp {
    /// The pre-extracted micro-op (never `Slow` in a fused header).
    pub op: FastOp,
    /// Address of the instruction.
    pub eip: u32,
    /// Address of the following instruction.
    pub next: u32,
}

/// The fully-inlined form of an `op…; ret` gadget — the shape every
/// ROP dispatch takes, from the classic two-instruction `pop r; ret`
/// up to [`MAX_FUSED_OPS`]-instruction bodies. Stored in the
/// [`Block`] header so execution reads one allocation and never
/// touches the `insns` vector (or clones the `Rc`) on the hot path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedGadget {
    /// The leading micro-ops; slots past `len` are `Slow` filler.
    pub ops: [FusedOp; MAX_FUSED_OPS],
    /// Number of live body ops (1..=MAX_FUSED_OPS).
    pub len: u8,
    /// Addresses of the trailing plain `ret`.
    pub ret_eip: u32,
    pub ret_next: u32,
}

/// How a block is executed: generically, instruction by instruction,
/// or via the fused gadget fast path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BlockKind {
    Generic,
    Fused(FusedGadget),
}

/// A predecoded straight-line run starting at `entry`.
#[derive(Debug)]
pub(crate) struct Block {
    /// Entry address — the cache key.
    pub entry: u32,
    /// Exclusive end of the byte span covered by the block.
    pub end: u32,
    /// Gadget fast-path classification.
    pub kind: BlockKind,
    /// The instructions, in address order. Never empty.
    pub insns: Vec<Predecoded>,
}

/// True if `m` ends a straight-line run. Syscalls (`Int`) terminate
/// blocks too: they are rare, and ending the block keeps any memory
/// effect they have from racing a predecoded successor.
fn is_terminator(m: &Mnemonic) -> bool {
    matches!(
        m,
        Mnemonic::Jmp
            | Mnemonic::JmpInd
            | Mnemonic::Jcc(_)
            | Mnemonic::Call
            | Mnemonic::CallInd
            | Mnemonic::Ret
            | Mnemonic::Retf
            | Mnemonic::Int
            | Mnemonic::Int3
            | Mnemonic::Hlt
    )
}

fn reg32_of(op: &Operand) -> Option<Reg32> {
    match op {
        Operand::Reg(Reg::R32(r)) => Some(*r),
        _ => None,
    }
}

/// Classifies `insn` into a [`FastOp`]. Only forms whose cost and
/// semantics the fast arms reproduce exactly may be promoted; anything
/// with a memory operand, sub-dword size, or flag subtleties stays
/// `Slow`.
fn fast_of(insn: &Insn) -> FastOp {
    match insn.mnemonic {
        Mnemonic::Ret if insn.ops.is_empty() => FastOp::Ret,
        Mnemonic::Pop => match insn.ops.first() {
            Some(Operand::Reg(Reg::R32(r))) => FastOp::PopR(*r),
            Some(Operand::Mem(m)) => FastOp::PopM(*m),
            _ => FastOp::Slow,
        },
        Mnemonic::Push => match insn.ops.first() {
            Some(Operand::Reg(Reg::R32(r))) => FastOp::PushR(*r),
            Some(Operand::Imm(v)) => FastOp::PushI(*v as u32),
            Some(Operand::Mem(m)) => FastOp::PushM(*m),
            _ => FastOp::Slow,
        },
        Mnemonic::Mov if insn.size == OpSize::Dword && insn.ops.len() == 2 => {
            match (&insn.ops[0], &insn.ops[1]) {
                (Operand::Reg(Reg::R32(d)), Operand::Imm(v)) => FastOp::MovRI(*d, *v as u32),
                (Operand::Reg(Reg::R32(d)), Operand::Reg(Reg::R32(s))) => FastOp::MovRR(*d, *s),
                (Operand::Reg(Reg::R32(d)), Operand::Mem(m)) if m.index.is_none() => {
                    FastOp::LoadRM(*d, m.base, m.disp)
                }
                (Operand::Mem(m), Operand::Reg(Reg::R32(s))) if m.index.is_none() => {
                    FastOp::StoreMR(m.base, m.disp, *s)
                }
                _ => FastOp::Slow,
            }
        }
        Mnemonic::Alu(op) if insn.size == OpSize::Dword && insn.ops.len() == 2 => {
            match (reg32_of(&insn.ops[0]), &insn.ops[1]) {
                (Some(d), Operand::Reg(Reg::R32(s))) => FastOp::AluRR(op, d, *s),
                (Some(d), Operand::Imm(v)) => FastOp::AluRI(op, d, *v as u32),
                _ => FastOp::Slow,
            }
        }
        Mnemonic::Lea => match (insn.ops.first(), insn.ops.get(1).and_then(|o| o.mem())) {
            (Some(Operand::Reg(Reg::R32(d))), Some(m)) => FastOp::LeaRM(*d, m),
            _ => FastOp::Slow,
        },
        Mnemonic::Xchg if insn.size == OpSize::Dword && insn.ops.len() == 2 => {
            match (reg32_of(&insn.ops[0]), reg32_of(&insn.ops[1])) {
                (Some(a), Some(b)) => FastOp::XchgRR(a, b),
                _ => FastOp::Slow,
            }
        }
        Mnemonic::Test if insn.size == OpSize::Dword && insn.ops.len() == 2 => {
            match (reg32_of(&insn.ops[0]), &insn.ops[1]) {
                (Some(a), Operand::Reg(Reg::R32(b))) => FastOp::TestRR(a, *b),
                (Some(a), Operand::Imm(v)) => FastOp::TestRI(a, *v as u32),
                _ => FastOp::Slow,
            }
        }
        _ => FastOp::Slow,
    }
}

/// Predecodes the straight-line run starting at `entry`.
///
/// An undecodable or unfetchable *first* instruction is a fault — the
/// same fault the stepping interpreter would raise. A decode problem
/// later in the run simply ends the block early: the next block lookup
/// at that address reports the fault at the precise `eip`, matching the
/// reference path.
pub(crate) fn build_block(mem: &Memory, entry: u32, max_insns: usize) -> Result<Block, Fault> {
    let mut insns = Vec::new();
    let mut pos = entry;
    loop {
        let bytes = match mem.fetch(pos) {
            Ok(b) => b,
            Err(f) => {
                if insns.is_empty() {
                    return Err(f);
                }
                break;
            }
        };
        let insn = match decode(bytes) {
            Ok(i) => i,
            Err(_) => {
                if insns.is_empty() {
                    return Err(Fault::new(pos, FaultKind::InvalidInstruction));
                }
                break;
            }
        };
        let next = pos.wrapping_add(insn.len as u32);
        let term = is_terminator(&insn.mnemonic);
        insns.push(Predecoded {
            eip: pos,
            next,
            fast: fast_of(&insn),
            insn,
        });
        pos = next;
        if term || insns.len() >= max_insns {
            break;
        }
    }
    let kind = match insns.as_slice() {
        [body @ .., ret]
            if !body.is_empty()
                && body.len() <= MAX_FUSED_OPS
                && matches!(ret.fast, FastOp::Ret)
                && body.iter().all(|p| !matches!(p.fast, FastOp::Slow)) =>
        {
            let mut ops = [FusedOp {
                op: FastOp::Slow,
                eip: 0,
                next: 0,
            }; MAX_FUSED_OPS];
            for (slot, p) in ops.iter_mut().zip(body) {
                *slot = FusedOp {
                    op: p.fast,
                    eip: p.eip,
                    next: p.next,
                };
            }
            BlockKind::Fused(FusedGadget {
                ops,
                len: body.len() as u8,
                ret_eip: ret.eip,
                ret_next: ret.next,
            })
        }
        _ => BlockKind::Generic,
    };
    Ok(Block {
        entry,
        end: pos,
        kind,
        insns,
    })
}

/// Direct-mapped cache of predecoded blocks, keyed by entry `eip`.
pub(crate) struct BlockCache {
    slots: Box<[Option<Rc<Block>>]>,
    mask: u32,
    /// Largest byte span of any block ever inserted. Bounds how far
    /// *before* a written range a block entry can lie and still
    /// overlap it, so invalidation can probe candidate entries instead
    /// of sweeping every slot.
    max_span: u32,
    /// Ring of entry addresses evicted most recently. Entries seen
    /// here are rebuilt as single-instruction blocks: self-modifying
    /// code that keeps patching the same region would otherwise pay a
    /// full predecode per iteration for instructions it invalidates
    /// before they ever run.
    recent_evicts: [u32; RECENT_EVICTS],
    evict_pos: usize,
    pub stats: BlockStats,
}

/// Depth of the recently-evicted-entry ring.
const RECENT_EVICTS: usize = 8;

impl BlockCache {
    pub fn new() -> BlockCache {
        BlockCache {
            slots: vec![None; BLOCK_CACHE_SLOTS].into_boxed_slice(),
            mask: BLOCK_CACHE_SLOTS as u32 - 1,
            max_span: 0,
            recent_evicts: [u32::MAX; RECENT_EVICTS],
            evict_pos: 0,
            stats: BlockStats::default(),
        }
    }

    /// True if a block entered at `eip` was evicted recently — a hint
    /// that predecoding a long run there is likely wasted work.
    #[inline]
    pub fn thrashing(&self, eip: u32) -> bool {
        self.recent_evicts.contains(&eip)
    }

    /// Probe for a fused `op…; ret` gadget block: hit data is copied
    /// out of the header, so the caller pays no `Rc` clone and no
    /// `insns` dereference. Returns `None` for generic blocks *without*
    /// counting a hit — the caller falls back to [`BlockCache::lookup`],
    /// which counts it.
    #[inline]
    pub fn fused_at(&mut self, eip: u32) -> Option<FusedGadget> {
        match &self.slots[(eip & self.mask) as usize] {
            Some(b) if b.entry == eip => match b.kind {
                BlockKind::Fused(f) => {
                    self.stats.hits += 1;
                    Some(f)
                }
                BlockKind::Generic => None,
            },
            _ => None,
        }
    }

    /// Cache probe: an array index and one compare, no hashing.
    #[inline]
    pub fn lookup(&mut self, eip: u32) -> Option<Rc<Block>> {
        match &self.slots[(eip & self.mask) as usize] {
            Some(b) if b.entry == eip => {
                self.stats.hits += 1;
                Some(Rc::clone(b))
            }
            _ => None,
        }
    }

    pub fn insert(&mut self, block: Rc<Block>) {
        self.stats.misses += 1;
        self.max_span = self.max_span.max(block.end.saturating_sub(block.entry));
        let slot = (block.entry & self.mask) as usize;
        self.slots[slot] = Some(block);
    }

    /// Evicts every block whose byte span overlaps `[start, end)`.
    ///
    /// A block overlapping the range has its entry in
    /// `(start - max_span, end)`, so for the typical small patch this
    /// probes a handful of slots; only a range rivaling the cache size
    /// falls back to the full sweep.
    pub fn invalidate_range(&mut self, start: u32, end: u32) {
        let reach = end.wrapping_sub(start) as u64 + self.max_span as u64;
        if reach >= BLOCK_CACHE_SLOTS as u64 {
            for i in 0..self.slots.len() {
                if let Some(b) = &self.slots[i] {
                    if b.entry < end && start < b.end {
                        self.evict(i);
                    }
                }
            }
            return;
        }
        for entry in start.saturating_sub(self.max_span)..end {
            let slot = (entry & self.mask) as usize;
            if let Some(b) = &self.slots[slot] {
                if b.entry == entry && b.end > start {
                    self.evict(slot);
                }
            }
        }
    }

    fn evict(&mut self, slot: usize) {
        if let Some(b) = self.slots[slot].take() {
            self.stats.invalidated += 1;
            self.recent_evicts[self.evict_pos] = b.entry;
            self.evict_pos = (self.evict_pos + 1) % RECENT_EVICTS;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(text: Vec<u8>) -> Memory {
        Memory::new(text, 0x1000, vec![0; 16], 0x2000, 0)
    }

    #[test]
    fn block_ends_at_control_transfer() {
        // mov eax,1; pop ecx; ret; pop edx; ret
        let m = mem(vec![0xb8, 1, 0, 0, 0, 0x59, 0xc3, 0x5a, 0xc3]);
        let b = build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap();
        assert_eq!(b.insns.len(), 3);
        assert_eq!(b.entry, 0x1000);
        assert_eq!(b.end, 0x1007);
        assert_eq!(b.insns[2].eip, 0x1006);
    }

    #[test]
    fn decode_failure_mid_run_truncates_block() {
        // nop; then 0x0f 0xff (undecodable in this subset)
        let m = mem(vec![0x90, 0x0f, 0xff, 0x90]);
        let b = build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap();
        assert_eq!(b.insns.len(), 1);
        assert_eq!(b.end, 0x1001);
    }

    #[test]
    fn decode_failure_at_entry_faults() {
        let m = mem(vec![0x0f, 0xff]);
        let f = build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap_err();
        assert_eq!(f.kind, FaultKind::InvalidInstruction);
        assert_eq!(f.vaddr, 0x1000);
    }

    #[test]
    fn fetch_outside_text_faults() {
        let m = mem(vec![0x90]);
        let f = build_block(&m, 0x5000, MAX_BLOCK_INSNS).unwrap_err();
        assert_eq!(f.kind, FaultKind::ExecOutsideText);
    }

    #[test]
    fn invalidate_range_is_overlap_based() {
        let m = mem(vec![0x90, 0xc3, 0x90, 0xc3]);
        let mut cache = BlockCache::new();
        let a = Rc::new(build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap()); // spans [0x1000, 0x1002)
        let b = Rc::new(build_block(&m, 0x1002, MAX_BLOCK_INSNS).unwrap()); // spans [0x1002, 0x1004)
        cache.insert(a);
        cache.insert(b);
        cache.invalidate_range(0x1003, 0x1004);
        assert_eq!(cache.stats.invalidated, 1);
        assert!(cache.lookup(0x1000).is_some());
        assert!(cache.lookup(0x1002).is_none());
        // Disjoint range: nothing evicted.
        cache.invalidate_range(0x2000, 0x2004);
        assert_eq!(cache.stats.invalidated, 1);
    }

    #[test]
    fn fast_classification_covers_chain_ops() {
        let m = mem(vec![0x58, 0xc3]); // pop eax; ret
        let b = build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap();
        assert!(matches!(b.insns[0].fast, FastOp::PopR(Reg32::Eax)));
        assert!(matches!(b.insns[1].fast, FastOp::Ret));
    }

    #[test]
    fn ret_imm_is_not_fast() {
        let m = mem(vec![0xc2, 0x08, 0x00]); // ret 8
        let b = build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap();
        assert!(matches!(b.insns[0].fast, FastOp::Slow));
    }

    #[test]
    fn extended_fast_classification_covers_lea_xchg_test_pushpop_mem() {
        use parallax_x86::Asm;
        let mut a = Asm::new();
        a.lea(Reg32::Eax, Mem::base_disp(Reg32::Ebx, 4));
        a.xchg_rr(Reg32::Ecx, Reg32::Edx);
        a.test_rr(Reg32::Eax, Reg32::Ecx);
        a.test_ri(Reg32::Edx, 0x40);
        a.push_m(Mem::base(Reg32::Ebx));
        a.pop_m(Mem::base_disp(Reg32::Esi, 8));
        a.ret();
        let code = a.finish().unwrap().bytes;
        let m = mem(code);
        let b = build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap();
        assert!(matches!(b.insns[0].fast, FastOp::LeaRM(Reg32::Eax, _)));
        assert!(matches!(
            b.insns[1].fast,
            FastOp::XchgRR(Reg32::Ecx, Reg32::Edx)
        ));
        assert!(matches!(
            b.insns[2].fast,
            FastOp::TestRR(Reg32::Eax, Reg32::Ecx)
        ));
        assert!(matches!(b.insns[3].fast, FastOp::TestRI(Reg32::Edx, 0x40)));
        assert!(matches!(b.insns[4].fast, FastOp::PushM(_)));
        assert!(matches!(b.insns[5].fast, FastOp::PopM(_)));
    }

    #[test]
    fn two_insn_gadget_still_fuses() {
        let m = mem(vec![0x58, 0xc3]); // pop eax; ret
        let b = build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap();
        match b.kind {
            BlockKind::Fused(f) => {
                assert_eq!(f.len, 1);
                assert!(matches!(f.ops[0].op, FastOp::PopR(Reg32::Eax)));
                assert_eq!(f.ret_eip, 0x1001);
            }
            BlockKind::Generic => panic!("pop r; ret must fuse"),
        }
    }

    #[test]
    fn three_insn_gadget_body_fuses() {
        use parallax_x86::Asm;
        // pop eax; add esi, eax; mov ecx, esi; ret — a 3-op body.
        let mut a = Asm::new();
        a.pop_r(Reg32::Eax);
        a.alu_rr(AluOp::Add, Reg32::Esi, Reg32::Eax);
        a.mov_rr(Reg32::Ecx, Reg32::Esi);
        a.ret();
        let m = mem(a.finish().unwrap().bytes);
        let b = build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap();
        match b.kind {
            BlockKind::Fused(f) => {
                assert_eq!(f.len, 3);
                assert!(matches!(f.ops[0].op, FastOp::PopR(Reg32::Eax)));
                assert!(matches!(
                    f.ops[1].op,
                    FastOp::AluRR(AluOp::Add, Reg32::Esi, Reg32::Eax)
                ));
                assert!(matches!(f.ops[2].op, FastOp::MovRR(Reg32::Ecx, Reg32::Esi)));
            }
            BlockKind::Generic => panic!("3-op gadget body must fuse"),
        }
    }

    #[test]
    fn slow_body_op_or_long_body_stays_generic() {
        use parallax_x86::Asm;
        // A body op the fast set cannot express (mul) blocks fusion.
        let mut a = Asm::new();
        a.pop_r(Reg32::Eax);
        a.mul_r(Reg32::Ecx);
        a.ret();
        let m = mem(a.finish().unwrap().bytes);
        let b = build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap();
        assert!(matches!(b.kind, BlockKind::Generic));
        // A body longer than MAX_FUSED_OPS stays generic too.
        let mut a = Asm::new();
        for _ in 0..(MAX_FUSED_OPS + 1) {
            a.pop_r(Reg32::Eax);
        }
        a.ret();
        let m = mem(a.finish().unwrap().bytes);
        let b = build_block(&m, 0x1000, MAX_BLOCK_INSNS).unwrap();
        assert!(matches!(b.kind, BlockKind::Generic));
    }
}
