//! Gadget-granular telemetry for verification-chain execution.
//!
//! A Parallax verification chain *is* a ROP payload: once a protected
//! function's loader stub pivots into it, control flow becomes a
//! sequence of `ret`-driven gadget dispatches. The flat profiler
//! cannot see inside that (every gadget lives inside some *other*
//! function's range) — so the [`ChainTracer`] watches the VM's
//! `ret`/`call` retirement directly:
//!
//! * a `call` into a registered **verification entry** opens an
//!   *episode* attributed to that protected function;
//! * every `ret` landing on a registered **gadget address** while an
//!   episode is open is one *dispatch*, carrying the gadget's vaddr,
//!   kind, and the cycles since the previous dispatch.
//!
//! Episodes and dispatches are cycle-stamped, and VM cycles are
//! deterministic — so [`ChainTracer::export_to`] can lay the whole
//! chain execution out on a dedicated *cycle-denominated* trace lane
//! that is byte-identical across repeat runs: one span per episode
//! (`chain:<func>`), one instant per gadget dispatch, plus the
//! counters and histograms `plx report` aggregates (per-function
//! invocations/cycles/dispatches, dispatch-kind tallies, cycles per
//! verification invocation).

use std::collections::HashMap;

use parallax_trace::Tracer;

/// One gadget dispatch observed during a verification episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Episode index this dispatch belongs to.
    pub episode: usize,
    /// The gadget's virtual address (the `ret` target).
    pub vaddr: u32,
    /// Index into [`ChainTracer::kinds`].
    pub kind: usize,
    /// VM cycle count at dispatch.
    pub at_cycles: u64,
    /// Cycles since the episode's previous dispatch (or its start).
    pub cycles: u64,
}

/// One verification-chain execution, attributed to a protected
/// function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Episode {
    /// The verification function invoked.
    pub func: String,
    /// VM cycle count when the function was called.
    pub start_cycles: u64,
    /// VM cycle count at the last dispatch (== `start_cycles` when the
    /// episode saw none).
    pub end_cycles: u64,
    /// Gadget dispatches observed.
    pub dispatches: u64,
}

impl Episode {
    /// Cycles from entry to the last gadget dispatch.
    pub fn cycles(&self) -> u64 {
        self.end_cycles - self.start_cycles
    }
}

#[derive(Debug, Clone)]
struct OpenEpisode {
    func: usize,
    start_cycles: u64,
    last_cycles: u64,
    dispatches: u64,
}

/// Records per-gadget dispatch events during verification-chain
/// execution (see the module docs). Install on a VM with
/// [`crate::Vm::set_chain_tracer`] before running.
#[derive(Debug, Clone, Default)]
pub struct ChainTracer {
    gadget_kind: HashMap<u32, usize>,
    /// Interned gadget-kind names (e.g. `"LoadConst"`, `"StoreMem"`).
    pub kinds: Vec<String>,
    verify_entry: HashMap<u32, usize>,
    funcs: Vec<String>,
    episodes: Vec<Episode>,
    dispatches: Vec<Dispatch>,
    open: Option<OpenEpisode>,
}

impl ChainTracer {
    /// Creates an empty tracer; register gadgets and verification
    /// entries before running the VM.
    pub fn new() -> ChainTracer {
        ChainTracer::default()
    }

    /// Registers a gadget address with a kind label (interned).
    pub fn register_gadget(&mut self, vaddr: u32, kind: &str) {
        let idx = match self.kinds.iter().position(|k| k == kind) {
            Some(i) => i,
            None => {
                self.kinds.push(kind.to_string());
                self.kinds.len() - 1
            }
        };
        self.gadget_kind.insert(vaddr, idx);
    }

    /// Registers a verification function's entry address.
    pub fn register_verify(&mut self, entry: u32, func: &str) {
        let idx = match self.funcs.iter().position(|f| f == func) {
            Some(i) => i,
            None => {
                self.funcs.push(func.to_string());
                self.funcs.len() - 1
            }
        };
        self.verify_entry.insert(entry, idx);
    }

    /// VM hook: a `call` retired with the given target.
    pub fn note_call(&mut self, target: u32, cycles: u64) {
        if let Some(&func) = self.verify_entry.get(&target) {
            self.close_open();
            self.open = Some(OpenEpisode {
                func,
                start_cycles: cycles,
                last_cycles: cycles,
                dispatches: 0,
            });
        }
    }

    /// VM hook: a `ret` (near or far) retired with the given target.
    pub fn note_ret(&mut self, target: u32, cycles: u64) {
        let Some(&kind) = self.gadget_kind.get(&target) else {
            return;
        };
        let Some(open) = self.open.as_mut() else {
            return;
        };
        let delta = cycles.saturating_sub(open.last_cycles);
        self.dispatches.push(Dispatch {
            episode: self.episodes.len(),
            vaddr: target,
            kind,
            at_cycles: cycles,
            cycles: delta,
        });
        open.last_cycles = cycles;
        open.dispatches += 1;
    }

    fn close_open(&mut self) {
        if let Some(open) = self.open.take() {
            self.episodes.push(Episode {
                func: self.funcs[open.func].clone(),
                start_cycles: open.start_cycles,
                end_cycles: open.last_cycles,
                dispatches: open.dispatches,
            });
        }
    }

    /// Closes any episode still open (call after the VM exits).
    pub fn finish(&mut self) {
        self.close_open();
    }

    /// Completed episodes, in execution order.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// All gadget dispatches, in execution order.
    pub fn dispatches(&self) -> &[Dispatch] {
        &self.dispatches
    }

    /// Total dispatches attributed to `func`.
    pub fn dispatches_for(&self, func: &str) -> u64 {
        self.episodes
            .iter()
            .filter(|e| e.func == func)
            .map(|e| e.dispatches)
            .sum()
    }

    /// Lays the recorded chain executions out on `tracer`:
    ///
    /// * a dedicated virtual lane (`vm-chain (cycles)`) whose
    ///   timestamps are VM cycles, with one `chain:<func>` span per
    ///   episode and one `gadget` instant per dispatch
    ///   (args: `vaddr`, `kind`, `cycles`, `func`);
    /// * counters `vm.dispatch.count`, `vm.dispatch.kind.<kind>`, and
    ///   per-function `vf.<func>.invocations` / `.cycles` /
    ///   `.dispatches`;
    /// * histograms `vm.verify.cycles` and `vm.verify.dispatches`
    ///   (per verification invocation).
    pub fn export_to(&self, tracer: &Tracer) {
        let lane = tracer.lane("vm-chain (cycles)");
        for (i, ep) in self.episodes.iter().enumerate() {
            tracer.span_at(
                &format!("chain:{}", ep.func),
                "vm",
                lane,
                ep.start_cycles,
                ep.cycles().max(1),
            );
            tracer.count(&format!("vf.{}.invocations", ep.func), 1);
            tracer.count(&format!("vf.{}.cycles", ep.func), ep.cycles());
            tracer.count(&format!("vf.{}.dispatches", ep.func), ep.dispatches);
            tracer.record("vm.verify.cycles", ep.cycles());
            tracer.record("vm.verify.dispatches", ep.dispatches);
            for d in self.dispatches.iter().filter(|d| d.episode == i) {
                tracer.instant_at(
                    "gadget",
                    "vm",
                    lane,
                    d.at_cycles,
                    vec![
                        ("vaddr".to_string(), u64::from(d.vaddr).into()),
                        ("kind".to_string(), self.kinds[d.kind].as_str().into()),
                        ("cycles".to_string(), d.cycles.into()),
                        ("func".to_string(), ep.func.as_str().into()),
                    ],
                );
            }
        }
        tracer.count("vm.dispatch.count", self.dispatches.len() as u64);
        for d in &self.dispatches {
            tracer.count(&format!("vm.dispatch.kind.{}", self.kinds[d.kind]), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episodes_attribute_dispatches() {
        let mut ct = ChainTracer::new();
        ct.register_gadget(0x100, "LoadConst");
        ct.register_gadget(0x200, "StoreMem");
        ct.register_verify(0x5000, "vf");

        ct.note_ret(0x100, 5); // no episode open: ignored
        ct.note_call(0x5000, 10);
        ct.note_ret(0x100, 14);
        ct.note_ret(0x200, 20);
        ct.note_ret(0x999, 25); // not a gadget
        ct.note_call(0x6000, 30); // not a verify entry
        ct.finish();

        assert_eq!(ct.episodes().len(), 1);
        let ep = &ct.episodes()[0];
        assert_eq!(ep.func, "vf");
        assert_eq!(ep.dispatches, 2);
        assert_eq!(ep.cycles(), 10); // 10 → 20
        assert_eq!(ct.dispatches().len(), 2);
        assert_eq!(ct.dispatches()[0].cycles, 4);
        assert_eq!(ct.dispatches()[1].cycles, 6);
        assert_eq!(ct.dispatches_for("vf"), 2);
    }

    #[test]
    fn reentry_closes_previous_episode() {
        let mut ct = ChainTracer::new();
        ct.register_gadget(0x100, "Nop");
        ct.register_verify(0x5000, "vf");
        ct.note_call(0x5000, 0);
        ct.note_ret(0x100, 3);
        ct.note_call(0x5000, 10);
        ct.note_ret(0x100, 12);
        ct.finish();
        assert_eq!(ct.episodes().len(), 2);
        assert_eq!(ct.episodes()[0].dispatches, 1);
        assert_eq!(ct.episodes()[1].start_cycles, 10);
    }

    #[test]
    fn export_produces_cycle_lane() {
        let mut ct = ChainTracer::new();
        ct.register_gadget(0x100, "LoadConst");
        ct.register_verify(0x5000, "vf");
        ct.note_call(0x5000, 10);
        ct.note_ret(0x100, 14);
        ct.finish();

        let tracer = Tracer::new();
        ct.export_to(&tracer);
        let snap = tracer.snapshot();
        assert_eq!(snap.counters["vm.dispatch.count"], 1);
        assert_eq!(snap.counters["vm.dispatch.kind.LoadConst"], 1);
        assert_eq!(snap.counters["vf.vf.invocations"], 1);
        assert_eq!(snap.counters["vf.vf.cycles"], 4);
        assert_eq!(snap.hists["vm.verify.dispatches"].count, 1);
        let has_span = snap.events.iter().any(|e| {
            matches!(e, parallax_trace::Event::Span { name, start_us, .. }
                if name == "chain:vf" && *start_us == 10)
        });
        assert!(has_span, "cycle-stamped episode span missing");
        let has_instant = snap.events.iter().any(|e| {
            matches!(e, parallax_trace::Event::Instant { name, ts_us, .. }
                if name == "gadget" && *ts_us == 14)
        });
        assert!(has_instant, "cycle-stamped dispatch instant missing");
    }
}
