//! The cycle-cost model.
//!
//! Parallax's evaluation hinges on *relative* timing: a ROP gadget
//! chain is much slower than the equivalent native code because every
//! gadget ends in a `ret` whose target the return-stack buffer (RSB)
//! cannot predict, and because each operation costs extra stack
//! traffic. The model below charges per-instruction costs calibrated
//! to a generic out-of-order x86: simple ALU ops are cheap, memory
//! operations cost a cached load/store, and a `ret` that does not match
//! the RSB top pays a branch-mispredict penalty. Absolute numbers are
//! not meant to match any specific CPU; the paper's slowdown *shape*
//! (one to two orders of magnitude per translated function) emerges
//! from the predict/mispredict asymmetry.

/// Per-instruction-class cycle costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Simple register ALU operation, move, push/pop register work.
    pub alu: u64,
    /// Additional cost of a memory operand (load or store).
    pub mem: u64,
    /// Not-taken conditional branch.
    pub branch_not_taken: u64,
    /// Taken branch (correctly predicted direct jump).
    pub branch_taken: u64,
    /// `call` (pushes the return address, trains the RSB).
    pub call: u64,
    /// `ret` whose target matches the return-stack buffer.
    pub ret_predicted: u64,
    /// `ret` whose target was NOT predicted — the ROP case.
    pub ret_mispredict: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide.
    pub div: u64,
    /// Syscall round trip.
    pub syscall: u64,
    /// `pushad`/`popad`.
    pub pushad: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            alu: 1,
            mem: 3,
            branch_not_taken: 1,
            branch_taken: 2,
            call: 3,
            ret_predicted: 2,
            ret_mispredict: 24,
            mul: 4,
            div: 20,
            syscall: 150,
            pushad: 9,
        }
    }
}

/// Depth of the simulated return-stack buffer. Matches common
/// microarchitectures (16 entries).
pub const RSB_DEPTH: usize = 16;

/// A simulated return-stack buffer.
///
/// `call` pushes the return address; `ret` pops and reports whether the
/// actual target matched the prediction. Overflow overwrites the oldest
/// entry (circular), underflow always mispredicts.
#[derive(Debug, Clone)]
pub struct ReturnStackBuffer {
    ring: [u32; RSB_DEPTH],
    top: usize,
    len: usize,
}

impl Default for ReturnStackBuffer {
    fn default() -> ReturnStackBuffer {
        ReturnStackBuffer {
            ring: [0; RSB_DEPTH],
            top: 0,
            len: 0,
        }
    }
}

impl ReturnStackBuffer {
    /// Records a `call`'s return address.
    pub fn push(&mut self, ret_addr: u32) {
        self.ring[self.top] = ret_addr;
        self.top = (self.top + 1) % RSB_DEPTH;
        self.len = (self.len + 1).min(RSB_DEPTH);
    }

    /// Pops a prediction for a `ret`; returns true if `actual` matches.
    pub fn pop_and_check(&mut self, actual: u32) -> bool {
        if self.len == 0 {
            return false;
        }
        self.top = (self.top + RSB_DEPTH - 1) % RSB_DEPTH;
        self.len -= 1;
        self.ring[self.top] == actual
    }

    /// Clears all predictions.
    pub fn clear(&mut self) {
        self.len = 0;
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_call_ret_predicts() {
        let mut rsb = ReturnStackBuffer::default();
        rsb.push(0x1000);
        rsb.push(0x2000);
        assert!(rsb.pop_and_check(0x2000));
        assert!(rsb.pop_and_check(0x1000));
        assert!(!rsb.pop_and_check(0x1000)); // underflow
    }

    #[test]
    fn rop_ret_mispredicts() {
        let mut rsb = ReturnStackBuffer::default();
        rsb.push(0x1000);
        // A ROP ret goes to a gadget, not the recorded return address.
        assert!(!rsb.pop_and_check(0x5555));
    }

    #[test]
    fn overflow_is_circular() {
        let mut rsb = ReturnStackBuffer::default();
        for i in 0..(RSB_DEPTH as u32 + 4) {
            rsb.push(i);
        }
        // The newest entries survive.
        for i in (4..RSB_DEPTH as u32 + 4).rev() {
            assert!(rsb.pop_and_check(i), "entry {i}");
        }
        assert!(!rsb.pop_and_check(3));
    }

    #[test]
    fn default_costs_penalize_rop() {
        let c = CostModel::default();
        assert!(c.ret_mispredict >= 10 * c.ret_predicted);
        assert!(c.mem > c.alu);
    }
}
