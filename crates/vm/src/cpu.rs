//! CPU register file and flags.

use parallax_x86::{Cond, Reg32, Reg8};

/// The x86 status flags tracked by the VM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Carry flag.
    pub cf: bool,
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Overflow flag.
    pub of: bool,
    /// Parity flag (even parity of the low result byte).
    pub pf: bool,
    /// Auxiliary carry flag (carry out of bit 3).
    pub af: bool,
}

impl Flags {
    /// Evaluates a condition code against the current flags.
    pub fn cond(&self, c: Cond) -> bool {
        match c {
            Cond::O => self.of,
            Cond::No => !self.of,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::P => self.pf,
            Cond::Np => !self.pf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || (self.sf != self.of),
            Cond::G => !self.zf && (self.sf == self.of),
        }
    }

    /// Packs the flags into EFLAGS format (for `pushfd`).
    pub fn to_eflags(&self) -> u32 {
        let mut v = 0x2; // reserved bit 1 always set
        if self.cf {
            v |= 1 << 0;
        }
        if self.pf {
            v |= 1 << 2;
        }
        if self.af {
            v |= 1 << 4;
        }
        if self.zf {
            v |= 1 << 6;
        }
        if self.sf {
            v |= 1 << 7;
        }
        if self.of {
            v |= 1 << 11;
        }
        v
    }

    /// Unpacks EFLAGS format (for `popfd`).
    pub fn from_eflags(v: u32) -> Flags {
        Flags {
            cf: v & (1 << 0) != 0,
            pf: v & (1 << 2) != 0,
            af: v & (1 << 4) != 0,
            zf: v & (1 << 6) != 0,
            sf: v & (1 << 7) != 0,
            of: v & (1 << 11) != 0,
        }
    }
}

/// The register file plus instruction pointer and flags.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    regs: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Status flags.
    pub flags: Flags,
}

impl Cpu {
    /// Reads a 32-bit register.
    #[inline]
    pub fn reg(&self, r: Reg32) -> u32 {
        self.regs[r.encoding() as usize]
    }

    /// Writes a 32-bit register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg32, v: u32) {
        self.regs[r.encoding() as usize] = v;
    }

    /// Reads an 8-bit register (low or high byte of its parent).
    #[inline]
    pub fn reg8(&self, r: Reg8) -> u8 {
        let parent = self.reg(r.parent());
        if r.is_high() {
            (parent >> 8) as u8
        } else {
            parent as u8
        }
    }

    /// Writes an 8-bit register, preserving the other bytes.
    #[inline]
    pub fn set_reg8(&mut self, r: Reg8, v: u8) {
        let parent = r.parent();
        let old = self.reg(parent);
        let new = if r.is_high() {
            (old & 0xffff_00ff) | ((v as u32) << 8)
        } else {
            (old & 0xffff_ff00) | v as u32
        };
        self.set_reg(parent, new);
    }

    /// The stack pointer.
    #[inline]
    pub fn esp(&self) -> u32 {
        self.reg(Reg32::Esp)
    }

    /// Sets the stack pointer.
    #[inline]
    pub fn set_esp(&mut self, v: u32) {
        self.set_reg(Reg32::Esp, v);
    }
}

/// Computes the parity flag: true if the low byte has even parity.
#[inline]
pub fn parity(v: u32) -> bool {
    (v as u8).count_ones().is_multiple_of(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subregister_aliasing() {
        let mut cpu = Cpu::default();
        cpu.set_reg(Reg32::Eax, 0x1234_5678);
        assert_eq!(cpu.reg8(Reg8::Al), 0x78);
        assert_eq!(cpu.reg8(Reg8::Ah), 0x56);
        cpu.set_reg8(Reg8::Al, 0xaa);
        assert_eq!(cpu.reg(Reg32::Eax), 0x1234_56aa);
        cpu.set_reg8(Reg8::Ah, 0xbb);
        assert_eq!(cpu.reg(Reg32::Eax), 0x1234_bbaa);
        cpu.set_reg8(Reg8::Ch, 0x11);
        assert_eq!(cpu.reg(Reg32::Ecx), 0x0000_1100);
    }

    #[test]
    fn eflags_roundtrip() {
        let f = Flags {
            cf: true,
            zf: true,
            sf: false,
            of: true,
            pf: false,
            af: true,
        };
        assert_eq!(Flags::from_eflags(f.to_eflags()), f);
    }

    #[test]
    fn conditions() {
        let mut f = Flags {
            zf: true,
            ..Flags::default()
        };
        assert!(f.cond(Cond::E));
        assert!(!f.cond(Cond::Ne));
        assert!(f.cond(Cond::Be));
        assert!(f.cond(Cond::Le));
        f = Flags {
            sf: true,
            of: false,
            ..Flags::default()
        };
        assert!(f.cond(Cond::L));
        assert!(!f.cond(Cond::Ge));
        assert!(f.cond(Cond::S));
        f = Flags::default();
        assert!(f.cond(Cond::A));
        assert!(f.cond(Cond::G));
        assert!(f.cond(Cond::Ns));
    }

    #[test]
    fn parity_is_low_byte_even() {
        assert!(parity(0x00));
        assert!(parity(0x03));
        assert!(!parity(0x01));
        assert!(parity(0xff));
        assert!(!parity(0x1_07)); // only low byte counts
    }
}
