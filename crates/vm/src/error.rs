//! Fault and exit types for the VM.

use core::fmt;

/// Why a memory access or instruction faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Access outside every mapped region.
    OutOfBounds,
    /// Data write into the text region under W⊕X.
    WriteToText,
    /// Instruction fetch outside the text region.
    ExecOutsideText,
    /// Undecodable instruction bytes at `eip`.
    InvalidInstruction,
    /// Division by zero (or quotient overflow).
    DivideError,
    /// `int` with an unsupported vector, or an unknown syscall number.
    BadSyscall,
    /// `int3` breakpoint hit.
    Breakpoint,
    /// `hlt` executed in user code.
    Halted,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::OutOfBounds => "memory access out of bounds",
            FaultKind::WriteToText => "write to text segment (W^X)",
            FaultKind::ExecOutsideText => "instruction fetch outside text",
            FaultKind::InvalidInstruction => "invalid instruction",
            FaultKind::DivideError => "divide error",
            FaultKind::BadSyscall => "bad syscall",
            FaultKind::Breakpoint => "breakpoint",
            FaultKind::Halted => "halted",
        };
        f.write_str(s)
    }
}

/// A runtime fault, with the faulting address or instruction pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Faulting virtual address (the accessed address for memory
    /// faults, otherwise the instruction pointer).
    pub vaddr: u32,
    /// Classification.
    pub kind: FaultKind,
}

impl Fault {
    /// Creates a fault record.
    pub fn new(vaddr: u32, kind: FaultKind) -> Fault {
        Fault { vaddr, kind }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {:#010x}", self.kind, self.vaddr)
    }
}

impl std::error::Error for Fault {}

/// How a VM run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// The program invoked the `exit` syscall.
    Exited(i32),
    /// The program faulted.
    Fault(Fault),
    /// The configured cycle budget was exhausted (runaway program).
    CycleLimit,
    /// The configured output budget was exhausted (runaway writer).
    MemLimit,
}

impl Exit {
    /// True for a clean `exit(0)`.
    pub fn is_success(&self) -> bool {
        matches!(self, Exit::Exited(0))
    }

    /// The exit status, if the program exited cleanly.
    pub fn status(&self) -> Option<i32> {
        match self {
            Exit::Exited(s) => Some(*s),
            _ => None,
        }
    }
}

impl fmt::Display for Exit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exit::Exited(s) => write!(f, "exited with status {s}"),
            Exit::Fault(fault) => write!(f, "faulted: {fault}"),
            Exit::CycleLimit => write!(f, "cycle limit exhausted"),
            Exit::MemLimit => write!(f, "output limit exhausted"),
        }
    }
}
