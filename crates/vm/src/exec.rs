//! The instruction execution engine.

use std::collections::HashMap;
use std::rc::Rc;

use parallax_image::{LinkedImage, VerifiedImage};
use parallax_x86::insn::{AluOp, Insn, Mem, Mnemonic, OpSize, Operand, ShiftOp};
use parallax_x86::{decode, Reg, Reg32, Reg8};

use crate::block::{
    build_block, Block, BlockCache, BlockStats, FastOp, FusedGadget, MAX_BLOCK_INSNS,
};
use crate::chaintrace::ChainTracer;
use crate::cost::{CostModel, ReturnStackBuffer};
use crate::cpu::{parity, Cpu, Flags};
use crate::error::{Exit, Fault, FaultKind};
use crate::mem::Memory;
use crate::profile::Profiler;
use crate::syscall::{self, SyscallState};

/// Return address sentinel used by [`Vm::call_function`]. Lies outside
/// every mapped region, so a stray jump to it faults instead of
/// silently succeeding.
pub const CALL_SENTINEL: u32 = 0xffff_fff0;

/// True if a fast op can write memory — and therefore dirty code when
/// W⊕X is disabled. Stores, pushes, and memory pops; everything else
/// fast only touches registers or reads.
#[inline]
fn op_writes_memory(op: FastOp) -> bool {
    matches!(
        op,
        FastOp::StoreMR(..)
            | FastOp::PushR(_)
            | FastOp::PushI(_)
            | FastOp::PushM(_)
            | FastOp::PopM(_)
    )
}

/// Construction options for a [`Vm`].
#[derive(Debug, Clone)]
pub struct VmOptions {
    /// Cycle budget before [`Exit::CycleLimit`] (default 2 × 10⁹).
    pub cycle_limit: u64,
    /// Bytes of syscall output before [`Exit::MemLimit`] (default
    /// 64 MiB). Syscall output is the only unbounded allocation in the
    /// VM, so this caps total memory growth of a runaway writer.
    pub output_limit: usize,
    /// Collect a per-function flat profile.
    pub profile: bool,
    /// The cycle-cost model.
    pub cost: CostModel,
    /// Seed for the deterministic `random` syscall.
    pub seed: u64,
}

impl Default for VmOptions {
    fn default() -> VmOptions {
        VmOptions {
            cycle_limit: 2_000_000_000,
            output_limit: 64 << 20,
            profile: false,
            cost: CostModel::default(),
            seed: 0x5eed_0001,
        }
    }
}

/// A single-process x86-32 virtual machine.
pub struct Vm {
    /// CPU state.
    pub cpu: Cpu,
    mem: Memory,
    cost: CostModel,
    cycles: u64,
    cycle_limit: u64,
    output_limit: usize,
    rsb: ReturnStackBuffer,
    sys: SyscallState,
    profiler: Option<Profiler>,
    chain_tracer: Option<ChainTracer>,
    blocks: BlockCache,
    /// Decoded-instruction cache for the legacy per-instruction
    /// reference path ([`Vm::step_reference`] / [`Vm::run_reference`]).
    /// Unused by the block-translation path.
    ref_decode_cache: HashMap<u32, Rc<Insn>>,
    /// Retired instruction count.
    pub instructions: u64,
    /// Image entry point, kept so [`Vm::reset_to`] can rewind `eip`.
    entry: u32,
    /// Syscall RNG seed, kept so [`Vm::reset_to`] can rewind the
    /// deterministic syscall state.
    seed: u64,
}

impl Vm {
    /// Creates a VM with default options, loading `image`.
    ///
    /// This constructor trusts its input; loaders that receive images
    /// over an untrusted channel must go through
    /// [`Vm::from_verified`] so no CPU is ever built over an
    /// unchecked image (fail-closed loading, DESIGN.md §12).
    pub fn new(image: &LinkedImage) -> Vm {
        Vm::with_options(image, VmOptions::default())
    }

    /// Creates a VM over an image that passed fail-closed
    /// verification — the production load path. The only way to reach
    /// execution without the checks is the loudly named
    /// [`VerifiedImage::dangerous_skip_verify`] escape hatch.
    pub fn from_verified(image: &VerifiedImage) -> Vm {
        Vm::new(image)
    }

    /// [`Vm::from_verified`] with explicit options.
    pub fn from_verified_with_options(image: &VerifiedImage, opts: VmOptions) -> Vm {
        Vm::with_options(image, opts)
    }

    /// Creates a VM with explicit options.
    pub fn with_options(image: &LinkedImage, opts: VmOptions) -> Vm {
        let mem = Memory::new(
            image.text.clone(),
            image.text_base,
            image.data.clone(),
            image.data_base,
            image.bss_size,
        );
        let mut cpu = Cpu::default();
        cpu.set_esp(mem.initial_esp());
        cpu.eip = image.entry;
        let profiler = if opts.profile {
            Some(Profiler::new(
                image.funcs().map(|s| (s.name.clone(), s.vaddr, s.size)),
            ))
        } else {
            None
        };
        Vm {
            cpu,
            mem,
            cost: opts.cost,
            cycles: 0,
            cycle_limit: opts.cycle_limit,
            output_limit: opts.output_limit,
            rsb: ReturnStackBuffer::default(),
            sys: SyscallState::new(opts.seed),
            profiler,
            chain_tracer: None,
            blocks: BlockCache::new(),
            ref_decode_cache: HashMap::new(),
            instructions: 0,
            entry: image.entry,
            seed: opts.seed,
        }
    }

    /// Rolls the VM back to its just-constructed state. `pristine`
    /// must be a clone of [`Vm::mem`] taken right after construction
    /// with the write log enabled (see [`Memory::enable_write_log`]);
    /// rollback is then O(bytes the guest wrote) instead of O(memory
    /// size), which is what makes probe-VM reuse cheaper than
    /// rebuilding. The predecoded block cache is deliberately kept
    /// hot: text is immutable under W⊕X, and restored text ranges
    /// re-dirty so any overlapping blocks evict.
    pub fn reset_to(&mut self, pristine: &Memory) {
        self.reset_to_skipping(pristine, &[]);
    }

    /// [`Vm::reset_to`], except that dirtied bytes inside the `skip`
    /// ranges are *not* rolled back. This is the probe reset fast path:
    /// a caller that unconditionally rewrites certain data regions
    /// (probe scratch) before every run can skip restoring them, so a
    /// reset costs only the writes that landed elsewhere. `skip` ranges
    /// must lie outside text — skipped text would leave the block cache
    /// observing stale bytes.
    pub fn reset_to_skipping(&mut self, pristine: &Memory, skip: &[(u32, u32)]) {
        debug_assert!(skip
            .iter()
            .all(|&(s, e)| !self.mem.in_text(s) && !self.mem.in_text(e - 1)));
        self.mem.restore_from_skipping(pristine, skip);
        self.sync_code_writes();
        self.cpu = Cpu::default();
        self.cpu.set_esp(self.mem.initial_esp());
        self.cpu.eip = self.entry;
        self.cycles = 0;
        self.instructions = 0;
        self.rsb = ReturnStackBuffer::default();
        self.sys = SyscallState::new(self.seed);
    }

    /// Total cycles retired so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Block-translation cache counters (hits, misses, invalidations).
    pub fn block_stats(&self) -> BlockStats {
        self.blocks.stats
    }

    /// The memory subsystem.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory (test harnesses and attack drivers).
    /// Any code patch must go through [`Vm::write_code`] /
    /// [`Vm::write_icache`] so the decode cache stays coherent.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The flat profiler, if enabled.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Installs a [`ChainTracer`] that observes `call`/`ret`
    /// retirement for verification-chain telemetry.
    pub fn set_chain_tracer(&mut self, tracer: ChainTracer) {
        self.chain_tracer = Some(tracer);
    }

    /// The installed chain tracer, if any.
    pub fn chain_tracer(&self) -> Option<&ChainTracer> {
        self.chain_tracer.as_ref()
    }

    /// Removes and returns the chain tracer, closing any episode
    /// still open at the current cycle count.
    pub fn take_chain_tracer(&mut self) -> Option<ChainTracer> {
        let mut ct = self.chain_tracer.take()?;
        ct.finish();
        Some(ct)
    }

    /// Bytes written to stdout via the `write` syscall.
    pub fn output(&self) -> &[u8] {
        &self.sys.output
    }

    /// Drains captured output.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.sys.output)
    }

    /// Provides bytes for the `read` syscall.
    pub fn set_input(&mut self, input: &[u8]) {
        self.sys.input = input.to_vec().into();
    }

    /// Marks a debugger as attached, so the `ptrace(TRACEME)` syscall
    /// fails — the condition the paper's detector checks for.
    pub fn attach_debugger(&mut self) {
        self.sys.debugger_attached = true;
    }

    /// Enables split instruction/data views (Wurster et al. attack).
    pub fn enable_split_cache(&mut self) {
        self.mem.enable_split_cache();
    }

    /// Patches the instruction view only (requires split-cache mode).
    /// Evicts only the predecoded blocks overlapping the written range.
    pub fn write_icache(&mut self, vaddr: u32, bytes: &[u8]) -> Result<(), Fault> {
        self.mem.write_icache(vaddr, bytes)?;
        self.sync_code_writes();
        Ok(())
    }

    /// Patches code in both views (debugger-style dynamic tampering).
    /// Evicts only the predecoded blocks overlapping the written range.
    pub fn write_code(&mut self, vaddr: u32, bytes: &[u8]) -> Result<(), Fault> {
        self.mem.write_code(vaddr, bytes)?;
        self.sync_code_writes();
        Ok(())
    }

    /// Applies pending code-write ranges to the caches: overlapping
    /// predecoded blocks are evicted (range-based), and the legacy
    /// reference decode cache — which has no span metadata — is
    /// flushed wholesale, exactly as the pre-block-cache VM did.
    fn sync_code_writes(&mut self) {
        if !self.mem.has_dirty_code() {
            return;
        }
        if !self.ref_decode_cache.is_empty() {
            self.ref_decode_cache.clear();
        }
        for (start, end) in self.mem.take_dirty_code() {
            self.blocks.invalidate_range(start, end);
        }
    }

    /// Runs until exit, fault, or cycle exhaustion.
    pub fn run(&mut self) -> Exit {
        loop {
            if let Some(exit) = self.exec_block() {
                return exit;
            }
        }
    }

    /// Runs until exit via the retained per-instruction reference path
    /// ([`Vm::step_reference`]): no block predecoding, a `HashMap`
    /// probe plus `Rc` clone per instruction. Kept as the differential
    /// oracle for the block-translation engine and as the baseline leg
    /// of the `vm_dispatch` benchmark.
    pub fn run_reference(&mut self) -> Exit {
        loop {
            if self.cycles >= self.cycle_limit {
                return Exit::CycleLimit;
            }
            if self.sys.output.len() > self.output_limit {
                return Exit::MemLimit;
            }
            match self.step_reference() {
                Ok(None) => {}
                Ok(Some(status)) => return Exit::Exited(status),
                Err(f) => return Exit::Fault(f),
            }
        }
    }

    /// Calls the function at `entry` with `args` (cdecl), running until
    /// it returns. Returns `eax`. A clean `exit` syscall or a fault
    /// during the call is reported as `Err`.
    pub fn call_function(&mut self, entry: u32, args: &[u32]) -> Result<u32, Exit> {
        let saved_esp = self.cpu.esp();
        let mut esp = saved_esp;
        for &a in args.iter().rev() {
            esp -= 4;
            self.mem.write32(esp, a).map_err(Exit::Fault)?;
        }
        esp -= 4;
        self.mem.write32(esp, CALL_SENTINEL).map_err(Exit::Fault)?;
        self.cpu.set_esp(esp);
        self.cpu.eip = entry;
        loop {
            if self.cpu.eip == CALL_SENTINEL {
                self.cpu.set_esp(saved_esp);
                return Ok(self.cpu.reg(Reg32::Eax));
            }
            if let Some(exit) = self.exec_block() {
                return Err(exit);
            }
        }
    }

    /// Looks up (or predecodes) the block entered at `eip`. Entries
    /// whose blocks keep getting invalidated (self-modifying hot
    /// spots) are rebuilt one instruction at a time so repeated
    /// patches don't pay a full predecode per iteration.
    fn block_at(&mut self, eip: u32) -> Result<Rc<Block>, Fault> {
        if let Some(b) = self.blocks.lookup(eip) {
            return Ok(b);
        }
        let cap = if self.blocks.thrashing(eip) {
            1
        } else {
            MAX_BLOCK_INSNS
        };
        let b = Rc::new(build_block(&self.mem, eip, cap)?);
        self.blocks.insert(Rc::clone(&b));
        Ok(b)
    }

    /// Executes the block at the current `eip`. Returns `Some(exit)`
    /// when the run is over, `None` to continue with the next block.
    ///
    /// Limit semantics match the stepping loop exactly: the cycle
    /// budget is checked before *every* instruction. The output budget
    /// only moves at a syscall, and syscalls terminate blocks, so the
    /// block-entry check covers it.
    fn exec_block(&mut self) -> Option<Exit> {
        if self.cycles >= self.cycle_limit {
            return Some(Exit::CycleLimit);
        }
        if self.sys.output.len() > self.output_limit {
            return Some(Exit::MemLimit);
        }
        self.sync_code_writes();
        // Fused `op; ret` gadgets — the ROP dispatch shape — execute
        // straight from the cache slot: no `Rc` clone, no instruction
        // vector. The interleaved limit and dirty-code checks are the
        // same ones the generic loop performs.
        if let Some(f) = self.blocks.fused_at(self.cpu.eip) {
            return self.exec_fused(f);
        }
        let block = match self.block_at(self.cpu.eip) {
            Ok(b) => b,
            Err(f) => return Some(Exit::Fault(f)),
        };
        for (idx, p) in block.insns.iter().enumerate() {
            if idx > 0 {
                if self.cycles >= self.cycle_limit {
                    return Some(Exit::CycleLimit);
                }
                if self.mem.has_dirty_code() {
                    // An instruction in this block patched code (W⊕X
                    // off). Bail out so the rest re-decodes fresh.
                    return None;
                }
            }
            let r = match p.fast {
                FastOp::Slow => self.exec_insn(&p.insn, p.eip, p.next),
                fast => self.exec_fast(fast, p.eip, p.next).map(|()| None),
            };
            match r {
                Ok(None) => {}
                Ok(Some(status)) => return Some(Exit::Exited(status)),
                Err(f) => return Some(Exit::Fault(f)),
            }
        }
        None
    }

    /// Executes a fused `body…; ret` gadget block (up to
    /// [`crate::block::MAX_FUSED_OPS`] body ops). Mirrors one pass of
    /// the generic loop in [`Vm::exec_block`] exactly, including the
    /// between-instruction cycle-limit checks. The dirty-code check is
    /// elided after ops that cannot write memory — only a store, push,
    /// or memory pop landing in text with W⊕X off can dirty code, and
    /// `sync_code_writes` already drained at block entry.
    #[inline]
    fn exec_fused(&mut self, f: FusedGadget) -> Option<Exit> {
        let len = f.len as usize;
        for idx in 0..len {
            let op = f.ops[idx];
            if idx > 0 {
                if self.cycles >= self.cycle_limit {
                    return Some(Exit::CycleLimit);
                }
                if op_writes_memory(f.ops[idx - 1].op) && self.mem.has_dirty_code() {
                    // A body op patched code (W⊕X off). Bail out so the
                    // rest re-decodes fresh.
                    return None;
                }
            }
            // The final `pop r32; ret` — two adjacent stack reads,
            // resolved once. `pop esp` pivots the stack, so its ret
            // target lives at the *new* esp, not esp+4: that shape
            // takes the sequential path.
            if idx + 1 == len {
                if let FastOp::PopR(r) = op.op {
                    if r != Reg32::Esp {
                        let esp = self.cpu.esp();
                        if let Ok((v, target)) = self.mem.read32_pair(esp) {
                            self.instructions += 1;
                            self.cpu.set_reg(r, v);
                            self.cpu.set_esp(esp.wrapping_add(4));
                            let pop_cost = self.cost.alu + self.cost.mem;
                            self.cycles += pop_cost;
                            if let Some(p) = self.profiler.as_mut() {
                                p.record(op.eip, pop_cost);
                            }
                            if self.cycles >= self.cycle_limit {
                                self.cpu.eip = f.ret_eip;
                                return Some(Exit::CycleLimit);
                            }
                            self.instructions += 1;
                            let predicted = self.rsb.pop_and_check(target);
                            let ret_cost = if predicted {
                                self.cost.ret_predicted
                            } else {
                                self.cost.ret_mispredict
                            };
                            if let Some(ct) = self.chain_tracer.as_mut() {
                                ct.note_ret(target, self.cycles + ret_cost);
                            }
                            self.cpu.set_esp(esp.wrapping_add(8));
                            self.cpu.eip = target;
                            self.cycles += ret_cost;
                            if let Some(p) = self.profiler.as_mut() {
                                p.record(f.ret_eip, ret_cost);
                            }
                            return None;
                        }
                        // Pair read failed (region boundary / fault):
                        // take the exact sequential path below.
                    }
                }
            }
            if let Err(fault) = self.exec_fast(op.op, op.eip, op.next) {
                return Some(Exit::Fault(fault));
            }
        }
        if self.cycles >= self.cycle_limit {
            return Some(Exit::CycleLimit);
        }
        if op_writes_memory(f.ops[len - 1].op) && self.mem.has_dirty_code() {
            return None;
        }
        if let Err(fault) = self.exec_fast(FastOp::Ret, f.ret_eip, f.ret_next) {
            return Some(Exit::Fault(fault));
        }
        None
    }

    /// The legacy decode front-end: one `HashMap` probe and `Rc` clone
    /// per instruction, flushed wholesale on any code write.
    fn decode_at_reference(&mut self, eip: u32) -> Result<Rc<Insn>, Fault> {
        if let Some(i) = self.ref_decode_cache.get(&eip) {
            return Ok(Rc::clone(i));
        }
        let bytes = self.mem.fetch(eip)?;
        let insn = decode(bytes).map_err(|_| Fault::new(eip, FaultKind::InvalidInstruction))?;
        let rc = Rc::new(insn);
        self.ref_decode_cache.insert(eip, Rc::clone(&rc));
        Ok(rc)
    }

    /// Executes one instruction via the per-instruction reference
    /// path. Semantics are identical to [`Vm::step`]; only the decode
    /// front-end differs.
    pub fn step_reference(&mut self) -> Result<Option<i32>, Fault> {
        self.sync_code_writes();
        let eip = self.cpu.eip;
        let insn = self.decode_at_reference(eip)?;
        let next = eip.wrapping_add(insn.len as u32);
        self.exec_insn(&insn, eip, next)
    }

    /// Executes one instruction. `Ok(Some(status))` means the program
    /// invoked `exit`. Served from the block-translation cache, so
    /// single-stepping (probe VMs, `--trace`) shares the predecoded
    /// blocks with [`Vm::run`].
    pub fn step(&mut self) -> Result<Option<i32>, Fault> {
        self.sync_code_writes();
        let block = self.block_at(self.cpu.eip)?;
        let p = &block.insns[0];
        match p.fast {
            FastOp::Slow => self.exec_insn(&p.insn, p.eip, p.next),
            fast => self.exec_fast(fast, p.eip, p.next).map(|()| None),
        }
    }

    /// The fast-path micro-op interpreter. Each arm reproduces the
    /// corresponding [`Vm::exec_insn`] arm exactly — effects, cycle
    /// cost, RSB, and tracer hooks included.
    #[inline]
    fn exec_fast(&mut self, op: FastOp, eip: u32, next: u32) -> Result<(), Fault> {
        self.cpu.eip = next;
        self.instructions += 1;
        let cost = match op {
            FastOp::Ret => {
                let target = self.pop()?;
                let predicted = self.rsb.pop_and_check(target);
                let cost = if predicted {
                    self.cost.ret_predicted
                } else {
                    self.cost.ret_mispredict
                };
                if let Some(ct) = self.chain_tracer.as_mut() {
                    ct.note_ret(target, self.cycles + cost);
                }
                self.cpu.eip = target;
                cost
            }
            FastOp::PopR(r) => {
                let v = self.pop()?;
                self.cpu.set_reg(r, v);
                self.cost.alu + self.cost.mem
            }
            FastOp::PushR(r) => {
                self.push(self.cpu.reg(r))?;
                self.cost.alu + self.cost.mem
            }
            FastOp::PushI(v) => {
                self.push(v)?;
                self.cost.alu + self.cost.mem
            }
            FastOp::MovRI(r, v) => {
                self.cpu.set_reg(r, v);
                self.cost.alu
            }
            FastOp::MovRR(d, s) => {
                let v = self.cpu.reg(s);
                self.cpu.set_reg(d, v);
                self.cost.alu
            }
            FastOp::AluRR(op, d, s) => {
                let a = self.cpu.reg(d);
                let b = self.cpu.reg(s);
                let r = self.alu(op, a, b, OpSize::Dword);
                if op != AluOp::Cmp {
                    self.cpu.set_reg(d, r);
                }
                self.cost.alu
            }
            FastOp::AluRI(op, d, v) => {
                let a = self.cpu.reg(d);
                let r = self.alu(op, a, v, OpSize::Dword);
                if op != AluOp::Cmp {
                    self.cpu.set_reg(d, r);
                }
                self.cost.alu
            }
            FastOp::LoadRM(d, base, disp) => {
                let mut ea = disp as u32;
                if let Some(b) = base {
                    ea = ea.wrapping_add(self.cpu.reg(b));
                }
                let v = self.mem.read32(ea)?;
                self.cpu.set_reg(d, v);
                self.cost.alu + self.cost.mem
            }
            FastOp::StoreMR(base, disp, s) => {
                let mut ea = disp as u32;
                if let Some(b) = base {
                    ea = ea.wrapping_add(self.cpu.reg(b));
                }
                self.mem.write32(ea, self.cpu.reg(s))?;
                self.cost.alu + self.cost.mem
            }
            // `lea` computes an address without touching memory, so
            // like `exec_insn` it charges no memory cost.
            FastOp::LeaRM(d, m) => {
                let ea = self.ea(&m);
                self.cpu.set_reg(d, ea);
                self.cost.alu
            }
            FastOp::XchgRR(d, s) => {
                let a = self.cpu.reg(d);
                let b = self.cpu.reg(s);
                self.cpu.set_reg(d, b);
                self.cpu.set_reg(s, a);
                self.cost.alu
            }
            FastOp::TestRR(d, s) => {
                let a = self.cpu.reg(d);
                let b = self.cpu.reg(s);
                self.alu(AluOp::And, a, b, OpSize::Dword);
                self.cost.alu
            }
            FastOp::TestRI(d, v) => {
                let a = self.cpu.reg(d);
                self.alu(AluOp::And, a, v, OpSize::Dword);
                self.cost.alu
            }
            // Push-from-memory and pop-to-memory each touch two memory
            // locations, matching `exec_insn`'s operand-scan cost plus
            // the Push/Pop arm's extra `mem` charge.
            FastOp::PushM(m) => {
                let ea = self.ea(&m);
                let v = self.mem.read32(ea)?;
                self.push(v)?;
                self.cost.alu + self.cost.mem + self.cost.mem
            }
            FastOp::PopM(m) => {
                // Pop first: `pop [esp+d]` computes its address with
                // the already-incremented esp (x86 semantics, exactly
                // as `exec_insn`'s Pop arm orders it).
                let v = self.pop()?;
                let ea = self.ea(&m);
                self.mem.write32(ea, v)?;
                self.cost.alu + self.cost.mem + self.cost.mem
            }
            FastOp::Slow => unreachable!("Slow ops take the exec_insn path"),
        };
        self.cycles += cost;
        if let Some(p) = self.profiler.as_mut() {
            p.record(eip, cost);
        }
        Ok(())
    }

    /// Executes one decoded instruction at `eip` whose successor is
    /// `next`. The single authority for instruction semantics — both
    /// the block engine and the reference path land here.
    fn exec_insn(&mut self, insn: &Insn, eip: u32, next: u32) -> Result<Option<i32>, Fault> {
        self.cpu.eip = next;
        self.instructions += 1;

        let mut cost = self.cost.alu;
        if insn.ops.iter().any(|o| matches!(o, Operand::Mem(_))) && insn.mnemonic != Mnemonic::Lea {
            cost += self.cost.mem;
        }

        let mut exited = None;
        match insn.mnemonic {
            Mnemonic::Nop | Mnemonic::Clc | Mnemonic::Stc | Mnemonic::Cmc => match insn.mnemonic {
                Mnemonic::Clc => self.cpu.flags.cf = false,
                Mnemonic::Stc => self.cpu.flags.cf = true,
                Mnemonic::Cmc => self.cpu.flags.cf = !self.cpu.flags.cf,
                _ => {}
            },
            Mnemonic::Mov => {
                let v = self.read_op(&insn.ops[1], insn.size)?;
                self.write_op(&insn.ops[0], insn.size, v)?;
            }
            Mnemonic::Movzx => {
                let v = self.read_op(&insn.ops[1], OpSize::Byte)?;
                self.write_op(&insn.ops[0], OpSize::Dword, v & 0xff)?;
            }
            Mnemonic::Movsx => {
                let v = self.read_op(&insn.ops[1], OpSize::Byte)?;
                self.write_op(&insn.ops[0], OpSize::Dword, v as u8 as i8 as i32 as u32)?;
            }
            Mnemonic::Lea => {
                let m = insn.ops[1].mem().expect("lea has a memory source");
                let ea = self.ea(&m);
                self.write_op(&insn.ops[0], OpSize::Dword, ea)?;
            }
            Mnemonic::Xchg => {
                let a = self.read_op(&insn.ops[0], insn.size)?;
                let b = self.read_op(&insn.ops[1], insn.size)?;
                self.write_op(&insn.ops[0], insn.size, b)?;
                self.write_op(&insn.ops[1], insn.size, a)?;
            }
            Mnemonic::Alu(op) => {
                let a = self.read_op(&insn.ops[0], insn.size)?;
                let b = self.read_op(&insn.ops[1], insn.size)?;
                let r = self.alu(op, a, b, insn.size);
                if op != AluOp::Cmp {
                    self.write_op(&insn.ops[0], insn.size, r)?;
                }
            }
            Mnemonic::Test => {
                let a = self.read_op(&insn.ops[0], insn.size)?;
                let b = self.read_op(&insn.ops[1], insn.size)?;
                self.alu(AluOp::And, a, b, insn.size);
            }
            Mnemonic::Inc | Mnemonic::Dec => {
                let a = self.read_op(&insn.ops[0], insn.size)?;
                let cf = self.cpu.flags.cf;
                let op = if insn.mnemonic == Mnemonic::Inc {
                    AluOp::Add
                } else {
                    AluOp::Sub
                };
                let r = self.alu(op, a, 1, insn.size);
                self.cpu.flags.cf = cf; // inc/dec preserve CF
                self.write_op(&insn.ops[0], insn.size, r)?;
            }
            Mnemonic::Neg => {
                let a = self.read_op(&insn.ops[0], insn.size)?;
                let r = self.alu(AluOp::Sub, 0, a, insn.size);
                self.cpu.flags.cf = a != 0;
                self.write_op(&insn.ops[0], insn.size, r)?;
            }
            Mnemonic::Not => {
                let a = self.read_op(&insn.ops[0], insn.size)?;
                self.write_op(&insn.ops[0], insn.size, !a)?;
            }
            Mnemonic::Shift(op) => {
                let a = self.read_op(&insn.ops[0], insn.size)?;
                let n = self.read_op(&insn.ops[1], OpSize::Byte)? & 31;
                let r = self.shift(op, a, n, insn.size);
                self.write_op(&insn.ops[0], insn.size, r)?;
            }
            Mnemonic::Mul => {
                cost += self.cost.mul;
                let src = self.read_op(&insn.ops[0], insn.size)?;
                match insn.size {
                    OpSize::Dword => {
                        let p = self.cpu.reg(Reg32::Eax) as u64 * src as u64;
                        self.cpu.set_reg(Reg32::Eax, p as u32);
                        self.cpu.set_reg(Reg32::Edx, (p >> 32) as u32);
                        let hi = (p >> 32) != 0;
                        self.cpu.flags.cf = hi;
                        self.cpu.flags.of = hi;
                    }
                    OpSize::Byte => {
                        let p = (self.cpu.reg8(Reg8::Al) as u16) * (src as u8 as u16);
                        let eax = self.cpu.reg(Reg32::Eax);
                        self.cpu.set_reg(Reg32::Eax, (eax & 0xffff_0000) | p as u32);
                        let hi = (p >> 8) != 0;
                        self.cpu.flags.cf = hi;
                        self.cpu.flags.of = hi;
                    }
                }
            }
            Mnemonic::Imul => {
                cost += self.cost.mul;
                match insn.ops.len() {
                    1 => {
                        let src = self.read_op(&insn.ops[0], insn.size)?;
                        match insn.size {
                            OpSize::Dword => {
                                let p =
                                    (self.cpu.reg(Reg32::Eax) as i32 as i64) * (src as i32 as i64);
                                self.cpu.set_reg(Reg32::Eax, p as u32);
                                self.cpu.set_reg(Reg32::Edx, (p >> 32) as u32);
                                let fits = p == (p as i32) as i64;
                                self.cpu.flags.cf = !fits;
                                self.cpu.flags.of = !fits;
                            }
                            OpSize::Byte => {
                                let p = (self.cpu.reg8(Reg8::Al) as i8 as i16)
                                    * (src as u8 as i8 as i16);
                                let eax = self.cpu.reg(Reg32::Eax);
                                self.cpu
                                    .set_reg(Reg32::Eax, (eax & 0xffff_0000) | p as u16 as u32);
                                let fits = p == (p as i8) as i16;
                                self.cpu.flags.cf = !fits;
                                self.cpu.flags.of = !fits;
                            }
                        }
                    }
                    2 => {
                        let a = self.read_op(&insn.ops[0], OpSize::Dword)? as i32 as i64;
                        let b = self.read_op(&insn.ops[1], OpSize::Dword)? as i32 as i64;
                        let p = a * b;
                        self.write_op(&insn.ops[0], OpSize::Dword, p as u32)?;
                        let fits = p == (p as i32) as i64;
                        self.cpu.flags.cf = !fits;
                        self.cpu.flags.of = !fits;
                    }
                    _ => {
                        let b = self.read_op(&insn.ops[1], OpSize::Dword)? as i32 as i64;
                        let c = insn.ops[2].imm().expect("imul imm form");
                        let p = b * c;
                        self.write_op(&insn.ops[0], OpSize::Dword, p as u32)?;
                        let fits = p == (p as i32) as i64;
                        self.cpu.flags.cf = !fits;
                        self.cpu.flags.of = !fits;
                    }
                }
            }
            Mnemonic::Div => {
                cost += self.cost.div;
                let src = self.read_op(&insn.ops[0], insn.size)?;
                match insn.size {
                    OpSize::Dword => {
                        if src == 0 {
                            return Err(Fault::new(eip, FaultKind::DivideError));
                        }
                        let dividend = ((self.cpu.reg(Reg32::Edx) as u64) << 32)
                            | self.cpu.reg(Reg32::Eax) as u64;
                        let q = dividend / src as u64;
                        if q > u32::MAX as u64 {
                            return Err(Fault::new(eip, FaultKind::DivideError));
                        }
                        self.cpu.set_reg(Reg32::Eax, q as u32);
                        self.cpu.set_reg(Reg32::Edx, (dividend % src as u64) as u32);
                    }
                    OpSize::Byte => {
                        let s = src as u8;
                        if s == 0 {
                            return Err(Fault::new(eip, FaultKind::DivideError));
                        }
                        let ax = (self.cpu.reg(Reg32::Eax) & 0xffff) as u16;
                        let q = ax / s as u16;
                        if q > 0xff {
                            return Err(Fault::new(eip, FaultKind::DivideError));
                        }
                        let r = ax % s as u16;
                        let eax = self.cpu.reg(Reg32::Eax);
                        self.cpu.set_reg(
                            Reg32::Eax,
                            (eax & 0xffff_0000) | ((r as u32) << 8) | q as u32,
                        );
                    }
                }
            }
            Mnemonic::Idiv => {
                cost += self.cost.div;
                let src = self.read_op(&insn.ops[0], insn.size)?;
                match insn.size {
                    OpSize::Dword => {
                        let s = src as i32;
                        if s == 0 {
                            return Err(Fault::new(eip, FaultKind::DivideError));
                        }
                        let dividend = (((self.cpu.reg(Reg32::Edx) as u64) << 32)
                            | self.cpu.reg(Reg32::Eax) as u64)
                            as i64;
                        let q = dividend / s as i64;
                        if q > i32::MAX as i64 || q < i32::MIN as i64 {
                            return Err(Fault::new(eip, FaultKind::DivideError));
                        }
                        self.cpu.set_reg(Reg32::Eax, q as u32);
                        self.cpu.set_reg(Reg32::Edx, (dividend % s as i64) as u32);
                    }
                    OpSize::Byte => {
                        let s = src as u8 as i8;
                        if s == 0 {
                            return Err(Fault::new(eip, FaultKind::DivideError));
                        }
                        let ax = (self.cpu.reg(Reg32::Eax) & 0xffff) as u16 as i16;
                        let q = ax / s as i16;
                        if q > i8::MAX as i16 || q < i8::MIN as i16 {
                            return Err(Fault::new(eip, FaultKind::DivideError));
                        }
                        let r = ax % s as i16;
                        let eax = self.cpu.reg(Reg32::Eax);
                        self.cpu.set_reg(
                            Reg32::Eax,
                            (eax & 0xffff_0000) | ((r as u8 as u32) << 8) | q as u8 as u32,
                        );
                    }
                }
            }
            Mnemonic::Cwde => {
                let ax = (self.cpu.reg(Reg32::Eax) & 0xffff) as u16;
                self.cpu.set_reg(Reg32::Eax, ax as i16 as i32 as u32);
            }
            Mnemonic::Cdq => {
                let eax = self.cpu.reg(Reg32::Eax) as i32;
                self.cpu
                    .set_reg(Reg32::Edx, if eax < 0 { 0xffff_ffff } else { 0 });
            }
            Mnemonic::Push => {
                cost += self.cost.mem;
                let v = self.read_op(&insn.ops[0], OpSize::Dword)?;
                self.push(v)?;
            }
            Mnemonic::Pop => {
                cost += self.cost.mem;
                let v = self.pop()?;
                // For `pop esp`, the popped value wins (x86 semantics).
                self.write_op(&insn.ops[0], OpSize::Dword, v)?;
            }
            Mnemonic::Pushad => {
                cost += self.cost.pushad;
                let orig = self.cpu.esp();
                for r in [
                    Reg32::Eax,
                    Reg32::Ecx,
                    Reg32::Edx,
                    Reg32::Ebx,
                    Reg32::Esp,
                    Reg32::Ebp,
                    Reg32::Esi,
                    Reg32::Edi,
                ] {
                    let v = if r == Reg32::Esp {
                        orig
                    } else {
                        self.cpu.reg(r)
                    };
                    self.push(v)?;
                }
            }
            Mnemonic::Popad => {
                cost += self.cost.pushad;
                for r in [
                    Reg32::Edi,
                    Reg32::Esi,
                    Reg32::Ebp,
                    Reg32::Esp, // skipped
                    Reg32::Ebx,
                    Reg32::Edx,
                    Reg32::Ecx,
                    Reg32::Eax,
                ] {
                    let v = self.pop()?;
                    if r != Reg32::Esp {
                        self.cpu.set_reg(r, v);
                    }
                }
            }
            Mnemonic::Pushfd => {
                cost += self.cost.mem;
                self.push(self.cpu.flags.to_eflags())?;
            }
            Mnemonic::Popfd => {
                cost += self.cost.mem;
                let v = self.pop()?;
                self.cpu.flags = Flags::from_eflags(v);
            }
            Mnemonic::Leave => {
                cost += self.cost.mem;
                self.cpu.set_esp(self.cpu.reg(Reg32::Ebp));
                let v = self.pop()?;
                self.cpu.set_reg(Reg32::Ebp, v);
            }
            Mnemonic::Jmp => {
                cost = self.cost.branch_taken;
                let rel = rel_of(insn);
                self.cpu.eip = next.wrapping_add(rel as u32);
            }
            Mnemonic::JmpInd => {
                cost = self.cost.branch_taken + self.cost.mem;
                let t = self.read_op(&insn.ops[0], OpSize::Dword)?;
                self.cpu.eip = t;
            }
            Mnemonic::Jcc(c) => {
                if self.cpu.flags.cond(c) {
                    cost = self.cost.branch_taken;
                    let rel = rel_of(insn);
                    self.cpu.eip = next.wrapping_add(rel as u32);
                } else {
                    cost = self.cost.branch_not_taken;
                }
            }
            Mnemonic::Setcc(c) => {
                let v = self.cpu.flags.cond(c) as u32;
                self.write_op(&insn.ops[0], OpSize::Byte, v)?;
            }
            Mnemonic::Cmovcc(c) => {
                let v = self.read_op(&insn.ops[1], OpSize::Dword)?;
                if self.cpu.flags.cond(c) {
                    self.write_op(&insn.ops[0], OpSize::Dword, v)?;
                }
            }
            Mnemonic::Call => {
                cost = self.cost.call;
                let rel = rel_of(insn);
                let target = next.wrapping_add(rel as u32);
                self.push(next)?;
                self.rsb.push(next);
                if let Some(p) = self.profiler.as_mut() {
                    p.record_call(target);
                }
                if let Some(ct) = self.chain_tracer.as_mut() {
                    ct.note_call(target, self.cycles);
                }
                self.cpu.eip = target;
            }
            Mnemonic::CallInd => {
                cost = self.cost.call + self.cost.mem;
                let target = self.read_op(&insn.ops[0], OpSize::Dword)?;
                self.push(next)?;
                self.rsb.push(next);
                if let Some(p) = self.profiler.as_mut() {
                    p.record_call(target);
                }
                if let Some(ct) = self.chain_tracer.as_mut() {
                    ct.note_call(target, self.cycles);
                }
                self.cpu.eip = target;
            }
            Mnemonic::Ret => {
                let target = self.pop()?;
                if let Some(Operand::Imm(n)) = insn.ops.first() {
                    let esp = self.cpu.esp();
                    self.cpu.set_esp(esp.wrapping_add(*n as u32));
                }
                let predicted = self.rsb.pop_and_check(target);
                cost = if predicted {
                    self.cost.ret_predicted
                } else {
                    self.cost.ret_mispredict
                };
                if let Some(ct) = self.chain_tracer.as_mut() {
                    ct.note_ret(target, self.cycles + cost);
                }
                self.cpu.eip = target;
            }
            Mnemonic::Retf => {
                let target = self.pop()?;
                let _cs = self.pop()?; // flat model: code segment discarded
                if let Some(Operand::Imm(n)) = insn.ops.first() {
                    let esp = self.cpu.esp();
                    self.cpu.set_esp(esp.wrapping_add(*n as u32));
                }
                // Far returns are never RSB-predicted.
                cost = self.cost.ret_mispredict;
                if let Some(ct) = self.chain_tracer.as_mut() {
                    ct.note_ret(target, self.cycles + cost);
                }
                self.cpu.eip = target;
            }
            Mnemonic::Int => {
                let vector = insn.ops[0].imm().unwrap_or(0) as u8;
                if vector != 0x80 {
                    return Err(Fault::new(eip, FaultKind::BadSyscall));
                }
                cost = self.cost.syscall;
                match syscall::dispatch(&mut self.cpu, &mut self.mem, &mut self.sys) {
                    Ok(Some(status)) => exited = Some(status),
                    Ok(None) => {}
                    Err(f) => return Err(f),
                }
            }
            Mnemonic::Int3 => return Err(Fault::new(eip, FaultKind::Breakpoint)),
            Mnemonic::Hlt => return Err(Fault::new(eip, FaultKind::Halted)),
        }

        self.cycles += cost;
        if let Some(p) = self.profiler.as_mut() {
            p.record(eip, cost);
        }
        Ok(exited)
    }

    #[inline]
    fn push(&mut self, v: u32) -> Result<(), Fault> {
        let esp = self.cpu.esp().wrapping_sub(4);
        self.mem.write32(esp, v)?;
        self.cpu.set_esp(esp);
        Ok(())
    }

    #[inline]
    fn pop(&mut self) -> Result<u32, Fault> {
        let esp = self.cpu.esp();
        let v = self.mem.read32(esp)?;
        self.cpu.set_esp(esp.wrapping_add(4));
        Ok(v)
    }

    fn ea(&self, m: &Mem) -> u32 {
        let mut a = m.disp as u32;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.cpu.reg(b));
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.cpu.reg(i).wrapping_mul(s as u32));
        }
        a
    }

    fn read_op(&self, op: &Operand, size: OpSize) -> Result<u32, Fault> {
        match op {
            Operand::Reg(Reg::R32(r)) => Ok(self.cpu.reg(*r)),
            Operand::Reg(Reg::R8(r)) => Ok(self.cpu.reg8(*r) as u32),
            Operand::Imm(v) => Ok(*v as u32),
            Operand::Mem(m) => {
                let ea = self.ea(m);
                match size {
                    OpSize::Dword => self.mem.read32(ea),
                    OpSize::Byte => Ok(self.mem.read8(ea)? as u32),
                }
            }
            Operand::Rel(_) => unreachable!("relative operands are branch-only"),
        }
    }

    fn write_op(&mut self, op: &Operand, size: OpSize, v: u32) -> Result<(), Fault> {
        match op {
            Operand::Reg(Reg::R32(r)) => {
                self.cpu.set_reg(*r, v);
                Ok(())
            }
            Operand::Reg(Reg::R8(r)) => {
                self.cpu.set_reg8(*r, v as u8);
                Ok(())
            }
            Operand::Mem(m) => {
                let ea = self.ea(m);
                match size {
                    OpSize::Dword => self.mem.write32(ea, v),
                    OpSize::Byte => self.mem.write8(ea, v as u8),
                }
            }
            Operand::Imm(_) | Operand::Rel(_) => {
                unreachable!("immediates are never destinations")
            }
        }
    }

    /// Performs a group-1 ALU operation, setting flags, and returns the
    /// (masked) result.
    fn alu(&mut self, op: AluOp, a: u32, b: u32, size: OpSize) -> u32 {
        let (mask, sign): (u32, u32) = match size {
            OpSize::Dword => (0xffff_ffff, 0x8000_0000),
            OpSize::Byte => (0xff, 0x80),
        };
        let a = a & mask;
        let b = b & mask;
        let cf_in = self.cpu.flags.cf as u32;
        let f = &mut self.cpu.flags;
        let r = match op {
            AluOp::Add => {
                let r = a.wrapping_add(b) & mask;
                f.cf = (a as u64 + b as u64) > mask as u64;
                f.of = ((a ^ r) & (b ^ r) & sign) != 0;
                f.af = ((a ^ b ^ r) & 0x10) != 0;
                r
            }
            AluOp::Adc => {
                let r = a.wrapping_add(b).wrapping_add(cf_in) & mask;
                f.cf = (a as u64 + b as u64 + cf_in as u64) > mask as u64;
                f.of = ((a ^ r) & (b ^ r) & sign) != 0;
                f.af = ((a ^ b ^ r) & 0x10) != 0;
                r
            }
            AluOp::Sub | AluOp::Cmp => {
                let r = a.wrapping_sub(b) & mask;
                f.cf = b > a;
                f.of = ((a ^ b) & (a ^ r) & sign) != 0;
                f.af = ((a ^ b ^ r) & 0x10) != 0;
                r
            }
            AluOp::Sbb => {
                let r = a.wrapping_sub(b).wrapping_sub(cf_in) & mask;
                f.cf = (b as u64 + cf_in as u64) > a as u64;
                f.of = ((a ^ b) & (a ^ r) & sign) != 0;
                f.af = ((a ^ b ^ r) & 0x10) != 0;
                r
            }
            AluOp::And => {
                let r = a & b;
                f.cf = false;
                f.of = false;
                r
            }
            AluOp::Or => {
                let r = a | b;
                f.cf = false;
                f.of = false;
                r
            }
            AluOp::Xor => {
                let r = a ^ b;
                f.cf = false;
                f.of = false;
                r
            }
        };
        f.zf = r == 0;
        f.sf = (r & sign) != 0;
        f.pf = parity(r);
        r
    }

    fn shift(&mut self, op: ShiftOp, a: u32, n: u32, size: OpSize) -> u32 {
        let bits = size.bytes() as u32 * 8;
        let (mask, sign): (u32, u32) = match size {
            OpSize::Dword => (0xffff_ffff, 0x8000_0000),
            OpSize::Byte => (0xff, 0x80),
        };
        let a = a & mask;
        if n == 0 {
            return a;
        }
        let f = &mut self.cpu.flags;
        let r = match op {
            ShiftOp::Shl => {
                let r = if n >= bits { 0 } else { (a << n) & mask };
                f.cf = if n <= bits {
                    (a >> (bits - n)) & 1 != 0
                } else {
                    false
                };
                if n == 1 {
                    f.of = ((r & sign) != 0) != f.cf;
                }
                r
            }
            ShiftOp::Shr => {
                let r = if n >= bits { 0 } else { a >> n };
                f.cf = if n <= bits {
                    (a >> (n - 1)) & 1 != 0
                } else {
                    false
                };
                if n == 1 {
                    f.of = (a & sign) != 0;
                }
                r
            }
            ShiftOp::Sar => {
                let signed = if (a & sign) != 0 {
                    // sign-extend to 32 bits first
                    a | !mask
                } else {
                    a
                } as i32;
                let sh = n.min(bits - 1).min(31);
                let r = ((signed >> sh) as u32) & mask;
                f.cf = ((signed >> (n.min(31) - 1).min(31)) & 1) != 0;
                if n == 1 {
                    f.of = false;
                }
                r
            }
            ShiftOp::Rol => {
                let n = n % bits;
                let r = if n == 0 {
                    a
                } else {
                    ((a << n) | (a >> (bits - n))) & mask
                };
                f.cf = r & 1 != 0;
                if n == 1 {
                    f.of = ((r & sign) != 0) != f.cf;
                }
                return r; // rotates do not touch SZP
            }
            ShiftOp::Ror => {
                let n = n % bits;
                let r = if n == 0 {
                    a
                } else {
                    ((a >> n) | (a << (bits - n))) & mask
                };
                f.cf = (r & sign) != 0;
                if n == 1 {
                    f.of = ((r & sign) != 0) != ((r & (sign >> 1)) != 0);
                }
                return r;
            }
        };
        f.zf = r == 0;
        f.sf = (r & sign) != 0;
        f.pf = parity(r);
        r
    }
}

fn rel_of(insn: &Insn) -> i32 {
    match insn.ops.first() {
        Some(Operand::Rel(r)) => *r,
        _ => unreachable!("relative branch without Rel operand"),
    }
}
