//! An x86-32 virtual machine for executing and attacking Parallax-
//! protected images.
//!
//! The VM is the testbed substitute for the paper's real hardware. It
//! provides:
//!
//! * a faithful interpreter for the instruction subset emitted by the
//!   toolchain (including unaligned gadget sequences);
//! * a **cycle-cost model** with a simulated return-stack buffer, so
//!   ROP chains pay realistic `ret`-mispredict penalties while native
//!   code runs at ALU speed — the asymmetry behind the paper's
//!   slowdown measurements;
//! * a **split instruction/data cache mode** implementing the attack of
//!   Wurster et al., which defeats checksumming-based verification;
//! * deterministic syscalls (`exit`, `read`, `write`, `time`,
//!   `ptrace`, `random`) so experiments are reproducible;
//! * a flat per-function profiler backing the paper's §VII-B
//!   verification-function selection algorithm.

//! ```
//! use parallax_image::Program;
//! use parallax_vm::{Vm, Exit};
//! use parallax_x86::{Asm, Reg32};
//!
//! let mut a = Asm::new();
//! a.mov_ri(Reg32::Eax, 1);  // exit syscall
//! a.mov_ri(Reg32::Ebx, 42); // status
//! a.int(0x80);
//! let mut p = Program::new();
//! p.add_func("main", a.finish().unwrap());
//! p.set_entry("main");
//!
//! let mut vm = Vm::new(&p.link().unwrap());
//! assert_eq!(vm.run(), Exit::Exited(42));
//! assert!(vm.cycles() > 0);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod chaintrace;
pub mod cost;
pub mod cpu;
pub mod error;
pub mod exec;
pub mod mem;
pub mod profile;
pub mod syscall;

pub use block::{BlockStats, BLOCK_CACHE_SLOTS, MAX_BLOCK_INSNS, MAX_FUSED_OPS};
pub use chaintrace::{ChainTracer, Dispatch, Episode};
pub use cost::{CostModel, ReturnStackBuffer, RSB_DEPTH};
pub use cpu::{Cpu, Flags};
pub use error::{Exit, Fault, FaultKind};
pub use exec::{Vm, VmOptions, CALL_SENTINEL};
pub use mem::{Memory, HEAP_SIZE, STACK_SIZE, STACK_TOP};
pub use profile::{FuncProfile, Profiler};
pub use syscall::{SyscallState, PTRACE_TRACEME};
