//! The VM memory model.
//!
//! Memory is three flat regions: text (execute + read, normally not
//! writable — W⊕X), data (the image's initialized data, BSS, and a
//! scratch heap), and the stack. Instruction fetches are serviced from
//! the text region, or — when *split-cache mode* is enabled — from a
//! shadow copy representing the processor's instruction cache. Split
//! mode reproduces the attack of Wurster et al.: an adversary with a
//! kernel patch modifies code as fetched for execution while data reads
//! of the same addresses still observe the original bytes, which
//! defeats every checksumming-based self-verification scheme.

use crate::error::{Fault, FaultKind};

/// Default stack region size.
pub const STACK_SIZE: u32 = 256 * 1024;

/// Top of the stack region (initial `esp`).
pub const STACK_TOP: u32 = 0x0c00_0000;

/// Extra zeroed scratch space appended after BSS, usable as a heap.
pub const HEAP_SIZE: u32 = 1024 * 1024;

/// The VM's memory.
#[derive(Debug, Clone)]
pub struct Memory {
    text: Vec<u8>,
    text_base: u32,
    /// Shadow instruction bytes; `Some` only in split-cache mode.
    icache: Option<Vec<u8>>,
    data: Vec<u8>,
    data_base: u32,
    stack: Vec<u8>,
    stack_base: u32,
    /// When true (default), data writes to the text region fault.
    pub w_xor_x: bool,
    /// Byte ranges of code mutated since the last
    /// [`Memory::take_dirty_code`] drain. Every path that can change
    /// executed bytes records here — `write_icache`, `write_code`, and
    /// data writes landing in text when W⊕X is disabled — so the
    /// execution engine can invalidate exactly the predecoded blocks
    /// that overlap, instead of guessing.
    dirty_code: Vec<(u32, u32)>,
    /// Coalescing log of byte ranges written since the last
    /// [`Memory::restore_from`], recorded by every successful write
    /// path. `None` (the default) disables logging entirely so normal
    /// VMs pay nothing; probe VMs opt in via
    /// [`Memory::enable_write_log`] to make reseeding O(bytes written)
    /// instead of O(memory size).
    write_log: Option<Vec<(u32, u32)>>,
}

impl Memory {
    /// Builds memory from image sections. `bss_size` bytes of zeros and
    /// a scratch heap are appended after the initialized data.
    pub fn new(
        text: Vec<u8>,
        text_base: u32,
        mut data: Vec<u8>,
        data_base: u32,
        bss_size: u32,
    ) -> Memory {
        data.extend(std::iter::repeat_n(0, (bss_size + HEAP_SIZE) as usize));
        Memory {
            text,
            text_base,
            icache: None,
            data,
            data_base,
            stack: vec![0; STACK_SIZE as usize],
            stack_base: STACK_TOP - STACK_SIZE,
            w_xor_x: true,
            dirty_code: Vec::new(),
            write_log: None,
        }
    }

    /// Starts recording written byte ranges for [`Memory::restore_from`].
    /// Consecutive writes to adjacent addresses coalesce into one range,
    /// so the sequential fills and pushes that dominate probe runs cost
    /// one log entry each.
    pub fn enable_write_log(&mut self) {
        if self.write_log.is_none() {
            self.write_log = Some(Vec::new());
        }
    }

    #[inline]
    fn log_write(&mut self, start: u32, end: u32) {
        if let Some(log) = self.write_log.as_mut() {
            match log.last_mut() {
                Some(last) if last.1 == start => last.1 = end,
                _ => log.push((start, end)),
            }
        }
    }

    /// Rolls every logged write back to the bytes in `pristine` — a
    /// clone of this memory taken before any guest writes — and drains
    /// the log. A no-op when logging is disabled. Restored text ranges
    /// are pushed to `dirty_code` so the block cache re-observes the
    /// original bytes; a logged range can span region boundaries only
    /// if regions are address-adjacent, so each range is walked and
    /// clamped at the containing region's end.
    pub fn restore_from(&mut self, pristine: &Memory) {
        self.restore_from_skipping(pristine, &[]);
    }

    /// Number of ranges currently in the coalescing write log (0 when
    /// logging is disabled) — a cursor for [`Memory::write_log_since`].
    pub fn write_log_len(&self) -> usize {
        self.write_log.as_ref().map_or(0, |l| l.len())
    }

    /// The logged write ranges recorded at or after the `mark` cursor
    /// (from a prior [`Memory::write_log_len`]), or `None` when logging
    /// is disabled. Coalescing can only *extend the end* of the last
    /// pre-mark range upward, so a write that lands strictly inside a
    /// region logged before the mark always opens a fresh post-mark
    /// entry and is never hidden from this view.
    pub fn write_log_since(&self, mark: usize) -> Option<&[(u32, u32)]> {
        self.write_log.as_deref().map(|l| &l[mark.min(l.len())..])
    }

    /// [`Memory::restore_from`], except that the parts of logged writes
    /// covered by `skip` ranges (`[start, end)`, non-overlapping) are
    /// left as they are. Probe VMs use this as their reset fast path:
    /// scratch regions that the next probe unconditionally refills are
    /// skipped, so a reset costs only the bytes dirtied *outside* them.
    /// The log is drained in full either way — skipped dirt is simply
    /// abandoned to be overwritten.
    pub fn restore_from_skipping(&mut self, pristine: &Memory, skip: &[(u32, u32)]) {
        let Some(mut log) = self.write_log.take() else {
            return;
        };
        for &(logged_start, logged_end) in &log {
            // Subtract the skip intervals from the logged range and
            // restore each remaining piece.
            let mut piece_start = logged_start;
            while piece_start < logged_end {
                // The skip range covering piece_start, if any; else the
                // next skip range beginning before logged_end.
                let mut piece_end = logged_end;
                let mut covered = false;
                for &(ss, se) in skip {
                    if ss <= piece_start && piece_start < se {
                        covered = true;
                        piece_end = se.min(logged_end);
                        break;
                    }
                    if ss > piece_start && ss < piece_end {
                        piece_end = ss;
                    }
                }
                if !covered {
                    self.restore_range(pristine, piece_start, piece_end);
                }
                piece_start = piece_end;
            }
        }
        log.clear();
        self.write_log = Some(log);
    }

    /// Restores `[range_start, range_end)` from `pristine`, walking and
    /// clamping at region boundaries (a logged range can span regions
    /// only when they are address-adjacent).
    fn restore_range(&mut self, pristine: &Memory, range_start: u32, range_end: u32) {
        let mut start = range_start;
        while start < range_end {
            let stop;
            if start >= self.data_base && start < self.data_end() {
                stop = range_end.min(self.data_end());
                let a = (start - self.data_base) as usize;
                let b = (stop - self.data_base) as usize;
                self.data[a..b].copy_from_slice(&pristine.data[a..b]);
            } else if start >= self.stack_base && start < STACK_TOP {
                stop = range_end.min(STACK_TOP);
                let a = (start - self.stack_base) as usize;
                let b = (stop - self.stack_base) as usize;
                self.stack[a..b].copy_from_slice(&pristine.stack[a..b]);
            } else if start >= self.text_base && start < self.text_end() {
                stop = range_end.min(self.text_end());
                let a = (start - self.text_base) as usize;
                let b = (stop - self.text_base) as usize;
                self.text[a..b].copy_from_slice(&pristine.text[a..b]);
                if let Some(ic) = self.icache.as_mut() {
                    let src = pristine.icache.as_deref().unwrap_or(&pristine.text);
                    ic[a..b].copy_from_slice(&src[a..b]);
                }
                self.dirty_code.push((start, stop));
            } else {
                // Every logged write was bounds-checked, so this is
                // unreachable; bail rather than spin.
                break;
            }
            start = stop;
        }
    }

    /// True if code bytes changed since the last [`Memory::take_dirty_code`].
    #[inline]
    pub fn has_dirty_code(&self) -> bool {
        !self.dirty_code.is_empty()
    }

    /// Drains the accumulated code-write ranges (`[start, end)` pairs).
    pub fn take_dirty_code(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.dirty_code)
    }

    /// Start of the text region.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// End of the text region (exclusive).
    pub fn text_end(&self) -> u32 {
        self.text_base + self.text.len() as u32
    }

    /// Start of the data region.
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// End of the data region (exclusive), including BSS and heap.
    pub fn data_end(&self) -> u32 {
        self.data_base + self.data.len() as u32
    }

    /// Start of the scratch heap (after image data and BSS).
    pub fn heap_base(&self) -> u32 {
        self.data_end() - HEAP_SIZE
    }

    /// Initial stack pointer.
    pub fn initial_esp(&self) -> u32 {
        STACK_TOP - 64 // leave headroom for the harness
    }

    /// True if `vaddr` lies in the text region.
    #[inline]
    pub fn in_text(&self, vaddr: u32) -> bool {
        vaddr >= self.text_base && vaddr < self.text_end()
    }

    /// Enables split instruction/data views of the text region
    /// (the Wurster et al. attack primitive). The instruction view
    /// starts as a copy of the current text bytes.
    pub fn enable_split_cache(&mut self) {
        if self.icache.is_none() {
            self.icache = Some(self.text.clone());
        }
    }

    /// True if split-cache mode is active.
    pub fn split_cache_enabled(&self) -> bool {
        self.icache.is_some()
    }

    /// Patches the *instruction view* only. Requires split-cache mode.
    /// Data reads of the same addresses keep returning original bytes.
    pub fn write_icache(&mut self, vaddr: u32, bytes: &[u8]) -> Result<(), Fault> {
        let base = self.text_base;
        let end = self.text_end();
        let icache = self.icache.as_mut().expect("split-cache mode not enabled");
        if vaddr < base || vaddr + bytes.len() as u32 > end {
            return Err(Fault::new(vaddr, FaultKind::OutOfBounds));
        }
        let off = (vaddr - base) as usize;
        icache[off..off + bytes.len()].copy_from_slice(bytes);
        self.dirty_code.push((vaddr, vaddr + bytes.len() as u32));
        self.log_write(vaddr, vaddr + bytes.len() as u32);
        Ok(())
    }

    /// Patches code in both views, as a debugger with `mprotect`
    /// powers would (the classic dynamic-tampering attack).
    pub fn write_code(&mut self, vaddr: u32, bytes: &[u8]) -> Result<(), Fault> {
        if !self.in_text(vaddr) || vaddr + bytes.len() as u32 > self.text_end() {
            return Err(Fault::new(vaddr, FaultKind::OutOfBounds));
        }
        let off = (vaddr - self.text_base) as usize;
        self.text[off..off + bytes.len()].copy_from_slice(bytes);
        if let Some(ic) = self.icache.as_mut() {
            ic[off..off + bytes.len()].copy_from_slice(bytes);
        }
        self.dirty_code.push((vaddr, vaddr + bytes.len() as u32));
        self.log_write(vaddr, vaddr + bytes.len() as u32);
        Ok(())
    }

    /// Fetches up to 16 instruction bytes at `vaddr` for decoding.
    /// Served from the instruction view in split-cache mode.
    #[inline]
    pub fn fetch(&self, vaddr: u32) -> Result<&[u8], Fault> {
        if !self.in_text(vaddr) {
            return Err(Fault::new(vaddr, FaultKind::ExecOutsideText));
        }
        let off = (vaddr - self.text_base) as usize;
        let src = self.icache.as_deref().unwrap_or(&self.text);
        let end = (off + 16).min(src.len());
        Ok(&src[off..end])
    }

    /// Resolves `vaddr..vaddr+len` to a region slice and offset. The
    /// regions are disjoint, so probe order is purely a performance
    /// choice: data first (stack pivots and program data dominate),
    /// then stack, then text (only checksum reads land there).
    #[inline]
    fn region(&self, vaddr: u32, len: u32) -> Result<(&[u8], usize), Fault> {
        let end = vaddr as u64 + len as u64;
        if vaddr >= self.data_base && end <= self.data_end() as u64 {
            Ok((&self.data, (vaddr - self.data_base) as usize))
        } else if vaddr >= self.stack_base && end <= STACK_TOP as u64 {
            Ok((&self.stack, (vaddr - self.stack_base) as usize))
        } else if vaddr >= self.text_base && end <= self.text_end() as u64 {
            Ok((&self.text, (vaddr - self.text_base) as usize))
        } else {
            Err(Fault::new(vaddr, FaultKind::OutOfBounds))
        }
    }

    /// Reads an 8-bit value (data view).
    #[inline]
    pub fn read8(&self, vaddr: u32) -> Result<u8, Fault> {
        let (region, off) = self.region(vaddr, 1)?;
        Ok(region[off])
    }

    /// Reads a 32-bit little-endian value (data view).
    #[inline]
    pub fn read32(&self, vaddr: u32) -> Result<u32, Fault> {
        let (region, off) = self.region(vaddr, 4)?;
        Ok(u32::from_le_bytes(region[off..off + 4].try_into().unwrap()))
    }

    /// Reads two consecutive 32-bit values with a single region
    /// resolve — the `pop r32; ret` hot pair. Fails if the 8 bytes do
    /// not fit one region; the caller falls back to two plain reads
    /// (which also handle the adjacent-regions edge case exactly).
    #[inline]
    pub fn read32_pair(&self, vaddr: u32) -> Result<(u32, u32), Fault> {
        let (region, off) = self.region(vaddr, 8)?;
        let lo = u32::from_le_bytes(region[off..off + 4].try_into().unwrap());
        let hi = u32::from_le_bytes(region[off + 4..off + 8].try_into().unwrap());
        Ok((lo, hi))
    }

    /// Reads `len` bytes (data view).
    pub fn read_bytes(&self, vaddr: u32, len: u32) -> Result<&[u8], Fault> {
        let (region, off) = self.region(vaddr, len)?;
        Ok(&region[off..off + len as usize])
    }

    #[inline]
    fn region_mut(&mut self, vaddr: u32, len: u32) -> Result<(&mut [u8], usize), Fault> {
        let end = vaddr as u64 + len as u64;
        if vaddr >= self.data_base && end <= self.data_end() as u64 {
            let off = (vaddr - self.data_base) as usize;
            self.log_write(vaddr, end as u32);
            Ok((&mut self.data, off))
        } else if vaddr >= self.stack_base && end <= STACK_TOP as u64 {
            let off = (vaddr - self.stack_base) as usize;
            self.log_write(vaddr, end as u32);
            Ok((&mut self.stack, off))
        } else if vaddr >= self.text_base && end <= self.text_end() as u64 {
            if self.w_xor_x {
                return Err(Fault::new(vaddr, FaultKind::WriteToText));
            }
            self.dirty_code.push((vaddr, end as u32));
            self.log_write(vaddr, end as u32);
            Ok((&mut self.text, (vaddr - self.text_base) as usize))
        } else {
            Err(Fault::new(vaddr, FaultKind::OutOfBounds))
        }
    }

    /// Writes an 8-bit value.
    #[inline]
    pub fn write8(&mut self, vaddr: u32, v: u8) -> Result<(), Fault> {
        let (region, off) = self.region_mut(vaddr, 1)?;
        region[off] = v;
        Ok(())
    }

    /// Writes a 32-bit little-endian value.
    #[inline]
    pub fn write32(&mut self, vaddr: u32, v: u32) -> Result<(), Fault> {
        let (region, off) = self.region_mut(vaddr, 4)?;
        region[off..off + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a byte slice.
    pub fn write_bytes(&mut self, vaddr: u32, bytes: &[u8]) -> Result<(), Fault> {
        let (region, off) = self.region_mut(vaddr, bytes.len() as u32)?;
        region[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(vec![0x90, 0xc3], 0x1000, vec![1, 2, 3, 4], 0x2000, 8)
    }

    #[test]
    fn read_write_data_and_stack() {
        let mut m = mem();
        assert_eq!(m.read32(0x2000).unwrap(), 0x04030201);
        m.write32(0x2004, 0xdeadbeef).unwrap(); // BSS
        assert_eq!(m.read32(0x2004).unwrap(), 0xdeadbeef);
        let sp = m.initial_esp();
        m.write32(sp - 4, 42).unwrap();
        assert_eq!(m.read32(sp - 4).unwrap(), 42);
    }

    #[test]
    fn w_xor_x_enforced() {
        let mut m = mem();
        let err = m.write8(0x1000, 0xcc).unwrap_err();
        assert_eq!(err.kind, FaultKind::WriteToText);
        m.w_xor_x = false;
        m.write8(0x1000, 0xcc).unwrap();
        assert_eq!(m.read8(0x1000).unwrap(), 0xcc);
    }

    #[test]
    fn fetch_requires_text() {
        let m = mem();
        assert!(m.fetch(0x1000).is_ok());
        let err = m.fetch(0x2000).unwrap_err();
        assert_eq!(err.kind, FaultKind::ExecOutsideText);
    }

    #[test]
    fn split_cache_diverges_views() {
        let mut m = mem();
        m.enable_split_cache();
        m.write_icache(0x1000, &[0xcc]).unwrap();
        // Executed bytes see the patch...
        assert_eq!(m.fetch(0x1000).unwrap()[0], 0xcc);
        // ...but data reads (as used by checksumming) see the original.
        assert_eq!(m.read8(0x1000).unwrap(), 0x90);
    }

    #[test]
    fn write_code_hits_both_views() {
        let mut m = mem();
        m.enable_split_cache();
        m.write_code(0x1001, &[0x90]).unwrap();
        assert_eq!(m.fetch(0x1001).unwrap()[0], 0x90);
        assert_eq!(m.read8(0x1001).unwrap(), 0x90);
    }

    #[test]
    fn out_of_bounds_faults() {
        let m = mem();
        assert_eq!(m.read8(0x0).unwrap_err().kind, FaultKind::OutOfBounds);
        assert_eq!(
            m.read32(m.data_end() - 2).unwrap_err().kind,
            FaultKind::OutOfBounds
        );
    }

    #[test]
    fn write_log_restore_rolls_back_all_regions() {
        let mut m = mem();
        m.w_xor_x = false;
        m.enable_split_cache();
        m.enable_write_log();
        let pristine = m.clone();
        m.write32(0x2004, 0xdeadbeef).unwrap();
        let sp = m.initial_esp();
        m.write32(sp - 4, 42).unwrap();
        m.write8(0x1000, 0xcc).unwrap();
        m.write_icache(0x1001, &[0xcc]).unwrap();
        m.take_dirty_code();
        m.restore_from(&pristine);
        assert_eq!(m.read32(0x2004).unwrap(), 0);
        assert_eq!(m.read32(sp - 4).unwrap(), 0);
        assert_eq!(m.read8(0x1000).unwrap(), 0x90);
        assert_eq!(m.fetch(0x1001).unwrap()[0], 0xc3);
        // Restoring text must re-dirty it so block caches re-observe.
        assert!(m.has_dirty_code());
        // The log drained; a second restore is a no-op that stays enabled.
        m.restore_from(&pristine);
        m.write8(0x2000, 9).unwrap();
        m.restore_from(&pristine);
        assert_eq!(m.read8(0x2000).unwrap(), 1);
    }

    #[test]
    fn write_log_coalesces_adjacent_writes() {
        let mut m = mem();
        m.enable_write_log();
        for i in 0..64u32 {
            m.write32(0x2000 + 4 * i, i).unwrap();
        }
        assert_eq!(m.write_log.as_ref().unwrap().len(), 1);
        assert_eq!(m.write_log.as_ref().unwrap()[0], (0x2000, 0x2100));
    }

    #[test]
    fn restore_without_log_is_noop() {
        let mut m = mem();
        let pristine = m.clone();
        m.write8(0x2000, 7).unwrap();
        m.restore_from(&pristine);
        assert_eq!(m.read8(0x2000).unwrap(), 7);
    }

    #[test]
    fn heap_is_zeroed_scratch() {
        let m = mem();
        let hb = m.heap_base();
        assert_eq!(m.read32(hb).unwrap(), 0);
        assert!(hb >= 0x2000 + 4 + 8);
    }
}

#[cfg(test)]
mod overflow_tests {
    use super::*;

    /// Regression: addresses near u32::MAX must fault, not wrap past
    /// the bounds check and panic (found by the tamper-sweep fuzzer).
    #[test]
    fn near_max_addresses_fault_cleanly() {
        let m = Memory::new(vec![0x90; 16], 0x1000, vec![0; 16], 0x2000, 0);
        for addr in [u32::MAX, u32::MAX - 1, u32::MAX - 3, 0xffff_fffe] {
            assert!(m.read32(addr).is_err(), "{addr:#x}");
            assert!(m.read8(addr).is_err() || addr > u32::MAX - 1, "{addr:#x}");
            assert!(m.read_bytes(addr, 8).is_err(), "{addr:#x}");
        }
        let mut m = m;
        assert!(m.write32(u32::MAX - 2, 1).is_err());
    }
}
