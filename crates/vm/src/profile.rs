//! Flat per-function cycle and call-count attribution.
//!
//! The verification-function selection algorithm of the paper (§VII-B)
//! needs two runtime facts per function: how often it is called, and
//! what fraction of total execution time it accounts for. The profiler
//! attributes each retired instruction's cycles to the function whose
//! range contains `eip` (flat profile, no call-graph accumulation).

use std::collections::HashMap;

/// Per-function profile counters.
#[derive(Debug, Clone, Default)]
pub struct FuncProfile {
    /// Cycles retired while `eip` was inside the function.
    pub cycles: u64,
    /// Number of `call` instructions that targeted the function's
    /// entry point.
    pub calls: u64,
}

/// A flat execution profiler.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    /// Sorted (start, end, name-index) ranges.
    ranges: Vec<(u32, u32, usize)>,
    names: Vec<String>,
    entry_of: HashMap<u32, usize>,
    stats: Vec<FuncProfile>,
    /// Cycles attributed to no known function.
    pub other_cycles: u64,
    /// Total cycles observed.
    pub total_cycles: u64,
    /// Cache of the last range hit (instruction streams are local),
    /// stored as a *position* into the sorted `ranges` vec so the
    /// hot-path re-check is a single O(1) indexed comparison.
    last: Option<usize>,
}

impl Profiler {
    /// Builds a profiler from `(name, start_vaddr, size)` triples.
    pub fn new(funcs: impl IntoIterator<Item = (String, u32, u32)>) -> Profiler {
        let mut p = Profiler::default();
        for (name, start, size) in funcs {
            let idx = p.names.len();
            p.names.push(name);
            p.ranges.push((start, start + size.max(1), idx));
            p.entry_of.insert(start, idx);
            p.stats.push(FuncProfile::default());
        }
        p.ranges.sort_unstable();
        p
    }

    fn lookup(&mut self, eip: u32) -> Option<usize> {
        if let Some(pos) = self.last {
            let (s, e, idx) = self.ranges[pos];
            if eip >= s && eip < e {
                return Some(idx);
            }
        }
        // Binary search over the start-sorted ranges: the candidate is
        // the last range starting at or below eip.
        let pos = self.ranges.partition_point(|&(s, _, _)| s <= eip);
        if pos > 0 {
            let (s, e, idx) = self.ranges[pos - 1];
            if eip >= s && eip < e {
                self.last = Some(pos - 1);
                return Some(idx);
            }
        }
        None
    }

    /// Attributes `cycles` to the function containing `eip`.
    pub fn record(&mut self, eip: u32, cycles: u64) {
        self.total_cycles += cycles;
        match self.lookup(eip) {
            Some(idx) => self.stats[idx].cycles += cycles,
            None => self.other_cycles += cycles,
        }
    }

    /// Records a call whose target is `entry`.
    pub fn record_call(&mut self, entry: u32) {
        if let Some(&idx) = self.entry_of.get(&entry) {
            self.stats[idx].calls += 1;
        }
    }

    /// Profile for a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncProfile> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(&self.stats[idx])
    }

    /// Fraction of total cycles spent in `name` (0.0 if never seen).
    pub fn fraction(&self, name: &str) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        match self.func(name) {
            Some(f) => f.cycles as f64 / self.total_cycles as f64,
            None => 0.0,
        }
    }

    /// Iterates `(name, profile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FuncProfile)> {
        self.names.iter().map(String::as_str).zip(self.stats.iter())
    }

    /// The profile ranked by cycle share, hottest first, dropping
    /// functions below `min_fraction` of total cycles. Each row is
    /// `(name, fraction, calls)` with `fraction` in `[0, 1]`.
    pub fn hotspots(&self, min_fraction: f64) -> Vec<(String, f64, u64)> {
        let mut rows: Vec<(String, f64, u64)> = self
            .iter()
            .map(|(n, fp)| (n.to_owned(), self.fraction(n), fp.calls))
            .filter(|&(_, f, _)| f > min_fraction)
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution() {
        let mut p = Profiler::new(vec![
            ("a".to_owned(), 0x1000, 0x10),
            ("b".to_owned(), 0x1010, 0x10),
        ]);
        p.record(0x1000, 5);
        p.record(0x100f, 5);
        p.record(0x1010, 7);
        p.record(0x2000, 3);
        assert_eq!(p.func("a").unwrap().cycles, 10);
        assert_eq!(p.func("b").unwrap().cycles, 7);
        assert_eq!(p.other_cycles, 3);
        assert_eq!(p.total_cycles, 20);
        assert!((p.fraction("a") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hotspots_rank_by_cycle_share() {
        let mut p = Profiler::new(vec![
            ("cold".to_owned(), 0x1000, 0x10),
            ("hot".to_owned(), 0x1010, 0x10),
        ]);
        p.record(0x1000, 1);
        p.record(0x1010, 99);
        let rows = p.hotspots(0.005);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "hot");
        assert!((rows[0].1 - 0.99).abs() < 1e-9);
        assert_eq!(p.hotspots(0.5).len(), 1, "cold falls under the floor");
    }

    #[test]
    fn adjacent_ranges_attribute_exactly() {
        // b starts exactly where a ends: the shared boundary address
        // belongs to b, and bouncing between the two (defeating the
        // one-entry cache every time) still attributes correctly.
        let mut p = Profiler::new(vec![
            ("a".to_owned(), 0x1000, 0x10),
            ("b".to_owned(), 0x1010, 0x10),
        ]);
        for _ in 0..3 {
            p.record(0x100f, 1); // last byte of a
            p.record(0x1010, 1); // first byte of b
        }
        assert_eq!(p.func("a").unwrap().cycles, 3);
        assert_eq!(p.func("b").unwrap().cycles, 3);
        assert_eq!(p.other_cycles, 0);
    }

    #[test]
    fn zero_size_function_occupies_one_byte() {
        // A zero-size symbol gets a 1-byte range (size.max(1)): its
        // entry address attributes to it, the next byte does not. The
        // ranges here are sorted differently from insertion order, so
        // this also exercises the position-based cache after sort.
        let mut p = Profiler::new(vec![
            ("after".to_owned(), 0x2001, 0x10),
            ("empty".to_owned(), 0x2000, 0),
        ]);
        p.record(0x2000, 5);
        p.record(0x2000, 2); // cache hit path
        p.record(0x2001, 7); // adjacent range, cache miss path
        p.record(0x1fff, 1); // below every range
        assert_eq!(p.func("empty").unwrap().cycles, 7);
        assert_eq!(p.func("after").unwrap().cycles, 7);
        assert_eq!(p.other_cycles, 1);
        assert_eq!(p.total_cycles, 15);
    }

    #[test]
    fn call_counting() {
        let mut p = Profiler::new(vec![("f".to_owned(), 0x1000, 4)]);
        p.record_call(0x1000);
        p.record_call(0x1000);
        p.record_call(0x1002); // mid-function target is not an entry
        assert_eq!(p.func("f").unwrap().calls, 2);
    }
}
