//! The system-call layer (`int 0x80`, Linux-flavoured numbering).
//!
//! The guest ABI: syscall number in `eax`, arguments in `ebx`, `ecx`,
//! `edx`, `esi`; result in `eax` (negative for errors).
//!
//! | # | name     | arguments                      | semantics |
//! |---|----------|--------------------------------|-----------|
//! | 1 | `exit`   | ebx = status                   | terminate |
//! | 3 | `read`   | ebx = fd, ecx = buf, edx = len | consume VM input buffer |
//! | 4 | `write`  | ebx = fd, ecx = buf, edx = len | append to VM output buffer |
//! | 13| `time`   | —                              | deterministic monotone counter |
//! | 26| `ptrace` | ebx = request                  | request 0 = TRACEME, fails if a debugger is attached |
//! | 42| `random` | —                              | deterministic xorshift64* stream |
//!
//! `ptrace` is the paper's running example of *non-deterministic* code
//! that oblivious hashing cannot protect: its result depends on the
//! runtime environment (whether a debugger is attached), not on
//! program-visible state.

use std::collections::VecDeque;

use parallax_x86::Reg32;

use crate::cpu::Cpu;
use crate::error::{Fault, FaultKind};
use crate::mem::Memory;

/// `ptrace` request: attach-to-self (PTRACE_TRACEME).
pub const PTRACE_TRACEME: u32 = 0;

/// Host-side state backing the syscall layer.
#[derive(Debug, Clone)]
pub struct SyscallState {
    /// Bytes available to the `read` syscall.
    pub input: VecDeque<u8>,
    /// Bytes collected from the `write` syscall.
    pub output: Vec<u8>,
    /// A debugger is attached to the process.
    pub debugger_attached: bool,
    /// The process has already requested tracing.
    pub traced: bool,
    rng: u64,
    time: u32,
}

impl SyscallState {
    /// Creates syscall state with the given RNG seed.
    pub fn new(seed: u64) -> SyscallState {
        SyscallState {
            input: VecDeque::new(),
            output: Vec::new(),
            debugger_attached: false,
            traced: false,
            rng: seed | 1,
            time: 0,
        }
    }

    fn next_random(&mut self) -> u32 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as u32
    }
}

/// Dispatches the syscall selected by `eax`. Returns `Ok(Some(status))`
/// for `exit`.
pub fn dispatch(
    cpu: &mut Cpu,
    mem: &mut Memory,
    sys: &mut SyscallState,
) -> Result<Option<i32>, Fault> {
    let nr = cpu.reg(Reg32::Eax);
    let a1 = cpu.reg(Reg32::Ebx);
    let a2 = cpu.reg(Reg32::Ecx);
    let a3 = cpu.reg(Reg32::Edx);
    match nr {
        1 => return Ok(Some(a1 as i32)),
        3 => {
            // read(fd, buf, len)
            let mut n = 0u32;
            while n < a3 {
                match sys.input.pop_front() {
                    Some(b) => {
                        mem.write8(a2 + n, b)?;
                        n += 1;
                    }
                    None => break,
                }
            }
            cpu.set_reg(Reg32::Eax, n);
        }
        4 => {
            // write(fd, buf, len)
            let bytes = mem.read_bytes(a2, a3)?;
            sys.output.extend_from_slice(bytes);
            cpu.set_reg(Reg32::Eax, a3);
        }
        13 => {
            sys.time += 1;
            cpu.set_reg(Reg32::Eax, sys.time);
        }
        26 => {
            // ptrace(request, ...)
            let result = if a1 == PTRACE_TRACEME {
                if sys.debugger_attached || sys.traced {
                    -1i32
                } else {
                    sys.traced = true;
                    0
                }
            } else {
                -1
            };
            cpu.set_reg(Reg32::Eax, result as u32);
        }
        42 => {
            let v = sys.next_random();
            cpu.set_reg(Reg32::Eax, v);
        }
        _ => return Err(Fault::new(cpu.eip, FaultKind::BadSyscall)),
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Cpu, Memory, SyscallState) {
        let cpu = Cpu::default();
        let mem = Memory::new(vec![0x90], 0x1000, vec![0; 64], 0x2000, 0);
        let sys = SyscallState::new(7);
        (cpu, mem, sys)
    }

    #[test]
    fn exit_returns_status() {
        let (mut cpu, mut mem, mut sys) = setup();
        cpu.set_reg(Reg32::Eax, 1);
        cpu.set_reg(Reg32::Ebx, 3);
        assert_eq!(dispatch(&mut cpu, &mut mem, &mut sys).unwrap(), Some(3));
    }

    #[test]
    fn write_captures_output() {
        let (mut cpu, mut mem, mut sys) = setup();
        mem.write_bytes(0x2000, b"hi").unwrap();
        cpu.set_reg(Reg32::Eax, 4);
        cpu.set_reg(Reg32::Ebx, 1);
        cpu.set_reg(Reg32::Ecx, 0x2000);
        cpu.set_reg(Reg32::Edx, 2);
        dispatch(&mut cpu, &mut mem, &mut sys).unwrap();
        assert_eq!(sys.output, b"hi");
        assert_eq!(cpu.reg(Reg32::Eax), 2);
    }

    #[test]
    fn read_consumes_input() {
        let (mut cpu, mut mem, mut sys) = setup();
        sys.input = b"abc".to_vec().into();
        cpu.set_reg(Reg32::Eax, 3);
        cpu.set_reg(Reg32::Ecx, 0x2000);
        cpu.set_reg(Reg32::Edx, 8);
        dispatch(&mut cpu, &mut mem, &mut sys).unwrap();
        assert_eq!(cpu.reg(Reg32::Eax), 3);
        assert_eq!(mem.read_bytes(0x2000, 3).unwrap(), b"abc");
    }

    #[test]
    fn ptrace_detects_debugger() {
        let (mut cpu, mut mem, mut sys) = setup();
        // No debugger: TRACEME succeeds once.
        cpu.set_reg(Reg32::Eax, 26);
        cpu.set_reg(Reg32::Ebx, PTRACE_TRACEME);
        dispatch(&mut cpu, &mut mem, &mut sys).unwrap();
        assert_eq!(cpu.reg(Reg32::Eax), 0);
        // Second TRACEME fails (already traced).
        cpu.set_reg(Reg32::Eax, 26);
        dispatch(&mut cpu, &mut mem, &mut sys).unwrap();
        assert_eq!(cpu.reg(Reg32::Eax) as i32, -1);
        // With a debugger attached it fails immediately.
        let (mut cpu2, mut mem2, mut sys2) = setup();
        sys2.debugger_attached = true;
        cpu2.set_reg(Reg32::Eax, 26);
        cpu2.set_reg(Reg32::Ebx, PTRACE_TRACEME);
        dispatch(&mut cpu2, &mut mem2, &mut sys2).unwrap();
        assert_eq!(cpu2.reg(Reg32::Eax) as i32, -1);
    }

    #[test]
    fn random_is_deterministic() {
        let (mut cpu, mut mem, mut sys) = setup();
        cpu.set_reg(Reg32::Eax, 42);
        dispatch(&mut cpu, &mut mem, &mut sys).unwrap();
        let v1 = cpu.reg(Reg32::Eax);
        let mut sys2 = SyscallState::new(7);
        cpu.set_reg(Reg32::Eax, 42);
        dispatch(&mut cpu, &mut mem, &mut sys2).unwrap();
        assert_eq!(cpu.reg(Reg32::Eax), v1);
    }

    #[test]
    fn unknown_syscall_faults() {
        let (mut cpu, mut mem, mut sys) = setup();
        cpu.set_reg(Reg32::Eax, 999);
        assert!(dispatch(&mut cpu, &mut mem, &mut sys).is_err());
    }
}
