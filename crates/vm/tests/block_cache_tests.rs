//! Block-translation cache behaviour: tamper visibility, invalidation
//! granularity, and block-path vs reference-path equivalence.

use parallax_image::Program;
use parallax_vm::{Exit, FaultKind, Vm};
use parallax_x86::{AluOp, Asm, Assembled, Mem, Reg32};

fn link(funcs: Vec<(&str, Assembled)>, entry: &str) -> parallax_image::LinkedImage {
    let mut p = Program::new();
    for (name, asm) in funcs {
        p.add_func(name, asm);
    }
    p.set_entry(entry);
    p.link().expect("links")
}

fn emit_exit(a: &mut Asm, status: i32) {
    a.mov_ri(Reg32::Eax, 1);
    a.mov_ri(Reg32::Ebx, status);
    a.int(0x80);
}

fn func_vaddr(img: &parallax_image::LinkedImage, name: &str) -> u32 {
    img.funcs().find(|s| s.name == name).expect("func").vaddr
}

/// Acceptance criterion: a byte-patch landing inside a cached block's
/// span is observed on the next block entry, not served stale.
#[test]
fn code_patch_observed_on_next_block_entry() {
    // f: mov eax, 5; ret   (b8 05 00 00 00 c3)
    let mut f = Asm::new();
    f.mov_ri(Reg32::Eax, 5);
    f.ret();
    let mut main = Asm::new();
    emit_exit(&mut main, 0);
    let img = link(
        vec![("main", main.finish().unwrap()), ("f", f.finish().unwrap())],
        "main",
    );
    let fv = func_vaddr(&img, "f");

    let mut vm = Vm::new(&img);
    assert_eq!(vm.call_function(fv, &[]), Ok(5));
    let cached = vm.block_stats();
    assert!(cached.misses >= 1, "first call predecodes f's block");

    // Patch the mov's imm32 in place; the block spanning fv is stale now.
    vm.write_code(fv + 1, &7u32.to_le_bytes()).unwrap();
    assert_eq!(vm.call_function(fv, &[]), Ok(7));
    let after = vm.block_stats();
    assert!(
        after.invalidated > cached.invalidated,
        "code write must evict the overlapping block ({after:?} vs {cached:?})"
    );
}

#[test]
fn icache_patch_invalidates_cached_block() {
    // With the split cache on, icache writes redirect fetches without
    // touching the data view — the block cache must still notice.
    let mut f = Asm::new();
    f.mov_ri(Reg32::Eax, 5);
    f.ret();
    let mut main = Asm::new();
    emit_exit(&mut main, 0);
    let img = link(
        vec![("main", main.finish().unwrap()), ("f", f.finish().unwrap())],
        "main",
    );
    let fv = func_vaddr(&img, "f");

    let mut vm = Vm::new(&img);
    vm.enable_split_cache();
    assert_eq!(vm.call_function(fv, &[]), Ok(5));
    vm.write_icache(fv + 1, &9u32.to_le_bytes()).unwrap();
    assert_eq!(vm.call_function(fv, &[]), Ok(9));
    // The data view is untouched: a static read still sees 5.
    assert_eq!(vm.mem().read32(fv + 1).unwrap(), 5);
}

#[test]
fn int3_patch_faults_on_reentry() {
    let mut f = Asm::new();
    f.mov_ri(Reg32::Eax, 5);
    f.ret();
    let mut main = Asm::new();
    emit_exit(&mut main, 0);
    let img = link(
        vec![("main", main.finish().unwrap()), ("f", f.finish().unwrap())],
        "main",
    );
    let fv = func_vaddr(&img, "f");

    let mut vm = Vm::new(&img);
    assert_eq!(vm.call_function(fv, &[]), Ok(5));
    vm.write_code(fv, &[0xcc]).unwrap();
    match vm.call_function(fv, &[]) {
        Err(Exit::Fault(fault)) => assert_eq!(fault.kind, FaultKind::Breakpoint),
        other => panic!("expected breakpoint fault, got {other:?}"),
    }
}

/// Satellite: data-only stores must not evict any predecoded block.
#[test]
fn data_writes_do_not_invalidate_blocks() {
    // ecx = &buf; loop 100: [ecx] = eax; inc eax; dec edx; jnz
    let mut a = Asm::new();
    a.mov_ri(Reg32::Eax, 0);
    a.mov_ri(Reg32::Edx, 100);
    a.mov_ri_sym(Reg32::Ecx, "buf", 0);
    let top = a.here();
    a.mov_mr(Mem::base(Reg32::Ecx), Reg32::Eax);
    a.inc_r(Reg32::Eax);
    a.dec_r(Reg32::Edx);
    a.jcc(parallax_x86::Cond::Ne, top);
    a.mov_ri(Reg32::Ebx, 0);
    a.mov_ri(Reg32::Eax, 1);
    a.int(0x80);
    let mut p = Program::new();
    p.add_func("main", a.finish().unwrap());
    p.add_bss("buf", 8);
    p.set_entry("main");
    let img = p.link().unwrap();

    let mut vm = Vm::new(&img);
    assert_eq!(vm.run(), Exit::Exited(0));
    let stats = vm.block_stats();
    assert_eq!(
        stats.invalidated, 0,
        "data stores evicted blocks: {stats:?}"
    );
    assert!(stats.hits > 0, "loop re-entries should hit the cache");
}

/// Builds a ROP-chain image whose gadgets interleave data stores with
/// the arithmetic: g_store writes eax to [edi] between every add.
fn chain_with_data_writes() -> parallax_image::LinkedImage {
    let mut g_pop = Asm::new();
    g_pop.pop_r(Reg32::Eax);
    g_pop.ret();
    let mut g_add = Asm::new();
    g_add.alu_rr(AluOp::Add, Reg32::Esi, Reg32::Eax);
    g_add.ret();
    let mut g_store = Asm::new();
    g_store.mov_mr(Mem::base(Reg32::Edi), Reg32::Eax);
    g_store.ret();
    let mut g_pop_esp = Asm::new();
    g_pop_esp.pop_r(Reg32::Esp);
    g_pop_esp.ret();

    let mut main = Asm::new();
    main.mov_ri(Reg32::Esi, 0);
    main.mov_ri_sym(Reg32::Edi, "scratch", 0);
    main.push_i_sym("resume_slot", 0);
    main.pop_r(Reg32::Eax);
    main.mov_ri_sym(Reg32::Ecx, "main.back", 0);
    main.mov_mr(Mem::base(Reg32::Eax), Reg32::Ecx);
    main.mov_ri_sym(Reg32::Esp, "chain", 0);
    main.ret();
    main.marker("back");
    main.mov_rr(Reg32::Ebx, Reg32::Esi);
    main.mov_ri(Reg32::Eax, 1);
    main.int(0x80);

    let mut p = Program::new();
    p.add_func("main", main.finish().unwrap());
    p.add_func("g_pop_eax", g_pop.finish().unwrap());
    p.add_func("g_add", g_add.finish().unwrap());
    p.add_func("g_store", g_store.finish().unwrap());
    p.add_func("g_pop_esp", g_pop_esp.finish().unwrap());

    use parallax_x86::{RelocKind, SymReloc};
    let mut chain = Vec::new();
    let mut relocs = Vec::new();
    let mut slot = |chain: &mut Vec<u8>, sym: Option<&str>, val: u32| {
        if let Some(s) = sym {
            relocs.push(SymReloc {
                offset: chain.len(),
                symbol: s.to_owned(),
                kind: RelocKind::Abs32,
                addend: val as i32,
            });
            chain.extend_from_slice(&[0; 4]);
        } else {
            chain.extend_from_slice(&val.to_le_bytes());
        }
    };
    for i in 0..32u32 {
        slot(&mut chain, Some("g_pop_eax"), 0);
        slot(&mut chain, None, i + 1);
        slot(&mut chain, Some("g_store"), 0); // data write mid-chain
        slot(&mut chain, Some("g_add"), 0);
    }
    slot(&mut chain, Some("g_pop_esp"), 0);
    slot(&mut chain, Some("resume_slot"), 0);
    p.add_data_with_relocs("chain", chain, relocs);
    p.add_bss("resume_slot", 8);
    p.add_bss("scratch", 8);
    p.set_entry("main");
    p.link().unwrap()
}

/// Satellite regression: interleaved data writes during chain execution
/// must not thrash the block cache (the pre-change engine flushed its
/// whole decode cache on *any* memory write through write_code paths;
/// plain data stores never should).
#[test]
fn interleaved_data_writes_during_chain_do_not_invalidate() {
    let img = chain_with_data_writes();
    let expected: u32 = (1..=32).sum();

    let mut vm = Vm::new(&img);
    assert_eq!(vm.run(), Exit::Exited(expected as i32));
    let stats = vm.block_stats();
    assert_eq!(
        stats.invalidated, 0,
        "chain data writes evicted blocks: {stats:?}"
    );
    assert!(stats.hits > 0, "repeated gadget dispatch should hit cache");

    // And the block path agrees with the reference interpreter exactly.
    let mut reference = Vm::new(&img);
    assert_eq!(reference.run_reference(), Exit::Exited(expected as i32));
    assert_eq!(vm.cycles(), reference.cycles());
    assert_eq!(vm.instructions, reference.instructions);
}

/// Block path and reference path agree instruction-for-instruction on
/// the hand-built chain, including the RSB mispredict cost model.
#[test]
fn block_path_matches_reference_on_rop_chain() {
    let img = chain_with_data_writes();
    let mut blocked = Vm::new(&img);
    let mut reference = Vm::new(&img);
    let a = blocked.run();
    let b = reference.run_reference();
    assert_eq!(a, b);
    assert_eq!(blocked.cycles(), reference.cycles());
    assert_eq!(blocked.instructions, reference.instructions);
    assert_eq!(blocked.output(), reference.output());
}

/// Single-stepping through the block cache matches the reference
/// stepper: same exit status, same cycle count, same instruction count.
#[test]
fn step_matches_reference_stepper() {
    let img = chain_with_data_writes();
    let run_steps = |reference: bool| {
        let mut vm = Vm::new(&img);
        loop {
            let r = if reference {
                vm.step_reference()
            } else {
                vm.step()
            };
            match r {
                Ok(None) => continue,
                Ok(Some(status)) => return (status, vm.cycles(), vm.instructions),
                Err(f) => panic!("fault while stepping: {f:?}"),
            }
        }
    };
    assert_eq!(run_steps(false), run_steps(true));
}

/// Self-modifying code: a program that patches an instruction *ahead of
/// itself* (different block) sees the patched bytes when it gets there.
#[test]
fn self_modifying_code_via_write_code_between_calls() {
    // f starts as `mov eax, 1; ret`; main exits with f()'s value. We
    // run once, rewrite the imm byte-by-byte, and run fresh VMs to
    // prove the cache key is the image state, not history.
    let mut f = Asm::new();
    f.mov_ri(Reg32::Eax, 1);
    f.ret();
    let mut main = Asm::new();
    emit_exit(&mut main, 0);
    let img = link(
        vec![("main", main.finish().unwrap()), ("f", f.finish().unwrap())],
        "main",
    );
    let fv = func_vaddr(&img, "f");
    let mut vm = Vm::new(&img);
    for round in 1..=4u32 {
        // Patch one byte at a time — exercises partial-overlap ranges.
        let bytes = (round * 11).to_le_bytes();
        for (i, b) in bytes.iter().enumerate() {
            vm.write_code(fv + 1 + i as u32, &[*b]).unwrap();
        }
        assert_eq!(vm.call_function(fv, &[]), Ok(round * 11));
    }
}
