//! End-to-end execution tests: assemble small programs, link, run.

use parallax_image::Program;
use parallax_vm::{Exit, FaultKind, Vm, VmOptions};
use parallax_x86::{AluOp, Asm, Assembled, Cond, Mem, Reg32, Reg8, ShiftOp};

fn link(funcs: Vec<(&str, Assembled)>, entry: &str) -> parallax_image::LinkedImage {
    let mut p = Program::new();
    for (name, asm) in funcs {
        p.add_func(name, asm);
    }
    p.set_entry(entry);
    p.link().expect("links")
}

/// exit(status) helper: eax=1, ebx=status, int 0x80.
fn emit_exit(a: &mut Asm, status: i32) {
    a.mov_ri(Reg32::Eax, 1);
    a.mov_ri(Reg32::Ebx, status);
    a.int(0x80);
}

#[test]
fn exit_status_propagates() {
    let mut a = Asm::new();
    emit_exit(&mut a, 42);
    let img = link(vec![("main", a.finish().unwrap())], "main");
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run(), Exit::Exited(42));
}

#[test]
fn factorial_loop() {
    // eax = 1; ecx = 10; loop: eax *= ecx; dec ecx; jnz loop; exit(eax==3628800)
    let mut a = Asm::new();
    a.mov_ri(Reg32::Eax, 1);
    a.mov_ri(Reg32::Ecx, 10);
    let top = a.here();
    a.imul_rr(Reg32::Eax, Reg32::Ecx);
    a.dec_r(Reg32::Ecx);
    a.jcc(Cond::Ne, top);
    a.mov_rr(Reg32::Ebx, Reg32::Eax);
    a.mov_ri(Reg32::Eax, 1);
    a.int(0x80);
    let img = link(vec![("main", a.finish().unwrap())], "main");
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run(), Exit::Exited(3_628_800));
}

#[test]
fn call_function_harness_and_recursion() {
    // fib(n): if n < 2 return n; return fib(n-1) + fib(n-2)
    let mut f = Asm::new();
    f.push_r(Reg32::Ebp);
    f.mov_rr(Reg32::Ebp, Reg32::Esp);
    f.mov_rm(Reg32::Eax, Mem::base_disp(Reg32::Ebp, 8));
    f.alu_ri(AluOp::Cmp, Reg32::Eax, 2);
    let recurse = f.label();
    f.jcc(Cond::Ge, recurse);
    f.pop_r(Reg32::Ebp);
    f.ret();
    f.bind(recurse);
    f.dec_r(Reg32::Eax);
    f.push_r(Reg32::Eax); // save n-1
    f.push_r(Reg32::Eax); // arg n-1
    f.call_sym("fib");
    f.alu_ri(AluOp::Add, Reg32::Esp, 4);
    f.pop_r(Reg32::Ecx); // n-1
    f.dec_r(Reg32::Ecx);
    f.push_r(Reg32::Eax); // save fib(n-1)
    f.push_r(Reg32::Ecx); // arg n-2
    f.call_sym("fib");
    f.alu_ri(AluOp::Add, Reg32::Esp, 4);
    f.pop_r(Reg32::Ecx);
    f.alu_rr(AluOp::Add, Reg32::Eax, Reg32::Ecx);
    f.pop_r(Reg32::Ebp);
    f.ret();

    let mut main = Asm::new();
    emit_exit(&mut main, 0);
    let img = link(
        vec![
            ("main", main.finish().unwrap()),
            ("fib", f.finish().unwrap()),
        ],
        "main",
    );
    let mut vm = Vm::new(&img);
    let fib = img.symbol("fib").unwrap().vaddr;
    assert_eq!(vm.call_function(fib, &[10]).unwrap(), 55);
    assert_eq!(vm.call_function(fib, &[1]).unwrap(), 1);
    assert_eq!(vm.call_function(fib, &[15]).unwrap(), 610);
}

#[test]
fn memory_and_output_syscall() {
    // Write "ok\n" from a data buffer.
    let mut a = Asm::new();
    a.mov_ri(Reg32::Eax, 4);
    a.mov_ri(Reg32::Ebx, 1);
    a.mov_ri_sym(Reg32::Ecx, "msg", 0);
    a.mov_ri(Reg32::Edx, 3);
    a.int(0x80);
    emit_exit(&mut a, 0);
    let mut p = Program::new();
    p.add_func("main", a.finish().unwrap());
    p.add_data("msg", b"ok\n".to_vec());
    p.set_entry("main");
    let img = p.link().unwrap();
    let mut vm = Vm::new(&img);
    assert!(vm.run().is_success());
    assert_eq!(vm.output(), b"ok\n");
}

#[test]
fn hand_built_rop_chain_executes() {
    // Gadgets (as dedicated "functions" so they are in text):
    //   g_pop_eax: pop eax; ret
    //   g_add:     add esi, eax; ret
    //   g_pop_esp: pop esp; ret  (chain epilogue)
    // The chain lives in data and computes esi += 0x1111 twice.
    let mut g1 = Asm::new();
    g1.pop_r(Reg32::Eax);
    g1.ret();
    let mut g2 = Asm::new();
    g2.alu_rr(AluOp::Add, Reg32::Esi, Reg32::Eax);
    g2.ret();
    let mut g3 = Asm::new();
    g3.pop_r(Reg32::Esp);
    g3.ret();

    // Loader: save a resume address on the original stack, point esp at
    // the chain, ret into it.
    let mut main = Asm::new();
    main.mov_ri(Reg32::Esi, 0);
    // Resume: the chain's final pop esp brings esp back here.
    main.push_i_sym("resume_slot", 0); // push address of resume slot... we
                                       // instead store the resume address in a data slot.
    main.pop_r(Reg32::Eax); // eax = &resume_slot
    main.mov_ri_sym(Reg32::Ecx, "main.back", 0);
    main.mov_mr(Mem::base(Reg32::Eax), Reg32::Ecx); // resume_slot = &back
    main.mov_ri_sym(Reg32::Esp, "chain", 0); // pivot!
    main.ret();
    main.marker("back");
    // Execution resumes here via: pop esp (esp=&resume_slot); ret (eip=back).
    // Wait: ret pops *resume_slot* = &back, and esp = resume_slot+4.
    main.mov_rr(Reg32::Ebx, Reg32::Esi);
    main.mov_ri(Reg32::Eax, 1);
    main.int(0x80);

    let mut p = Program::new();
    p.add_func("main", main.finish().unwrap());
    p.add_func("g_pop_eax", g1.finish().unwrap());
    p.add_func("g_add", g2.finish().unwrap());
    p.add_func("g_pop_esp", g3.finish().unwrap());

    // Chain: [&g_pop_eax, 0x1111, &g_add, &g_pop_eax, 0x1111, &g_add,
    //         &g_pop_esp, &resume_slot]
    use parallax_x86::{RelocKind, SymReloc};
    let mut chain = Vec::new();
    let mut relocs = Vec::new();
    let slot = |chain: &mut Vec<u8>, relocs: &mut Vec<SymReloc>, sym: Option<&str>, val: u32| {
        if let Some(s) = sym {
            relocs.push(SymReloc {
                offset: chain.len(),
                symbol: s.to_owned(),
                kind: RelocKind::Abs32,
                addend: val as i32,
            });
            chain.extend_from_slice(&[0; 4]);
        } else {
            chain.extend_from_slice(&val.to_le_bytes());
        }
    };
    slot(&mut chain, &mut relocs, Some("g_pop_eax"), 0);
    slot(&mut chain, &mut relocs, None, 0x1111);
    slot(&mut chain, &mut relocs, Some("g_add"), 0);
    slot(&mut chain, &mut relocs, Some("g_pop_eax"), 0);
    slot(&mut chain, &mut relocs, None, 0x1111);
    slot(&mut chain, &mut relocs, Some("g_add"), 0);
    slot(&mut chain, &mut relocs, Some("g_pop_esp"), 0);
    slot(&mut chain, &mut relocs, Some("resume_slot"), 0);
    p.add_data_with_relocs("chain", chain, relocs);
    p.add_bss("resume_slot", 8);
    p.set_entry("main");
    let img = p.link().unwrap();

    let mut vm = Vm::new(&img);
    assert_eq!(vm.run(), Exit::Exited(0x2222));
}

#[test]
fn rop_rets_cost_more_than_native_rets() {
    // Native: call f; f rets (predicted). ROP: same work via pivot.
    let mut f = Asm::new();
    f.ret();
    let mut native = Asm::new();
    for _ in 0..50 {
        native.call_sym("f");
    }
    emit_exit(&mut native, 0);
    let img = link(
        vec![
            ("main", native.finish().unwrap()),
            ("f", f.finish().unwrap()),
        ],
        "main",
    );
    let mut vm = Vm::new(&img);
    assert!(vm.run().is_success());
    let native_cycles = vm.cycles();

    // ROP chain of 50 rets into g (ret; each is a mispredict).
    let mut g = Asm::new();
    g.ret();
    let mut main2 = Asm::new();
    main2.mov_ri_sym(Reg32::Esp, "chain", 0);
    main2.ret();
    main2.marker("back");
    main2.mov_ri(Reg32::Eax, 1);
    main2.mov_ri(Reg32::Ebx, 0);
    main2.int(0x80);
    let mut p = Program::new();
    p.add_func("main", main2.finish().unwrap());
    p.add_func("g", g.finish().unwrap());
    use parallax_x86::{RelocKind, SymReloc};
    let mut chain = Vec::new();
    let mut relocs = Vec::new();
    for i in 0..50 {
        relocs.push(SymReloc {
            offset: i * 4,
            symbol: "g".to_owned(),
            kind: RelocKind::Abs32,
            addend: 0,
        });
        chain.extend_from_slice(&[0; 4]);
    }
    relocs.push(SymReloc {
        offset: chain.len(),
        symbol: "main.back".to_owned(),
        kind: RelocKind::Abs32,
        addend: 0,
    });
    chain.extend_from_slice(&[0; 4]);
    p.add_data_with_relocs("chain", chain, relocs);
    p.set_entry("main");
    let img2 = p.link().unwrap();
    let mut vm2 = Vm::new(&img2);
    assert!(vm2.run().is_success());
    let rop_cycles = vm2.cycles();
    assert!(
        rop_cycles > native_cycles * 3,
        "ROP ({rop_cycles}) should be much slower than native ({native_cycles})"
    );
}

#[test]
fn profiler_attributes_and_counts() {
    let mut hot = Asm::new();
    hot.mov_ri(Reg32::Ecx, 1000);
    let top = hot.here();
    hot.dec_r(Reg32::Ecx);
    hot.jcc(Cond::Ne, top);
    hot.ret();
    let mut main = Asm::new();
    main.call_sym("hot");
    main.call_sym("hot");
    emit_exit(&mut main, 0);
    let img = link(
        vec![
            ("main", main.finish().unwrap()),
            ("hot", hot.finish().unwrap()),
        ],
        "main",
    );
    let mut vm = Vm::with_options(
        &img,
        VmOptions {
            profile: true,
            ..VmOptions::default()
        },
    );
    assert!(vm.run().is_success());
    let p = vm.profiler().unwrap();
    assert_eq!(p.func("hot").unwrap().calls, 2);
    assert!(p.fraction("hot") > 0.9);
}

#[test]
fn wurster_split_cache_divergence_at_runtime() {
    // Program reads its own first code byte and exits with it.
    let mut a = Asm::new();
    a.mov_ri_sym(Reg32::Ecx, "main", 0);
    a.movzx_rm8(Reg32::Ebx, Mem::base(Reg32::Ecx));
    a.mov_ri(Reg32::Eax, 1);
    a.int(0x80);
    let img = link(vec![("main", a.finish().unwrap())], "main");

    // Baseline: data view sees the real first byte (0xb9: mov ecx, imm).
    let mut vm = Vm::new(&img);
    let status = vm.run().status().unwrap();
    assert_eq!(status, 0xb9);

    // Split-cache attack: patch icache byte at a *non-executed* spot —
    // data reads still see the original.
    let mut vm2 = Vm::new(&img);
    vm2.enable_split_cache();
    // Patch the LAST byte (the int 0x80 second byte is executed; use
    // a byte beyond the read target: patch "main"+1..5 (imm bytes of
    // mov ecx) would change behavior; instead patch the byte read:
    // main+0. Execution of main+0 already happened? No: patch before run.
    // We patch main+0 in icache to 0xcc; the FETCH will hit int3 — so
    // instead verify the divergence in a read-only way:
    vm2.write_icache(img.entry, &[0xcc]).unwrap();
    let r = vm2.run();
    // Fetch sees the patched 0xcc (breakpoint fault)...
    assert_eq!(
        r,
        Exit::Fault(parallax_vm::Fault::new(img.entry, FaultKind::Breakpoint))
    );
    // ...while a data read through memory still sees 0xb9.
    assert_eq!(vm2.mem().read8(img.entry).unwrap(), 0xb9);
}

#[test]
fn cycle_limit_stops_runaway() {
    let mut a = Asm::new();
    let top = a.here();
    a.jmp(top);
    let img = link(vec![("main", a.finish().unwrap())], "main");
    let mut vm = Vm::with_options(
        &img,
        VmOptions {
            cycle_limit: 10_000,
            ..VmOptions::default()
        },
    );
    assert_eq!(vm.run(), Exit::CycleLimit);
}

#[test]
fn faults_are_reported() {
    // Jump into data -> ExecOutsideText.
    let mut a = Asm::new();
    a.mov_ri_sym(Reg32::Eax, "blob", 0);
    a.jmp_r(Reg32::Eax);
    let mut p = Program::new();
    p.add_func("main", a.finish().unwrap());
    p.add_data("blob", vec![0x90; 4]);
    p.set_entry("main");
    let img = p.link().unwrap();
    let mut vm = Vm::new(&img);
    match vm.run() {
        Exit::Fault(f) => assert_eq!(f.kind, FaultKind::ExecOutsideText),
        other => panic!("expected fault, got {other:?}"),
    }

    // Divide by zero.
    let mut b = Asm::new();
    b.mov_ri(Reg32::Eax, 5);
    b.mov_ri(Reg32::Edx, 0);
    b.mov_ri(Reg32::Ecx, 0);
    b.div_r(Reg32::Ecx);
    let img2 = link(vec![("main", b.finish().unwrap())], "main");
    let mut vm2 = Vm::new(&img2);
    match vm2.run() {
        Exit::Fault(f) => assert_eq!(f.kind, FaultKind::DivideError),
        other => panic!("expected divide fault, got {other:?}"),
    }
}

#[test]
fn pushad_popad_roundtrip_and_leave() {
    let mut a = Asm::new();
    a.mov_ri(Reg32::Eax, 1);
    a.mov_ri(Reg32::Ecx, 2);
    a.mov_ri(Reg32::Edx, 3);
    a.mov_ri(Reg32::Ebx, 4);
    a.mov_ri(Reg32::Esi, 5);
    a.mov_ri(Reg32::Edi, 6);
    a.pushad();
    a.mov_ri(Reg32::Eax, 99);
    a.mov_ri(Reg32::Esi, 99);
    a.popad();
    // frame test: push ebp; mov ebp,esp; sub esp,16; leave
    a.push_r(Reg32::Ebp);
    a.mov_rr(Reg32::Ebp, Reg32::Esp);
    a.alu_ri(AluOp::Sub, Reg32::Esp, 16);
    a.leave();
    // exit(eax + esi) == 1 + 5
    a.alu_rr(AluOp::Add, Reg32::Eax, Reg32::Esi);
    a.mov_rr(Reg32::Ebx, Reg32::Eax);
    a.mov_ri(Reg32::Eax, 1);
    a.int(0x80);
    let img = link(vec![("main", a.finish().unwrap())], "main");
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run(), Exit::Exited(6));
}

#[test]
fn shifts_and_setcc() {
    let mut a = Asm::new();
    a.mov_ri(Reg32::Eax, -8);
    a.shift_ri(ShiftOp::Sar, Reg32::Eax, 2); // -2
    a.alu_ri(AluOp::Cmp, Reg32::Eax, -2);
    a.setcc(Cond::E, Reg8::Bl);
    a.movzx_rr8(Reg32::Ebx, Reg8::Bl);
    a.mov_ri(Reg32::Eax, 1);
    a.int(0x80);
    let img = link(vec![("main", a.finish().unwrap())], "main");
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run(), Exit::Exited(1));
}

#[test]
fn retf_pops_code_segment_slot() {
    // Far-return gadget semantics: retf pops eip, then a cs slot.
    let mut g = Asm::new();
    g.retf();
    let mut main = Asm::new();
    main.push_i(0); // dummy cs (deeper slot)
    main.push_i_sym("main.done", 0); // far-return target (top slot)
    main.mov_ri_sym(Reg32::Eax, "g_far", 0);
    main.jmp_r(Reg32::Eax);
    main.marker("done");
    emit_exit(&mut main, 7);
    let img = link(
        vec![
            ("main", main.finish().unwrap()),
            ("g_far", g.finish().unwrap()),
        ],
        "main",
    );
    let mut vm = Vm::new(&img);
    let initial_esp = vm.cpu.esp();
    assert_eq!(vm.run(), Exit::Exited(7));
    // Both slots were consumed by the retf.
    assert_eq!(vm.cpu.esp(), initial_esp);
}
