//! Differential testing of ALU flag semantics against an independent
//! reference model (wide-arithmetic formulations, computed without the
//! VM's own flag code).

use proptest::prelude::*;

use parallax_image::Program;
use parallax_vm::{Flags, Vm};
use parallax_x86::{AluOp, Asm, Cond, Reg32, ShiftOp};

/// Reference flag computation using 64-bit arithmetic.
fn ref_add(a: u32, b: u32, carry_in: u32) -> (u32, bool, bool) {
    let wide = a as u64 + b as u64 + carry_in as u64;
    let r = wide as u32;
    let cf = wide > u32::MAX as u64;
    let sa = (a as i32) as i64;
    let sb = (b as i32) as i64;
    let swide = sa + sb + carry_in as i64;
    let of = swide != (swide as i32) as i64;
    (r, cf, of)
}

fn ref_sub(a: u32, b: u32, borrow_in: u32) -> (u32, bool, bool) {
    let r = a.wrapping_sub(b).wrapping_sub(borrow_in);
    let cf = (b as u64 + borrow_in as u64) > a as u64;
    let sa = (a as i32) as i64;
    let sb = (b as i32) as i64;
    let swide = sa - sb - borrow_in as i64;
    let of = swide != (swide as i32) as i64;
    (r, cf, of)
}

/// Executes `op a, b` in the VM and returns (result, flags).
fn run_alu(op: AluOp, a: u32, b: u32, cf_in: bool) -> (u32, Flags) {
    let mut asm = Asm::new();
    asm.alu_rr(op, Reg32::Eax, Reg32::Ecx);
    asm.ret();
    let mut p = Program::new();
    p.add_func("f", asm.finish().unwrap());
    p.set_entry("f");
    let img = p.link().unwrap();
    let mut vm = Vm::new(&img);
    vm.cpu.set_reg(Reg32::Eax, a);
    vm.cpu.set_reg(Reg32::Ecx, b);
    vm.cpu.flags.cf = cf_in;
    vm.cpu.eip = img.entry;
    vm.step().unwrap();
    (vm.cpu.reg(Reg32::Eax), vm.cpu.flags)
}

fn run_shift(op: ShiftOp, a: u32, n: u8) -> (u32, Flags) {
    let mut asm = Asm::new();
    asm.shift_ri(op, Reg32::Eax, n);
    asm.ret();
    let mut p = Program::new();
    p.add_func("f", asm.finish().unwrap());
    p.set_entry("f");
    let img = p.link().unwrap();
    let mut vm = Vm::new(&img);
    vm.cpu.set_reg(Reg32::Eax, a);
    vm.cpu.eip = img.entry;
    vm.step().unwrap();
    (vm.cpu.reg(Reg32::Eax), vm.cpu.flags)
}

proptest! {
    #[test]
    fn add_flags_match_reference(a in any::<u32>(), b in any::<u32>()) {
        let (r, f) = run_alu(AluOp::Add, a, b, false);
        let (er, ecf, eof) = ref_add(a, b, 0);
        prop_assert_eq!(r, er);
        prop_assert_eq!(f.cf, ecf);
        prop_assert_eq!(f.of, eof);
        prop_assert_eq!(f.zf, er == 0);
        prop_assert_eq!(f.sf, (er as i32) < 0);
    }

    #[test]
    fn adc_flags_match_reference(a in any::<u32>(), b in any::<u32>(), cin in any::<bool>()) {
        let (r, f) = run_alu(AluOp::Adc, a, b, cin);
        let (er, ecf, eof) = ref_add(a, b, cin as u32);
        prop_assert_eq!(r, er);
        prop_assert_eq!(f.cf, ecf);
        prop_assert_eq!(f.of, eof);
    }

    #[test]
    fn sub_flags_match_reference(a in any::<u32>(), b in any::<u32>()) {
        let (r, f) = run_alu(AluOp::Sub, a, b, false);
        let (er, ecf, eof) = ref_sub(a, b, 0);
        prop_assert_eq!(r, er);
        prop_assert_eq!(f.cf, ecf);
        prop_assert_eq!(f.of, eof);
        prop_assert_eq!(f.zf, er == 0);
        prop_assert_eq!(f.sf, (er as i32) < 0);
    }

    #[test]
    fn sbb_flags_match_reference(a in any::<u32>(), b in any::<u32>(), cin in any::<bool>()) {
        let (r, f) = run_alu(AluOp::Sbb, a, b, cin);
        let (er, ecf, eof) = ref_sub(a, b, cin as u32);
        prop_assert_eq!(r, er);
        prop_assert_eq!(f.cf, ecf);
        prop_assert_eq!(f.of, eof);
    }

    #[test]
    fn logic_clears_cf_of(a in any::<u32>(), b in any::<u32>()) {
        for op in [AluOp::And, AluOp::Or, AluOp::Xor] {
            let (r, f) = run_alu(op, a, b, true);
            let er = match op {
                AluOp::And => a & b,
                AluOp::Or => a | b,
                _ => a ^ b,
            };
            prop_assert_eq!(r, er);
            prop_assert!(!f.cf);
            prop_assert!(!f.of);
            prop_assert_eq!(f.zf, er == 0);
        }
    }

    #[test]
    fn cmp_is_nondestructive_sub(a in any::<u32>(), b in any::<u32>()) {
        let (r, f) = run_alu(AluOp::Cmp, a, b, false);
        prop_assert_eq!(r, a, "cmp must not write the destination");
        let (_, ecf, eof) = ref_sub(a, b, 0);
        prop_assert_eq!(f.cf, ecf);
        prop_assert_eq!(f.of, eof);
        prop_assert_eq!(f.zf, a == b);
        // Signed comparisons through the standard condition synthesis.
        prop_assert_eq!(f.cond(Cond::L), (a as i32) < (b as i32));
        prop_assert_eq!(f.cond(Cond::Le), (a as i32) <= (b as i32));
        prop_assert_eq!(f.cond(Cond::B), a < b);
        prop_assert_eq!(f.cond(Cond::Ae), a >= b);
        prop_assert_eq!(f.cond(Cond::A), a > b);
        prop_assert_eq!(f.cond(Cond::G), (a as i32) > (b as i32));
    }

    #[test]
    fn shifts_match_reference(a in any::<u32>(), n in 1u8..32) {
        let (r, f) = run_shift(ShiftOp::Shl, a, n);
        prop_assert_eq!(r, a << n);
        prop_assert_eq!(f.cf, (a >> (32 - n)) & 1 != 0);

        let (r, f) = run_shift(ShiftOp::Shr, a, n);
        prop_assert_eq!(r, a >> n);
        prop_assert_eq!(f.cf, (a >> (n - 1)) & 1 != 0);

        let (r, f) = run_shift(ShiftOp::Sar, a, n);
        prop_assert_eq!(r, ((a as i32) >> n) as u32);
        prop_assert_eq!(f.cf, ((a as i32) >> (n - 1)) & 1 != 0);
    }

    #[test]
    fn rotates_match_reference(a in any::<u32>(), n in 1u8..32) {
        let (r, _) = run_shift(ShiftOp::Rol, a, n);
        prop_assert_eq!(r, a.rotate_left(n as u32));
        let (r, _) = run_shift(ShiftOp::Ror, a, n);
        prop_assert_eq!(r, a.rotate_right(n as u32));
    }
}
