//! Differential coverage for the widened fused-gadget fast path and
//! the probe-VM reset contract.
//!
//! The reference path (`run_reference`) never uses predecoded blocks
//! or fused dispatch, so running the same ROP-style chain through both
//! engines and requiring identical exits / cycles / instruction counts
//! pins the fused semantics to the single-authority interpreter.

use parallax_image::Program;
use parallax_vm::{Exit, Vm, VmOptions};
use parallax_x86::{AluOp, Asm, Assembled, Cond, Mem, Reg32};

fn link(funcs: Vec<(&str, Assembled)>, entry: &str) -> parallax_image::LinkedImage {
    let mut p = Program::new();
    for (name, asm) in funcs {
        p.add_func(name, asm);
    }
    p.set_entry(entry);
    p.link().expect("links")
}

/// exit(status) helper: eax=1, ebx=status, int 0x80.
fn emit_exit(a: &mut Asm, status: i32) {
    a.mov_ri(Reg32::Eax, 1);
    a.mov_ri(Reg32::Ebx, status);
    a.int(0x80);
}

/// A ROP-style chain through gadgets whose bodies exercise the widened
/// fast-op set (lea, xchg, test, push/pop mem) at fused lengths 2–4.
fn fused_chain_image() -> parallax_image::LinkedImage {
    // g1: lea eax,[ebx+4]; xchg ecx,eax; pop ebx; ret   (3-op body)
    let mut g1 = Asm::new();
    g1.lea(Reg32::Eax, Mem::base_disp(Reg32::Ebx, 4));
    g1.xchg_rr(Reg32::Ecx, Reg32::Eax);
    g1.pop_r(Reg32::Ebx);
    g1.ret();

    // g2: test eax,ecx; test edx,0x40; pop eax; ret     (3-op body)
    let mut g2 = Asm::new();
    g2.test_rr(Reg32::Eax, Reg32::Ecx);
    g2.test_ri(Reg32::Edx, 0x40);
    g2.pop_r(Reg32::Eax);
    g2.ret();

    // g3: push [esp]; pop edx; ret                      (2-op body,
    // push-from-memory reads the chain slot then pops it right back)
    let mut g3 = Asm::new();
    g3.push_m(Mem::base(Reg32::Esp));
    g3.pop_r(Reg32::Edx);
    g3.ret();

    // g4: push eax; pop [esp-8]; add eax,1; pop esi; ret (4-op body,
    // pop-to-memory lands in dead stack below esp)
    let mut g4 = Asm::new();
    g4.push_r(Reg32::Eax);
    g4.pop_m(Mem::base_disp(Reg32::Esp, -8));
    g4.alu_ri(AluOp::Add, Reg32::Eax, 1);
    g4.pop_r(Reg32::Esi);
    g4.ret();

    let mut fin = Asm::new();
    fin.mov_rr(Reg32::Ebx, Reg32::Eax);
    fin.mov_ri(Reg32::Eax, 1);
    fin.int(0x80);

    // main lays out the chain bottom-up and rets into it.
    let mut main = Asm::new();
    main.push_i_sym("final", 0);
    main.push_i(0x71); // g4's pop esi
    main.push_i_sym("g4", 0);
    main.push_i_sym("g3", 0);
    main.push_i(0x1233); // g2's pop eax
    main.push_i_sym("g2", 0);
    main.push_i(0x5678); // g1's pop ebx
    main.push_i_sym("g1", 0);
    main.ret();

    link(
        vec![
            ("main", main.finish().unwrap()),
            ("g1", g1.finish().unwrap()),
            ("g2", g2.finish().unwrap()),
            ("g3", g3.finish().unwrap()),
            ("g4", g4.finish().unwrap()),
            ("final", fin.finish().unwrap()),
        ],
        "main",
    )
}

#[test]
fn fused_multi_op_chain_matches_reference() {
    let img = fused_chain_image();
    let mut block = Vm::new(&img);
    let be = block.run();
    let mut reference = Vm::new(&img);
    let re = reference.run_reference();
    // g2 left eax=0x1233, g4 added 1 → exit(0x1234) proves every
    // gadget in the chain actually retired.
    assert_eq!(be, Exit::Exited(0x1234));
    assert_eq!(be, re);
    assert_eq!(block.cycles(), reference.cycles());
    assert_eq!(block.instructions, reference.instructions);
}

#[test]
fn fused_chain_survives_tight_cycle_limits() {
    // Sweep cycle limits across the whole run so the budget expires at
    // every possible point — including mid-gadget — and require the
    // block engine and the reference path to agree on the exit, the
    // final eip, and the retirement counts at each cut.
    let img = fused_chain_image();
    let full = {
        let mut vm = Vm::new(&img);
        vm.run();
        vm.cycles()
    };
    for limit in 1..=full {
        let opts = VmOptions {
            cycle_limit: limit,
            ..VmOptions::default()
        };
        let mut b = Vm::with_options(&img, opts.clone());
        let be = b.run();
        let mut r = Vm::with_options(&img, opts);
        let re = r.run_reference();
        assert_eq!(be, re, "limit {limit}");
        assert_eq!(b.cpu.eip, r.cpu.eip, "limit {limit}");
        assert_eq!(b.cycles(), r.cycles(), "limit {limit}");
        assert_eq!(b.instructions, r.instructions, "limit {limit}");
    }
}

/// A program that dirties data, stack, and registers before exiting.
fn scribbler_image() -> parallax_image::LinkedImage {
    let mut a = Asm::new();
    a.mov_ri(Reg32::Ecx, 5);
    let top = a.here();
    a.push_r(Reg32::Ecx);
    a.mov_mi(Mem::base_disp(Reg32::Esp, -32), 99);
    a.dec_r(Reg32::Ecx);
    a.jcc(Cond::Ne, top);
    a.mov_ri(Reg32::Ecx, 5);
    let top2 = a.here();
    a.pop_r(Reg32::Eax);
    a.dec_r(Reg32::Ecx);
    a.jcc(Cond::Ne, top2);
    emit_exit(&mut a, 0); // ebx overwritten below
    link(vec![("main", a.finish().unwrap())], "main")
}

#[test]
fn reset_to_replays_byte_identically() {
    let img = scribbler_image();
    let mut vm = Vm::new(&img);
    vm.mem_mut().enable_write_log();
    let pristine = vm.mem().clone();

    let e1 = vm.run();
    let (c1, i1) = (vm.cycles(), vm.instructions);

    vm.reset_to(&pristine);
    let e2 = vm.run();
    assert_eq!(e1, e2);
    assert_eq!(c1, vm.cycles());
    assert_eq!(i1, vm.instructions);

    // And the reused VM must agree with a VM that never ran at all.
    let mut fresh = Vm::new(&img);
    assert_eq!(fresh.run(), e1);
    assert_eq!(fresh.cycles(), c1);
    assert_eq!(fresh.instructions, i1);
}

#[test]
fn reset_to_recovers_from_a_partial_run() {
    // Cut the first run short at every cycle budget; after reset the
    // replay must still match a never-used VM exactly, proving the
    // write log captured all partial state.
    let img = scribbler_image();
    let full = {
        let mut vm = Vm::new(&img);
        vm.run();
        vm.cycles()
    };
    let mut vm = Vm::with_options(
        &img,
        VmOptions {
            cycle_limit: u64::MAX,
            ..VmOptions::default()
        },
    );
    vm.mem_mut().enable_write_log();
    let pristine = vm.mem().clone();
    let want = {
        let mut fresh = Vm::new(&img);
        let e = fresh.run();
        (e, fresh.cycles(), fresh.instructions)
    };
    for limit in (1..full).step_by(7) {
        // Interrupted run: step until the budget would expire.
        loop {
            if vm.cycles() >= limit {
                break;
            }
            if vm.step().expect("no faults in scribbler").is_some() {
                break;
            }
        }
        vm.reset_to(&pristine);
        let e = vm.run();
        assert_eq!((e, vm.cycles(), vm.instructions), want, "limit {limit}");
        vm.reset_to(&pristine);
    }
}
