//! A conservative x86-32 instruction decoder.
//!
//! The decoder is designed for *gadget scanning*: it must accept a byte
//! slice at any offset — including the middle of a legitimate
//! instruction — and either produce a faithful decoding or fail
//! cleanly. Any byte sequence it does not fully understand decodes to
//! an error, never to a guess, so that the gadget finder stays
//! conservative (an unknown opcode can never become a "usable" gadget).

use core::fmt;

use crate::insn::{AluOp, Cond, FieldLoc, Insn, Mem, Mnemonic, OpSize, Operand, ShiftOp};
use crate::reg::{Reg, Reg32, Reg8};

/// Errors produced while decoding a byte sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte slice ended before the instruction was complete.
    Truncated,
    /// The first opcode byte is not supported.
    InvalidOpcode(u8),
    /// A two-byte (`0f`-prefixed) opcode is not supported.
    InvalidOpcode2(u8),
    /// A group opcode selected an undefined `/r` slot.
    InvalidGroup {
        /// The group opcode byte.
        opcode: u8,
        /// The undefined `/r` extension value.
        ext: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction truncated"),
            DecodeError::InvalidOpcode(b) => write!(f, "invalid opcode {b:#04x}"),
            DecodeError::InvalidOpcode2(b) => write!(f, "invalid opcode 0f {b:#04x}"),
            DecodeError::InvalidGroup { opcode, ext } => {
                write!(f, "invalid group extension {opcode:#04x} /{ext}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Result alias for decode operations.
pub type Result<T> = core::result::Result<T, DecodeError>;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i8> {
        Ok(self.u8()? as i8)
    }

    fn u16(&mut self) -> Result<u16> {
        let lo = self.u8()? as u16;
        let hi = self.u8()? as u16;
        Ok(lo | (hi << 8))
    }

    fn u32(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for i in 0..4 {
            v |= (self.u8()? as u32) << (8 * i);
        }
        Ok(v)
    }

    fn i32(&mut self) -> Result<i32> {
        Ok(self.u32()? as i32)
    }
}

/// A decoded `r/m` operand plus the location of its displacement field.
struct RmOperand {
    op: Operand,
    disp_loc: Option<FieldLoc>,
    /// ModRM `reg` field, used for opcode extensions and `/r` operands.
    reg: u8,
}

fn decode_modrm(cur: &mut Cursor<'_>, size: OpSize) -> Result<RmOperand> {
    let modrm = cur.u8()?;
    let md = modrm >> 6;
    let reg = (modrm >> 3) & 7;
    let rm = modrm & 7;

    if md == 3 {
        let op = match size {
            OpSize::Dword => Operand::Reg(Reg::R32(Reg32::from_encoding(rm))),
            OpSize::Byte => Operand::Reg(Reg::R8(Reg8::from_encoding(rm))),
        };
        return Ok(RmOperand {
            op,
            disp_loc: None,
            reg,
        });
    }

    let mut mem = Mem::default();
    if rm == 4 {
        // SIB byte.
        let sib = cur.u8()?;
        let scale = 1u8 << (sib >> 6);
        let index = (sib >> 3) & 7;
        let base = sib & 7;
        if index != 4 {
            mem.index = Some((Reg32::from_encoding(index), scale));
        }
        if base == 5 && md == 0 {
            // disp32 with no base.
        } else {
            mem.base = Some(Reg32::from_encoding(base));
        }
        let disp_loc = match md {
            0 if base == 5 => {
                let off = cur.pos as u8;
                mem.disp = cur.i32()?;
                Some(FieldLoc {
                    offset: off,
                    width: 4,
                })
            }
            1 => {
                let off = cur.pos as u8;
                mem.disp = cur.i8()? as i32;
                Some(FieldLoc {
                    offset: off,
                    width: 1,
                })
            }
            2 => {
                let off = cur.pos as u8;
                mem.disp = cur.i32()?;
                Some(FieldLoc {
                    offset: off,
                    width: 4,
                })
            }
            _ => None,
        };
        return Ok(RmOperand {
            op: Operand::Mem(mem),
            disp_loc,
            reg,
        });
    }

    if md == 0 && rm == 5 {
        // Absolute disp32.
        let off = cur.pos as u8;
        mem.disp = cur.i32()?;
        return Ok(RmOperand {
            op: Operand::Mem(mem),
            disp_loc: Some(FieldLoc {
                offset: off,
                width: 4,
            }),
            reg,
        });
    }

    mem.base = Some(Reg32::from_encoding(rm));
    let disp_loc = match md {
        1 => {
            let off = cur.pos as u8;
            mem.disp = cur.i8()? as i32;
            Some(FieldLoc {
                offset: off,
                width: 1,
            })
        }
        2 => {
            let off = cur.pos as u8;
            mem.disp = cur.i32()?;
            Some(FieldLoc {
                offset: off,
                width: 4,
            })
        }
        _ => None,
    };
    Ok(RmOperand {
        op: Operand::Mem(mem),
        disp_loc,
        reg,
    })
}

fn reg_op(size: OpSize, enc: u8) -> Operand {
    match size {
        OpSize::Dword => Operand::Reg(Reg::R32(Reg32::from_encoding(enc))),
        OpSize::Byte => Operand::Reg(Reg::R8(Reg8::from_encoding(enc))),
    }
}

/// Decodes one instruction from the start of `bytes`.
///
/// On success the returned [`Insn`] records its encoded length and the
/// byte positions of any immediate / displacement / relative fields.
pub fn decode(bytes: &[u8]) -> Result<Insn> {
    let mut cur = Cursor::new(bytes);
    let opcode = cur.u8()?;

    // Group-1 ALU opcodes follow a regular pattern:
    //   base+0: rm8, r8     base+1: rm32, r32
    //   base+2: r8, rm8     base+3: r32, rm32
    //   base+4: al, imm8    base+5: eax, imm32
    if opcode < 0x40 && (opcode & 7) < 6 && (opcode & 0x38) != 0x38
        || (0x38..0x3e).contains(&opcode)
    {
        let alu = AluOp::ALL[(opcode >> 3) as usize];
        return decode_alu_family(&mut cur, Mnemonic::Alu(alu), opcode & 7);
    }

    match opcode {
        0x40..=0x47 => Ok(fixed(
            &cur,
            Mnemonic::Inc,
            vec![reg_op(OpSize::Dword, opcode - 0x40)],
            OpSize::Dword,
        )),
        0x48..=0x4f => Ok(fixed(
            &cur,
            Mnemonic::Dec,
            vec![reg_op(OpSize::Dword, opcode - 0x48)],
            OpSize::Dword,
        )),
        0x50..=0x57 => Ok(fixed(
            &cur,
            Mnemonic::Push,
            vec![reg_op(OpSize::Dword, opcode - 0x50)],
            OpSize::Dword,
        )),
        0x58..=0x5f => Ok(fixed(
            &cur,
            Mnemonic::Pop,
            vec![reg_op(OpSize::Dword, opcode - 0x58)],
            OpSize::Dword,
        )),
        0x60 => Ok(fixed(&cur, Mnemonic::Pushad, vec![], OpSize::Dword)),
        0x61 => Ok(fixed(&cur, Mnemonic::Popad, vec![], OpSize::Dword)),
        0x68 => {
            let off = cur.pos as u8;
            let imm = cur.i32()? as i64;
            let mut i = fixed(&cur, Mnemonic::Push, vec![Operand::Imm(imm)], OpSize::Dword);
            i.imm_loc = Some(FieldLoc {
                offset: off,
                width: 4,
            });
            Ok(i)
        }
        0x69 | 0x6b => {
            // imul r32, rm32, imm
            let rm = decode_modrm(&mut cur, OpSize::Dword)?;
            let dst = reg_op(OpSize::Dword, rm.reg);
            let off = cur.pos as u8;
            let (imm, width) = if opcode == 0x69 {
                (cur.i32()? as i64, 4)
            } else {
                (cur.i8()? as i64, 1)
            };
            let mut i = fixed(
                &cur,
                Mnemonic::Imul,
                vec![dst, rm.op, Operand::Imm(imm)],
                OpSize::Dword,
            );
            i.disp_loc = rm.disp_loc;
            i.imm_loc = Some(FieldLoc { offset: off, width });
            Ok(i)
        }
        0x6a => {
            let off = cur.pos as u8;
            let imm = cur.i8()? as i64;
            let mut i = fixed(&cur, Mnemonic::Push, vec![Operand::Imm(imm)], OpSize::Dword);
            i.imm_loc = Some(FieldLoc {
                offset: off,
                width: 1,
            });
            Ok(i)
        }
        0x70..=0x7f => {
            let cond = Cond::from_encoding(opcode & 0xf);
            let off = cur.pos as u8;
            let rel = cur.i8()? as i32;
            let mut i = fixed(
                &cur,
                Mnemonic::Jcc(cond),
                vec![Operand::Rel(rel)],
                OpSize::Dword,
            );
            i.rel_loc = Some(FieldLoc {
                offset: off,
                width: 1,
            });
            Ok(i)
        }
        0x80 | 0x81 | 0x83 => {
            let size = if opcode == 0x80 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let rm = decode_modrm(&mut cur, size)?;
            let alu = AluOp::ALL[rm.reg as usize];
            let off = cur.pos as u8;
            let (imm, width) = match opcode {
                0x80 => (cur.i8()? as i64, 1),
                0x81 => (cur.i32()? as i64, 4),
                _ => (cur.i8()? as i64, 1),
            };
            let mut i = fixed(
                &cur,
                Mnemonic::Alu(alu),
                vec![rm.op, Operand::Imm(imm)],
                size,
            );
            i.disp_loc = rm.disp_loc;
            i.imm_loc = Some(FieldLoc { offset: off, width });
            Ok(i)
        }
        0x84 | 0x85 => {
            let size = if opcode == 0x84 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let rm = decode_modrm(&mut cur, size)?;
            let reg = reg_op(size, rm.reg);
            let mut i = fixed(&cur, Mnemonic::Test, vec![rm.op, reg], size);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        0x86 | 0x87 => {
            let size = if opcode == 0x86 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let rm = decode_modrm(&mut cur, size)?;
            let reg = reg_op(size, rm.reg);
            let mut i = fixed(&cur, Mnemonic::Xchg, vec![rm.op, reg], size);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        0x88..=0x8b => {
            let size = if opcode & 1 == 0 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let rm = decode_modrm(&mut cur, size)?;
            let reg = reg_op(size, rm.reg);
            let ops = if opcode < 0x8a {
                vec![rm.op, reg] // mov rm, r
            } else {
                vec![reg, rm.op] // mov r, rm
            };
            let mut i = fixed(&cur, Mnemonic::Mov, ops, size);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        0x8d => {
            let rm = decode_modrm(&mut cur, OpSize::Dword)?;
            // LEA requires a memory operand.
            if !matches!(rm.op, Operand::Mem(_)) {
                return Err(DecodeError::InvalidOpcode(opcode));
            }
            let dst = reg_op(OpSize::Dword, rm.reg);
            let mut i = fixed(&cur, Mnemonic::Lea, vec![dst, rm.op], OpSize::Dword);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        0x8f => {
            let rm = decode_modrm(&mut cur, OpSize::Dword)?;
            if rm.reg != 0 {
                return Err(DecodeError::InvalidGroup {
                    opcode,
                    ext: rm.reg,
                });
            }
            let mut i = fixed(&cur, Mnemonic::Pop, vec![rm.op], OpSize::Dword);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        0x90 => Ok(fixed(&cur, Mnemonic::Nop, vec![], OpSize::Dword)),
        0x91..=0x97 => Ok(fixed(
            &cur,
            Mnemonic::Xchg,
            vec![
                reg_op(OpSize::Dword, 0),
                reg_op(OpSize::Dword, opcode - 0x90),
            ],
            OpSize::Dword,
        )),
        0x98 => Ok(fixed(&cur, Mnemonic::Cwde, vec![], OpSize::Dword)),
        0x99 => Ok(fixed(&cur, Mnemonic::Cdq, vec![], OpSize::Dword)),
        0x9c => Ok(fixed(&cur, Mnemonic::Pushfd, vec![], OpSize::Dword)),
        0x9d => Ok(fixed(&cur, Mnemonic::Popfd, vec![], OpSize::Dword)),
        0xa0..=0xa3 => {
            let size = if opcode & 1 == 0 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let off = cur.pos as u8;
            let addr = cur.i32()?;
            let mem = Operand::Mem(Mem::abs(addr));
            let acc = reg_op(size, 0);
            let ops = if opcode < 0xa2 {
                vec![acc, mem]
            } else {
                vec![mem, acc]
            };
            let mut i = fixed(&cur, Mnemonic::Mov, ops, size);
            i.disp_loc = Some(FieldLoc {
                offset: off,
                width: 4,
            });
            Ok(i)
        }
        0xa8 | 0xa9 => {
            let size = if opcode == 0xa8 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let off = cur.pos as u8;
            let (imm, width) = if size == OpSize::Byte {
                (cur.i8()? as i64, 1)
            } else {
                (cur.i32()? as i64, 4)
            };
            let mut i = fixed(
                &cur,
                Mnemonic::Test,
                vec![reg_op(size, 0), Operand::Imm(imm)],
                size,
            );
            i.imm_loc = Some(FieldLoc { offset: off, width });
            Ok(i)
        }
        0xb0..=0xb7 => {
            let off = cur.pos as u8;
            let imm = cur.u8()? as i64;
            let mut i = fixed(
                &cur,
                Mnemonic::Mov,
                vec![reg_op(OpSize::Byte, opcode - 0xb0), Operand::Imm(imm)],
                OpSize::Byte,
            );
            i.imm_loc = Some(FieldLoc {
                offset: off,
                width: 1,
            });
            Ok(i)
        }
        0xb8..=0xbf => {
            let off = cur.pos as u8;
            let imm = cur.u32()? as i64;
            let mut i = fixed(
                &cur,
                Mnemonic::Mov,
                vec![reg_op(OpSize::Dword, opcode - 0xb8), Operand::Imm(imm)],
                OpSize::Dword,
            );
            i.imm_loc = Some(FieldLoc {
                offset: off,
                width: 4,
            });
            Ok(i)
        }
        0xc0 | 0xc1 => {
            let size = if opcode == 0xc0 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let rm = decode_modrm(&mut cur, size)?;
            let op = ShiftOp::from_encoding(rm.reg).ok_or(DecodeError::InvalidGroup {
                opcode,
                ext: rm.reg,
            })?;
            let off = cur.pos as u8;
            let imm = cur.u8()? as i64;
            let mut i = fixed(
                &cur,
                Mnemonic::Shift(op),
                vec![rm.op, Operand::Imm(imm)],
                size,
            );
            i.disp_loc = rm.disp_loc;
            i.imm_loc = Some(FieldLoc {
                offset: off,
                width: 1,
            });
            Ok(i)
        }
        0xc2 => {
            let off = cur.pos as u8;
            let n = cur.u16()? as i64;
            let mut i = fixed(&cur, Mnemonic::Ret, vec![Operand::Imm(n)], OpSize::Dword);
            i.imm_loc = Some(FieldLoc {
                offset: off,
                width: 2,
            });
            Ok(i)
        }
        0xc3 => Ok(fixed(&cur, Mnemonic::Ret, vec![], OpSize::Dword)),
        0xc6 | 0xc7 => {
            let size = if opcode == 0xc6 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let rm = decode_modrm(&mut cur, size)?;
            if rm.reg != 0 {
                return Err(DecodeError::InvalidGroup {
                    opcode,
                    ext: rm.reg,
                });
            }
            let off = cur.pos as u8;
            let (imm, width) = if size == OpSize::Byte {
                (cur.u8()? as i64, 1)
            } else {
                (cur.u32()? as i64, 4)
            };
            let mut i = fixed(&cur, Mnemonic::Mov, vec![rm.op, Operand::Imm(imm)], size);
            i.disp_loc = rm.disp_loc;
            i.imm_loc = Some(FieldLoc { offset: off, width });
            Ok(i)
        }
        0xc9 => Ok(fixed(&cur, Mnemonic::Leave, vec![], OpSize::Dword)),
        0xca => {
            let off = cur.pos as u8;
            let n = cur.u16()? as i64;
            let mut i = fixed(&cur, Mnemonic::Retf, vec![Operand::Imm(n)], OpSize::Dword);
            i.imm_loc = Some(FieldLoc {
                offset: off,
                width: 2,
            });
            Ok(i)
        }
        0xcb => Ok(fixed(&cur, Mnemonic::Retf, vec![], OpSize::Dword)),
        0xcc => Ok(fixed(&cur, Mnemonic::Int3, vec![], OpSize::Dword)),
        0xcd => {
            let off = cur.pos as u8;
            let n = cur.u8()? as i64;
            let mut i = fixed(&cur, Mnemonic::Int, vec![Operand::Imm(n)], OpSize::Dword);
            i.imm_loc = Some(FieldLoc {
                offset: off,
                width: 1,
            });
            Ok(i)
        }
        0xd0..=0xd3 => {
            let size = if opcode & 1 == 0 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let rm = decode_modrm(&mut cur, size)?;
            let op = ShiftOp::from_encoding(rm.reg).ok_or(DecodeError::InvalidGroup {
                opcode,
                ext: rm.reg,
            })?;
            let amount = if opcode < 0xd2 {
                Operand::Imm(1)
            } else {
                Operand::Reg(Reg::R8(Reg8::Cl))
            };
            let mut i = fixed(&cur, Mnemonic::Shift(op), vec![rm.op, amount], size);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        0xe8 => {
            let off = cur.pos as u8;
            let rel = cur.i32()?;
            let mut i = fixed(&cur, Mnemonic::Call, vec![Operand::Rel(rel)], OpSize::Dword);
            i.rel_loc = Some(FieldLoc {
                offset: off,
                width: 4,
            });
            Ok(i)
        }
        0xe9 => {
            let off = cur.pos as u8;
            let rel = cur.i32()?;
            let mut i = fixed(&cur, Mnemonic::Jmp, vec![Operand::Rel(rel)], OpSize::Dword);
            i.rel_loc = Some(FieldLoc {
                offset: off,
                width: 4,
            });
            Ok(i)
        }
        0xeb => {
            let off = cur.pos as u8;
            let rel = cur.i8()? as i32;
            let mut i = fixed(&cur, Mnemonic::Jmp, vec![Operand::Rel(rel)], OpSize::Dword);
            i.rel_loc = Some(FieldLoc {
                offset: off,
                width: 1,
            });
            Ok(i)
        }
        0xf4 => Ok(fixed(&cur, Mnemonic::Hlt, vec![], OpSize::Dword)),
        0xf5 => Ok(fixed(&cur, Mnemonic::Cmc, vec![], OpSize::Dword)),
        0xf6 | 0xf7 => {
            let size = if opcode == 0xf6 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let rm = decode_modrm(&mut cur, size)?;
            match rm.reg {
                0 | 1 => {
                    let off = cur.pos as u8;
                    let (imm, width) = if size == OpSize::Byte {
                        (cur.i8()? as i64, 1)
                    } else {
                        (cur.i32()? as i64, 4)
                    };
                    let mut i = fixed(&cur, Mnemonic::Test, vec![rm.op, Operand::Imm(imm)], size);
                    i.disp_loc = rm.disp_loc;
                    i.imm_loc = Some(FieldLoc { offset: off, width });
                    Ok(i)
                }
                2 => group_un(&cur, Mnemonic::Not, rm, size),
                3 => group_un(&cur, Mnemonic::Neg, rm, size),
                4 => group_un(&cur, Mnemonic::Mul, rm, size),
                5 => group_un(&cur, Mnemonic::Imul, rm, size),
                6 => group_un(&cur, Mnemonic::Div, rm, size),
                7 => group_un(&cur, Mnemonic::Idiv, rm, size),
                _ => unreachable!(),
            }
        }
        0xf8 => Ok(fixed(&cur, Mnemonic::Clc, vec![], OpSize::Dword)),
        0xf9 => Ok(fixed(&cur, Mnemonic::Stc, vec![], OpSize::Dword)),
        0xfe => {
            let rm = decode_modrm(&mut cur, OpSize::Byte)?;
            match rm.reg {
                0 => group_un(&cur, Mnemonic::Inc, rm, OpSize::Byte),
                1 => group_un(&cur, Mnemonic::Dec, rm, OpSize::Byte),
                ext => Err(DecodeError::InvalidGroup { opcode, ext }),
            }
        }
        0xff => {
            let rm = decode_modrm(&mut cur, OpSize::Dword)?;
            match rm.reg {
                0 => group_un(&cur, Mnemonic::Inc, rm, OpSize::Dword),
                1 => group_un(&cur, Mnemonic::Dec, rm, OpSize::Dword),
                2 => group_un(&cur, Mnemonic::CallInd, rm, OpSize::Dword),
                4 => group_un(&cur, Mnemonic::JmpInd, rm, OpSize::Dword),
                6 => group_un(&cur, Mnemonic::Push, rm, OpSize::Dword),
                ext => Err(DecodeError::InvalidGroup { opcode, ext }),
            }
        }
        0x0f => decode_0f(&mut cur),
        other => Err(DecodeError::InvalidOpcode(other)),
    }
}

fn decode_0f(cur: &mut Cursor<'_>) -> Result<Insn> {
    let op2 = cur.u8()?;
    match op2 {
        0x40..=0x4f => {
            let cond = Cond::from_encoding(op2 & 0xf);
            let rm = decode_modrm(cur, OpSize::Dword)?;
            let dst = reg_op(OpSize::Dword, rm.reg);
            let mut i = fixed(cur, Mnemonic::Cmovcc(cond), vec![dst, rm.op], OpSize::Dword);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        0x80..=0x8f => {
            let cond = Cond::from_encoding(op2 & 0xf);
            let off = cur.pos as u8;
            let rel = cur.i32()?;
            let mut i = fixed(
                cur,
                Mnemonic::Jcc(cond),
                vec![Operand::Rel(rel)],
                OpSize::Dword,
            );
            i.rel_loc = Some(FieldLoc {
                offset: off,
                width: 4,
            });
            Ok(i)
        }
        0x90..=0x9f => {
            let cond = Cond::from_encoding(op2 & 0xf);
            let rm = decode_modrm(cur, OpSize::Byte)?;
            if rm.reg != 0 {
                // setcc formally ignores /r but tools emit /0; accept any.
            }
            let mut i = fixed(cur, Mnemonic::Setcc(cond), vec![rm.op], OpSize::Byte);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        0xaf => {
            let rm = decode_modrm(cur, OpSize::Dword)?;
            let dst = reg_op(OpSize::Dword, rm.reg);
            let mut i = fixed(cur, Mnemonic::Imul, vec![dst, rm.op], OpSize::Dword);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        0xb6 | 0xbe => {
            // movzx/movsx r32, rm8
            let rm = decode_modrm(cur, OpSize::Byte)?;
            let dst = reg_op(OpSize::Dword, rm.reg);
            let mn = if op2 == 0xb6 {
                Mnemonic::Movzx
            } else {
                Mnemonic::Movsx
            };
            let mut i = fixed(cur, mn, vec![dst, rm.op], OpSize::Byte);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        other => Err(DecodeError::InvalidOpcode2(other)),
    }
}

fn decode_alu_family(cur: &mut Cursor<'_>, mn: Mnemonic, form: u8) -> Result<Insn> {
    match form {
        0..=3 => {
            let size = if form & 1 == 0 {
                OpSize::Byte
            } else {
                OpSize::Dword
            };
            let rm = decode_modrm(cur, size)?;
            let reg = reg_op(size, rm.reg);
            let ops = if form < 2 {
                vec![rm.op, reg]
            } else {
                vec![reg, rm.op]
            };
            let mut i = fixed(cur, mn, ops, size);
            i.disp_loc = rm.disp_loc;
            Ok(i)
        }
        4 => {
            let off = cur.pos as u8;
            let imm = cur.i8()? as i64;
            let mut i = fixed(
                cur,
                mn,
                vec![reg_op(OpSize::Byte, 0), Operand::Imm(imm)],
                OpSize::Byte,
            );
            i.imm_loc = Some(FieldLoc {
                offset: off,
                width: 1,
            });
            Ok(i)
        }
        5 => {
            let off = cur.pos as u8;
            let imm = cur.i32()? as i64;
            let mut i = fixed(
                cur,
                mn,
                vec![reg_op(OpSize::Dword, 0), Operand::Imm(imm)],
                OpSize::Dword,
            );
            i.imm_loc = Some(FieldLoc {
                offset: off,
                width: 4,
            });
            Ok(i)
        }
        _ => unreachable!(),
    }
}

fn group_un(cur: &Cursor<'_>, mn: Mnemonic, rm: RmOperand, size: OpSize) -> Result<Insn> {
    let mut i = fixed(cur, mn, vec![rm.op], size);
    i.disp_loc = rm.disp_loc;
    Ok(i)
}

fn fixed(cur: &Cursor<'_>, mn: Mnemonic, ops: Vec<Operand>, size: OpSize) -> Insn {
    Insn::new(mn, ops, size, cur.pos as u8)
}

/// Decodes a linear run of instructions starting at `bytes`, stopping
/// at the first decode failure or after `max` instructions.
pub fn decode_run(bytes: &[u8], max: usize) -> Vec<Insn> {
    let mut out = Vec::new();
    let mut pos = 0;
    while out.len() < max && pos < bytes.len() {
        match decode(&bytes[pos..]) {
            Ok(i) => {
                pos += i.len as usize;
                out.push(i);
            }
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(bytes: &[u8]) -> Insn {
        decode(bytes).expect("decodes")
    }

    #[test]
    fn decodes_listing1_gadget_bytes() {
        // The paper's existing gadget: and al,0; add [eax],al; add al,ch; retf
        let i = d(&[0x24, 0x00]);
        assert_eq!(i.to_string(), "and al,0x0");
        assert_eq!(i.len, 2);

        let i = d(&[0x00, 0x00]);
        assert_eq!(i.to_string(), "add byte [eax],al");

        let i = d(&[0x00, 0xe8]);
        assert_eq!(i.to_string(), "add al,ch");

        let i = d(&[0xcb]);
        assert_eq!(i.mnemonic, Mnemonic::Retf);

        // add bl,ch ; ret  (the jump-offset gadget)
        let i = d(&[0x00, 0xeb]);
        assert_eq!(i.to_string(), "add bl,ch");

        // sar byte [ecx+0x7],0x8b ; ret (the immediate-modification gadget)
        let i = d(&[0xc0, 0x79, 0x07, 0x8b]);
        assert_eq!(i.to_string(), "sar byte [ecx+0x7],0x8b");
        assert_eq!(
            i.imm_loc,
            Some(FieldLoc {
                offset: 3,
                width: 1
            })
        );
        assert_eq!(
            i.disp_loc,
            Some(FieldLoc {
                offset: 2,
                width: 1
            })
        );
    }

    #[test]
    fn decodes_frame_setup() {
        assert_eq!(d(&[0x55]).to_string(), "push ebp");
        assert_eq!(d(&[0x89, 0xe5]).to_string(), "mov ebp,esp");
        assert_eq!(d(&[0x83, 0xec, 0x18]).to_string(), "sub esp,0x18");
        assert_eq!(d(&[0xc9]).to_string(), "leave");
        assert_eq!(d(&[0xc3]).to_string(), "ret");
    }

    #[test]
    fn decodes_mov_imm() {
        let i = d(&[0xb8, 0x01, 0x00, 0x00, 0x00]);
        assert_eq!(i.to_string(), "mov eax,0x1");
        assert_eq!(
            i.imm_loc,
            Some(FieldLoc {
                offset: 1,
                width: 4
            })
        );
        assert_eq!(i.len, 5);
    }

    #[test]
    fn decodes_mov_mem_forms() {
        // mov [esp],eax => 89 04 24 (SIB: base esp)
        let i = d(&[0x89, 0x04, 0x24]);
        assert_eq!(i.to_string(), "mov [esp],eax");
        // mov eax,[ebp-4] => 8b 45 fc
        let i = d(&[0x8b, 0x45, 0xfc]);
        assert_eq!(i.to_string(), "mov eax,[ebp-0x4]");
        // mov dword [esp+4], imm32 => c7 44 24 04 xx
        let i = d(&[0xc7, 0x44, 0x24, 0x04, 0x2a, 0x00, 0x00, 0x00]);
        assert_eq!(i.to_string(), "mov [esp+0x4],0x2a");
        assert_eq!(
            i.imm_loc,
            Some(FieldLoc {
                offset: 4,
                width: 4
            })
        );
    }

    #[test]
    fn decodes_branches() {
        let i = d(&[0x79, 0x05]);
        assert_eq!(i.to_string(), "jns .+0x5");
        assert_eq!(
            i.rel_loc,
            Some(FieldLoc {
                offset: 1,
                width: 1
            })
        );

        let i = d(&[0xe8, 0x10, 0x00, 0x00, 0x00]);
        assert_eq!(i.mnemonic, Mnemonic::Call);
        assert_eq!(
            i.rel_loc,
            Some(FieldLoc {
                offset: 1,
                width: 4
            })
        );

        let i = d(&[0x0f, 0x84, 0x00, 0x01, 0x00, 0x00]);
        assert_eq!(i.to_string(), "je .+0x100");
        assert_eq!(i.len, 6);

        let i = d(&[0xeb, 0xc3]);
        assert_eq!(i.mnemonic, Mnemonic::Jmp);
        assert_eq!(i.ops[0], Operand::Rel(-0x3d));
    }

    #[test]
    fn decodes_sib_scaled_index() {
        // mov eax,[ebx+esi*4+8] => 8b 44 b3 08
        let i = d(&[0x8b, 0x44, 0xb3, 0x08]);
        assert_eq!(i.to_string(), "mov eax,[ebx+esi*4+0x8]");
    }

    #[test]
    fn decodes_abs_disp32() {
        // mov eax,[0x8049000] => a1 ...
        let i = d(&[0xa1, 0x00, 0x90, 0x04, 0x08]);
        assert_eq!(i.to_string(), "mov eax,[0x8049000]");
        // inc dword [0x8049000] => ff 05 ...
        let i = d(&[0xff, 0x05, 0x00, 0x90, 0x04, 0x08]);
        assert_eq!(i.to_string(), "inc [0x8049000]");
    }

    #[test]
    fn rejects_invalid() {
        assert!(decode(&[0x0f, 0x05]).is_err()); // syscall (64-bit only)
        assert!(decode(&[0xf0]).is_err()); // lock prefix unsupported
        assert!(decode(&[0x66, 0x90]).is_err()); // operand-size prefix unsupported
        assert!(decode(&[]).is_err());
        assert!(decode(&[0x81]).is_err()); // truncated
    }

    #[test]
    fn decodes_group3() {
        let i = d(&[0xf7, 0xd8]);
        assert_eq!(i.to_string(), "neg eax");
        let i = d(&[0xf7, 0xe3]);
        assert_eq!(i.to_string(), "mul ebx");
        let i = d(&[0xf7, 0xf9]);
        assert_eq!(i.to_string(), "idiv ecx");
        let i = d(&[0xf6, 0xd3]);
        assert_eq!(i.to_string(), "not bl");
    }

    #[test]
    fn decodes_ret_imm() {
        let i = d(&[0xc2, 0x08, 0x00]);
        assert_eq!(i.mnemonic, Mnemonic::Ret);
        assert_eq!(i.ops[0], Operand::Imm(8));
        assert_eq!(i.len, 3);
    }

    #[test]
    fn decodes_indirect_control() {
        let i = d(&[0xff, 0xd0]);
        assert_eq!(i.mnemonic, Mnemonic::CallInd);
        assert_eq!(i.ops[0], Operand::from(Reg32::Eax));
        let i = d(&[0xff, 0xe4]);
        assert_eq!(i.mnemonic, Mnemonic::JmpInd);
        assert_eq!(i.ops[0], Operand::from(Reg32::Esp));
    }

    #[test]
    fn decode_run_stops_at_invalid() {
        let code = [0x55, 0x89, 0xe5, 0xf0, 0x90];
        let run = decode_run(&code, 10);
        assert_eq!(run.len(), 2);
    }

    #[test]
    fn never_panics_on_arbitrary_bytes() {
        // Cheap deterministic fuzz; the proptest suite goes further.
        let mut state = 0x12345678u32;
        for _ in 0..20000 {
            let mut buf = [0u8; 16];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = decode(&buf);
        }
    }
}
