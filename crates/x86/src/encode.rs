//! An x86-32 assembler with labels and symbol fixups.
//!
//! [`Asm`] is a byte-buffer builder with one typed emitter method per
//! instruction form. Branch targets are expressed through [`Label`]s
//! resolved at [`Asm::finish`]; references to other functions or global
//! data are expressed through named symbols, which `finish` returns as
//! relocation requests for the image layer to resolve.

use std::collections::HashMap;
use std::fmt;

use crate::insn::{AluOp, Cond, Mem, ShiftOp};
use crate::reg::{Reg32, Reg8};

/// A forward- or backward-referenced position in the instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// The kind of relocation a symbol reference needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocKind {
    /// 32-bit displacement relative to the end of the field.
    Rel32,
    /// 32-bit absolute virtual address.
    Abs32,
}

/// A symbol reference left unresolved by the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymReloc {
    /// Byte offset of the 4-byte field within the emitted code.
    pub offset: usize,
    /// Symbol the field refers to.
    pub symbol: String,
    /// How the field is to be patched.
    pub kind: RelocKind,
    /// Constant added to the symbol address.
    pub addend: i32,
}

/// Errors produced when finishing an assembly buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(Label),
    /// A short (rel8) branch target was out of range.
    ShortBranchOutOfRange {
        /// Offset of the branch's displacement field.
        at: usize,
        /// The out-of-range distance.
        distance: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {:?} was never bound", l),
            AsmError::ShortBranchOutOfRange { at, distance } => {
                write!(f, "short branch at {at:#x} out of range ({distance})")
            }
        }
    }
}

impl std::error::Error for AsmError {}

struct LabelFixup {
    /// Offset of the displacement field.
    at: usize,
    /// Width of the displacement field (1 or 4).
    width: u8,
    /// Offset the displacement is relative to (end of instruction).
    base: usize,
    label: Label,
}

/// The assembler buffer.
#[derive(Default)]
pub struct Asm {
    bytes: Vec<u8>,
    labels: Vec<Option<usize>>,
    label_fixups: Vec<LabelFixup>,
    sym_relocs: Vec<SymReloc>,
    /// Offsets at which each named local marker was placed.
    markers: HashMap<String, usize>,
}

/// Finished machine code plus its unresolved symbol references.
#[derive(Debug, Clone)]
pub struct Assembled {
    /// The machine-code bytes.
    pub bytes: Vec<u8>,
    /// Relocations for the image layer.
    pub relocs: Vec<SymReloc>,
    /// Named positions recorded with [`Asm::marker`].
    pub markers: HashMap<String, usize>,
}

impl Asm {
    /// Creates an empty assembler buffer.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current offset in the emitted byte stream.
    pub fn pos(&self) -> usize {
        self.bytes.len()
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0] = Some(self.bytes.len());
    }

    /// Creates a label already bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Records a named marker at the current position (for tests and
    /// for tools that must locate a spot inside emitted code).
    pub fn marker(&mut self, name: impl Into<String>) {
        self.markers.insert(name.into(), self.bytes.len());
    }

    /// Emits raw bytes.
    pub fn db(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Emits a raw 32-bit little-endian value.
    pub fn dd(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn b(&mut self, byte: u8) {
        self.bytes.push(byte);
    }

    fn imm32(&mut self, v: i32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    // ---- ModRM helpers ------------------------------------------------

    fn modrm_reg(&mut self, reg_field: u8, rm: u8) {
        self.b(0xc0 | (reg_field << 3) | rm);
    }

    fn modrm_mem(&mut self, reg_field: u8, mem: Mem) {
        let need_sib = mem.index.is_some() || mem.base == Some(Reg32::Esp);
        match mem.base {
            None => {
                if need_sib {
                    // SIB with no base: mod=00, rm=100, base=101, disp32.
                    self.b((reg_field << 3) | 4);
                    let (idx, scale) = mem.index.expect("index present");
                    assert_ne!(idx, Reg32::Esp, "esp cannot be an index register");
                    self.b(sib_byte(scale, idx.encoding(), 5));
                    self.imm32(mem.disp);
                } else {
                    // mod=00 rm=101: disp32 absolute.
                    self.b((reg_field << 3) | 5);
                    self.imm32(mem.disp);
                }
            }
            Some(base) => {
                // ebp as base with no displacement still needs mod=01 disp8=0.
                let (md, disp8) = if mem.disp == 0 && base != Reg32::Ebp {
                    (0u8, false)
                } else if (-128..=127).contains(&mem.disp) {
                    (1u8, true)
                } else {
                    (2u8, false)
                };
                if need_sib {
                    self.b((md << 6) | (reg_field << 3) | 4);
                    match mem.index {
                        Some((idx, scale)) => {
                            assert_ne!(idx, Reg32::Esp, "esp cannot be an index register");
                            self.b(sib_byte(scale, idx.encoding(), base.encoding()));
                        }
                        None => self.b(sib_byte(1, 4, base.encoding())),
                    }
                } else {
                    self.b((md << 6) | (reg_field << 3) | base.encoding());
                }
                match md {
                    1 => {
                        debug_assert!(disp8 || mem.disp == 0);
                        self.b(mem.disp as i8 as u8);
                    }
                    2 => self.imm32(mem.disp),
                    _ => {}
                }
            }
        }
    }

    // ---- Moves ---------------------------------------------------------

    /// `mov dst, src` (32-bit register to register).
    pub fn mov_rr(&mut self, dst: Reg32, src: Reg32) {
        self.b(0x89);
        self.modrm_reg(src.encoding(), dst.encoding());
    }

    /// `mov dst, imm32`.
    pub fn mov_ri(&mut self, dst: Reg32, imm: i32) {
        self.b(0xb8 + dst.encoding());
        self.imm32(imm);
    }

    /// `mov dst, imm32` where the immediate is the absolute address of
    /// `symbol` plus `addend`.
    pub fn mov_ri_sym(&mut self, dst: Reg32, symbol: impl Into<String>, addend: i32) {
        self.b(0xb8 + dst.encoding());
        self.sym_relocs.push(SymReloc {
            offset: self.bytes.len(),
            symbol: symbol.into(),
            kind: RelocKind::Abs32,
            addend,
        });
        self.imm32(0);
    }

    /// `mov dst, [mem]`.
    pub fn mov_rm(&mut self, dst: Reg32, mem: Mem) {
        self.b(0x8b);
        self.modrm_mem(dst.encoding(), mem);
    }

    /// `mov [mem], src`.
    pub fn mov_mr(&mut self, mem: Mem, src: Reg32) {
        self.b(0x89);
        self.modrm_mem(src.encoding(), mem);
    }

    /// `mov dword [mem], imm32`.
    pub fn mov_mi(&mut self, mem: Mem, imm: i32) {
        self.b(0xc7);
        self.modrm_mem(0, mem);
        self.imm32(imm);
    }

    /// `mov dst, src` (8-bit).
    pub fn mov_rr8(&mut self, dst: Reg8, src: Reg8) {
        self.b(0x88);
        self.modrm_reg(src.encoding(), dst.encoding());
    }

    /// `mov dst, imm8`.
    pub fn mov_ri8(&mut self, dst: Reg8, imm: u8) {
        self.b(0xb0 + dst.encoding());
        self.b(imm);
    }

    /// `mov dst, byte [mem]`.
    pub fn mov_rm8(&mut self, dst: Reg8, mem: Mem) {
        self.b(0x8a);
        self.modrm_mem(dst.encoding(), mem);
    }

    /// `mov byte [mem], src`.
    pub fn mov_mr8(&mut self, mem: Mem, src: Reg8) {
        self.b(0x88);
        self.modrm_mem(src.encoding(), mem);
    }

    /// `mov byte [mem], imm8`.
    pub fn mov_mi8(&mut self, mem: Mem, imm: u8) {
        self.b(0xc6);
        self.modrm_mem(0, mem);
        self.b(imm);
    }

    /// `movzx dst, src8`.
    pub fn movzx_rr8(&mut self, dst: Reg32, src: Reg8) {
        self.b(0x0f);
        self.b(0xb6);
        self.modrm_reg(dst.encoding(), src.encoding());
    }

    /// `movzx dst, byte [mem]`.
    pub fn movzx_rm8(&mut self, dst: Reg32, mem: Mem) {
        self.b(0x0f);
        self.b(0xb6);
        self.modrm_mem(dst.encoding(), mem);
    }

    /// `movsx dst, byte [mem]`.
    pub fn movsx_rm8(&mut self, dst: Reg32, mem: Mem) {
        self.b(0x0f);
        self.b(0xbe);
        self.modrm_mem(dst.encoding(), mem);
    }

    /// `lea dst, [mem]`.
    pub fn lea(&mut self, dst: Reg32, mem: Mem) {
        self.b(0x8d);
        self.modrm_mem(dst.encoding(), mem);
    }

    /// `xchg dst, src`.
    pub fn xchg_rr(&mut self, dst: Reg32, src: Reg32) {
        self.b(0x87);
        self.modrm_reg(src.encoding(), dst.encoding());
    }

    // ---- ALU -----------------------------------------------------------

    /// `op dst, src` (32-bit register-register group-1 ALU operation).
    pub fn alu_rr(&mut self, op: AluOp, dst: Reg32, src: Reg32) {
        self.b(op.encoding() * 8 + 1);
        self.modrm_reg(src.encoding(), dst.encoding());
    }

    /// `op dst, src` (8-bit).
    pub fn alu_rr8(&mut self, op: AluOp, dst: Reg8, src: Reg8) {
        self.b(op.encoding() * 8);
        self.modrm_reg(src.encoding(), dst.encoding());
    }

    /// `op dst, imm` choosing the shortest encoding (`83 ib` or `81 id`).
    pub fn alu_ri(&mut self, op: AluOp, dst: Reg32, imm: i32) {
        if (-128..=127).contains(&imm) {
            self.b(0x83);
            self.modrm_reg(op.encoding(), dst.encoding());
            self.b(imm as i8 as u8);
        } else {
            self.alu_ri32(op, dst, imm);
        }
    }

    /// `op dst, imm32` forcing the 32-bit immediate form. The
    /// accumulator short form (`05 id` etc.) is used for `eax` to match
    /// compiler output.
    pub fn alu_ri32(&mut self, op: AluOp, dst: Reg32, imm: i32) {
        if dst == Reg32::Eax {
            self.b(op.encoding() * 8 + 5);
        } else {
            self.b(0x81);
            self.modrm_reg(op.encoding(), dst.encoding());
        }
        self.imm32(imm);
    }

    /// `op al, imm8`.
    pub fn alu_al_imm8(&mut self, op: AluOp, imm: u8) {
        self.b(op.encoding() * 8 + 4);
        self.b(imm);
    }

    /// `op dst, [mem]`.
    pub fn alu_rm(&mut self, op: AluOp, dst: Reg32, mem: Mem) {
        self.b(op.encoding() * 8 + 3);
        self.modrm_mem(dst.encoding(), mem);
    }

    /// `op [mem], src`.
    pub fn alu_mr(&mut self, op: AluOp, mem: Mem, src: Reg32) {
        self.b(op.encoding() * 8 + 1);
        self.modrm_mem(src.encoding(), mem);
    }

    /// `op dword [mem], imm32`.
    pub fn alu_mi(&mut self, op: AluOp, mem: Mem, imm: i32) {
        if (-128..=127).contains(&imm) {
            self.b(0x83);
            self.modrm_mem(op.encoding(), mem);
            self.b(imm as i8 as u8);
        } else {
            self.b(0x81);
            self.modrm_mem(op.encoding(), mem);
            self.imm32(imm);
        }
    }

    /// `test dst, src` (32-bit).
    pub fn test_rr(&mut self, dst: Reg32, src: Reg32) {
        self.b(0x85);
        self.modrm_reg(src.encoding(), dst.encoding());
    }

    /// `test dst, imm32`.
    pub fn test_ri(&mut self, dst: Reg32, imm: i32) {
        if dst == Reg32::Eax {
            self.b(0xa9);
        } else {
            self.b(0xf7);
            self.modrm_reg(0, dst.encoding());
        }
        self.imm32(imm);
    }

    /// `inc dst`.
    pub fn inc_r(&mut self, dst: Reg32) {
        self.b(0x40 + dst.encoding());
    }

    /// `dec dst`.
    pub fn dec_r(&mut self, dst: Reg32) {
        self.b(0x48 + dst.encoding());
    }

    /// `inc dword [mem]`.
    pub fn inc_m(&mut self, mem: Mem) {
        self.b(0xff);
        self.modrm_mem(0, mem);
    }

    /// `dec dword [mem]`.
    pub fn dec_m(&mut self, mem: Mem) {
        self.b(0xff);
        self.modrm_mem(1, mem);
    }

    /// `neg dst`.
    pub fn neg_r(&mut self, dst: Reg32) {
        self.b(0xf7);
        self.modrm_reg(3, dst.encoding());
    }

    /// `not dst`.
    pub fn not_r(&mut self, dst: Reg32) {
        self.b(0xf7);
        self.modrm_reg(2, dst.encoding());
    }

    /// `mul src` (unsigned `edx:eax = eax * src`).
    pub fn mul_r(&mut self, src: Reg32) {
        self.b(0xf7);
        self.modrm_reg(4, src.encoding());
    }

    /// `imul dst, src`.
    pub fn imul_rr(&mut self, dst: Reg32, src: Reg32) {
        self.b(0x0f);
        self.b(0xaf);
        self.modrm_reg(dst.encoding(), src.encoding());
    }

    /// `imul dst, src, imm32`.
    pub fn imul_rri(&mut self, dst: Reg32, src: Reg32, imm: i32) {
        self.b(0x69);
        self.modrm_reg(dst.encoding(), src.encoding());
        self.imm32(imm);
    }

    /// `div src` (unsigned `eax = edx:eax / src`).
    pub fn div_r(&mut self, src: Reg32) {
        self.b(0xf7);
        self.modrm_reg(6, src.encoding());
    }

    /// `idiv src`.
    pub fn idiv_r(&mut self, src: Reg32) {
        self.b(0xf7);
        self.modrm_reg(7, src.encoding());
    }

    /// `cdq`.
    pub fn cdq(&mut self) {
        self.b(0x99);
    }

    /// `shiftop dst, imm8`.
    pub fn shift_ri(&mut self, op: ShiftOp, dst: Reg32, imm: u8) {
        self.b(0xc1);
        self.modrm_reg(op.encoding(), dst.encoding());
        self.b(imm);
    }

    /// `shiftop dst, cl`.
    pub fn shift_r_cl(&mut self, op: ShiftOp, dst: Reg32) {
        self.b(0xd3);
        self.modrm_reg(op.encoding(), dst.encoding());
    }

    // ---- Stack ----------------------------------------------------------

    /// `push src`.
    pub fn push_r(&mut self, src: Reg32) {
        self.b(0x50 + src.encoding());
    }

    /// `pop dst`.
    pub fn pop_r(&mut self, dst: Reg32) {
        self.b(0x58 + dst.encoding());
    }

    /// `push imm32`.
    pub fn push_i(&mut self, imm: i32) {
        self.b(0x68);
        self.imm32(imm);
    }

    /// `push imm32` whose value is the absolute address of `symbol`.
    pub fn push_i_sym(&mut self, symbol: impl Into<String>, addend: i32) {
        self.b(0x68);
        self.sym_relocs.push(SymReloc {
            offset: self.bytes.len(),
            symbol: symbol.into(),
            kind: RelocKind::Abs32,
            addend,
        });
        self.imm32(0);
    }

    /// `push dword [mem]`.
    pub fn push_m(&mut self, mem: Mem) {
        self.b(0xff);
        self.modrm_mem(6, mem);
    }

    /// `pop dword [mem]`.
    pub fn pop_m(&mut self, mem: Mem) {
        self.b(0x8f);
        self.modrm_mem(0, mem);
    }

    /// `pushad`.
    pub fn pushad(&mut self) {
        self.b(0x60);
    }

    /// `popad`.
    pub fn popad(&mut self) {
        self.b(0x61);
    }

    /// `pushfd`.
    pub fn pushfd(&mut self) {
        self.b(0x9c);
    }

    /// `popfd`.
    pub fn popfd(&mut self) {
        self.b(0x9d);
    }

    // ---- Control flow ----------------------------------------------------

    /// `jmp label` (rel32 form).
    pub fn jmp(&mut self, label: Label) {
        self.b(0xe9);
        self.branch_fixup(label, 4);
    }

    /// `jmp label` (rel8 form; errors at `finish` if out of range).
    pub fn jmp_short(&mut self, label: Label) {
        self.b(0xeb);
        self.branch_fixup(label, 1);
    }

    /// `jcc label` (rel32 form).
    pub fn jcc(&mut self, cond: Cond, label: Label) {
        self.b(0x0f);
        self.b(0x80 + cond.encoding());
        self.branch_fixup(label, 4);
    }

    /// `jcc label` (rel8 form).
    pub fn jcc_short(&mut self, cond: Cond, label: Label) {
        self.b(0x70 + cond.encoding());
        self.branch_fixup(label, 1);
    }

    /// `setcc dst`.
    pub fn setcc(&mut self, cond: Cond, dst: Reg8) {
        self.b(0x0f);
        self.b(0x90 + cond.encoding());
        self.modrm_reg(0, dst.encoding());
    }

    /// `cmovcc dst, src`.
    pub fn cmovcc(&mut self, cond: Cond, dst: Reg32, src: Reg32) {
        self.b(0x0f);
        self.b(0x40 + cond.encoding());
        self.modrm_reg(dst.encoding(), src.encoding());
    }

    /// `call label` within the same assembly buffer.
    pub fn call_label(&mut self, label: Label) {
        self.b(0xe8);
        self.branch_fixup(label, 4);
    }

    /// `call symbol` (rel32, resolved by the image layer).
    pub fn call_sym(&mut self, symbol: impl Into<String>) {
        self.b(0xe8);
        self.sym_relocs.push(SymReloc {
            offset: self.bytes.len(),
            symbol: symbol.into(),
            kind: RelocKind::Rel32,
            addend: 0,
        });
        self.imm32(0);
    }

    /// `call reg`.
    pub fn call_r(&mut self, reg: Reg32) {
        self.b(0xff);
        self.modrm_reg(2, reg.encoding());
    }

    /// `jmp reg`.
    pub fn jmp_r(&mut self, reg: Reg32) {
        self.b(0xff);
        self.modrm_reg(4, reg.encoding());
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.b(0xc3);
    }

    /// `ret imm16`.
    pub fn ret_imm(&mut self, n: u16) {
        self.b(0xc2);
        self.bytes.extend_from_slice(&n.to_le_bytes());
    }

    /// `retf`.
    pub fn retf(&mut self) {
        self.b(0xcb);
    }

    /// `leave`.
    pub fn leave(&mut self) {
        self.b(0xc9);
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.b(0x90);
    }

    /// `int imm8`.
    pub fn int(&mut self, n: u8) {
        self.b(0xcd);
        self.b(n);
    }

    /// `hlt`.
    pub fn hlt(&mut self) {
        self.b(0xf4);
    }

    fn branch_fixup(&mut self, label: Label, width: u8) {
        let at = self.bytes.len();
        for _ in 0..width {
            self.b(0);
        }
        self.label_fixups.push(LabelFixup {
            at,
            width,
            base: self.bytes.len(),
            label,
        });
    }

    /// Resolves all label fixups and returns the final machine code
    /// plus outstanding symbol relocations.
    pub fn finish(mut self) -> Result<Assembled, AsmError> {
        for f in &self.label_fixups {
            let target = self.labels[f.label.0].ok_or(AsmError::UnboundLabel(f.label))?;
            let distance = target as i64 - f.base as i64;
            match f.width {
                1 => {
                    if !(-128..=127).contains(&distance) {
                        return Err(AsmError::ShortBranchOutOfRange { at: f.at, distance });
                    }
                    self.bytes[f.at] = distance as i8 as u8;
                }
                4 => {
                    let d = (distance as i32).to_le_bytes();
                    self.bytes[f.at..f.at + 4].copy_from_slice(&d);
                }
                _ => unreachable!("branch width is 1 or 4"),
            }
        }
        Ok(Assembled {
            bytes: self.bytes,
            relocs: self.sym_relocs,
            markers: self.markers,
        })
    }
}

fn sib_byte(scale: u8, index: u8, base: u8) -> u8 {
    let ss = match scale {
        1 => 0,
        2 => 1,
        4 => 2,
        8 => 3,
        _ => panic!("invalid SIB scale {scale}"),
    };
    (ss << 6) | (index << 3) | base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn roundtrip(f: impl FnOnce(&mut Asm), expect: &str) {
        let mut a = Asm::new();
        f(&mut a);
        let out = a.finish().expect("assembles");
        let insn = decode(&out.bytes).expect("decodes");
        assert_eq!(insn.to_string(), expect);
        assert_eq!(insn.len as usize, out.bytes.len(), "full length consumed");
    }

    #[test]
    fn encodes_moves() {
        roundtrip(|a| a.mov_rr(Reg32::Ebp, Reg32::Esp), "mov ebp,esp");
        roundtrip(|a| a.mov_ri(Reg32::Eax, 1), "mov eax,0x1");
        roundtrip(
            |a| a.mov_rm(Reg32::Eax, Mem::base_disp(Reg32::Ebp, -4)),
            "mov eax,[ebp-0x4]",
        );
        roundtrip(
            |a| a.mov_mr(Mem::base(Reg32::Esp), Reg32::Eax),
            "mov [esp],eax",
        );
        roundtrip(
            |a| a.mov_mi(Mem::base_disp(Reg32::Esp, 4), 42),
            "mov [esp+0x4],0x2a",
        );
        roundtrip(|a| a.mov_rr8(Reg8::Al, Reg8::Ch), "mov al,ch");
        roundtrip(|a| a.mov_ri8(Reg8::Bl, 7), "mov bl,0x7");
        roundtrip(
            |a| a.mov_mi8(Mem::base_disp(Reg32::Ecx, 7), 0xc3),
            "mov byte [ecx+0x7],0xc3",
        );
    }

    #[test]
    fn encodes_alu() {
        roundtrip(
            |a| a.alu_rr(AluOp::Add, Reg32::Esi, Reg32::Eax),
            "add esi,eax",
        );
        roundtrip(|a| a.alu_ri(AluOp::Sub, Reg32::Esp, 24), "sub esp,0x18");
        roundtrip(
            |a| a.alu_ri(AluOp::Add, Reg32::Ecx, 0x1000),
            "add ecx,0x1000",
        );
        roundtrip(|a| a.alu_ri32(AluOp::Add, Reg32::Eax, 5), "add eax,0x5");
        roundtrip(|a| a.alu_ri32(AluOp::Xor, Reg32::Ebx, 3), "xor ebx,0x3");
        roundtrip(
            |a| a.alu_rm(AluOp::Xor, Reg32::Edx, Mem::base(Reg32::Eax)),
            "xor edx,[eax]",
        );
        roundtrip(
            |a| a.alu_mr(AluOp::Add, Mem::base(Reg32::Ecx), Reg32::Eax),
            "add [ecx],eax",
        );
        roundtrip(|a| a.alu_rr8(AluOp::Add, Reg8::Bl, Reg8::Ch), "add bl,ch");
        roundtrip(|a| a.alu_al_imm8(AluOp::And, 0), "and al,0x0");
        roundtrip(|a| a.test_rr(Reg32::Eax, Reg32::Eax), "test eax,eax");
        roundtrip(|a| a.neg_r(Reg32::Eax), "neg eax");
        roundtrip(|a| a.imul_rr(Reg32::Eax, Reg32::Ebx), "imul eax,ebx");
        roundtrip(|a| a.shift_ri(ShiftOp::Sar, Reg32::Eax, 31), "sar eax,0x1f");
        roundtrip(|a| a.shift_r_cl(ShiftOp::Shl, Reg32::Edx), "shl edx,cl");
    }

    #[test]
    fn encodes_stack_and_misc() {
        roundtrip(|a| a.push_r(Reg32::Ebp), "push ebp");
        roundtrip(|a| a.pop_r(Reg32::Esp), "pop esp");
        roundtrip(|a| a.push_i(-1), "push 0xffffffffffffffff");
        roundtrip(|a| a.pushad(), "pushad");
        roundtrip(|a| a.leave(), "leave");
        roundtrip(|a| a.ret(), "ret");
        roundtrip(|a| a.retf(), "retf");
        roundtrip(|a| a.int(0x80), "int 0x80");
        roundtrip(|a| a.setcc(Cond::Ne, Reg8::Al), "setne al");
        roundtrip(
            |a| a.cmovcc(Cond::E, Reg32::Eax, Reg32::Ebx),
            "cmove eax,ebx",
        );
        roundtrip(
            |a| a.lea(Reg32::Eax, Mem::base_disp(Reg32::Esp, 8)),
            "lea eax,[esp+0x8]",
        );
        roundtrip(|a| a.call_r(Reg32::Eax), "call eax");
        roundtrip(|a| a.cdq(), "cdq");
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Asm::new();
        let top = a.here();
        let end = a.label();
        a.jcc(Cond::E, end); // forward
        a.nop();
        a.jmp(top); // backward
        a.bind(end);
        a.ret();
        let out = a.finish().unwrap();
        // jcc e rel32: 0f 84 <rel>. Target = after jmp (offset 12), base = 6.
        assert_eq!(&out.bytes[..2], &[0x0f, 0x84]);
        let rel = i32::from_le_bytes(out.bytes[2..6].try_into().unwrap());
        assert_eq!(rel, 6); // 12 - 6
        let jmp_rel = i32::from_le_bytes(out.bytes[8..12].try_into().unwrap());
        assert_eq!(jmp_rel, -12);
    }

    #[test]
    fn short_branch_range_enforced() {
        let mut a = Asm::new();
        let end = a.label();
        a.jmp_short(end);
        for _ in 0..200 {
            a.nop();
        }
        a.bind(end);
        assert!(matches!(
            a.finish(),
            Err(AsmError::ShortBranchOutOfRange { .. })
        ));
    }

    #[test]
    fn unbound_label_rejected() {
        let mut a = Asm::new();
        let l = a.label();
        a.jmp(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn sym_relocs_recorded() {
        let mut a = Asm::new();
        a.call_sym("check_ptrace");
        a.mov_ri_sym(Reg32::Ebx, "globals", 8);
        let out = a.finish().unwrap();
        assert_eq!(out.relocs.len(), 2);
        assert_eq!(out.relocs[0].kind, RelocKind::Rel32);
        assert_eq!(out.relocs[0].offset, 1);
        assert_eq!(out.relocs[0].symbol, "check_ptrace");
        assert_eq!(out.relocs[1].kind, RelocKind::Abs32);
        assert_eq!(out.relocs[1].addend, 8);
    }

    #[test]
    fn ebp_base_gets_disp8_zero() {
        // [ebp] must encode as mod=01 disp8=0, not mod=00 (which means disp32).
        let mut a = Asm::new();
        a.mov_rm(Reg32::Eax, Mem::base(Reg32::Ebp));
        let out = a.finish().unwrap();
        assert_eq!(out.bytes, vec![0x8b, 0x45, 0x00]);
        let i = decode(&out.bytes).unwrap();
        assert_eq!(i.to_string(), "mov eax,[ebp]");
    }

    #[test]
    fn scaled_index_roundtrip() {
        roundtrip(
            |a| {
                a.mov_rm(
                    Reg32::Eax,
                    Mem {
                        base: Some(Reg32::Ebx),
                        index: Some((Reg32::Esi, 4)),
                        disp: 8,
                    },
                )
            },
            "mov eax,[ebx+esi*4+0x8]",
        );
    }

    #[test]
    fn markers_record_positions() {
        let mut a = Asm::new();
        a.nop();
        a.marker("spot");
        a.ret();
        let out = a.finish().unwrap();
        assert_eq!(out.markers["spot"], 1);
    }
}
