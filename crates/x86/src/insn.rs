//! The decoded-instruction model shared by the assembler, disassembler,
//! emulator, and gadget classifier.

use core::fmt;

use crate::reg::{Reg, Reg32};

/// Condition codes for `jcc`, `setcc`, and `cmovcc`.
///
/// The discriminant equals the low nibble of the opcode (`0x70 + cc`,
/// `0x0f 0x80 + cc`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow (`OF = 1`).
    O = 0x0,
    /// No overflow (`OF = 0`).
    No = 0x1,
    /// Below / carry (`CF = 1`).
    B = 0x2,
    /// Above or equal / no carry (`CF = 0`).
    Ae = 0x3,
    /// Equal / zero (`ZF = 1`).
    E = 0x4,
    /// Not equal / non-zero (`ZF = 0`).
    Ne = 0x5,
    /// Below or equal (`CF = 1 || ZF = 1`).
    Be = 0x6,
    /// Above (`CF = 0 && ZF = 0`).
    A = 0x7,
    /// Sign (`SF = 1`).
    S = 0x8,
    /// No sign (`SF = 0`).
    Ns = 0x9,
    /// Parity even (`PF = 1`).
    P = 0xa,
    /// Parity odd (`PF = 0`).
    Np = 0xb,
    /// Less (`SF != OF`).
    L = 0xc,
    /// Greater or equal (`SF = OF`).
    Ge = 0xd,
    /// Less or equal (`ZF = 1 || SF != OF`).
    Le = 0xe,
    /// Greater (`ZF = 0 && SF = OF`).
    G = 0xf,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// Decodes a condition from the low nibble of its opcode.
    #[inline]
    pub fn from_encoding(enc: u8) -> Cond {
        Cond::ALL[(enc & 0xf) as usize]
    }

    /// Hardware encoding (0–15).
    #[inline]
    pub fn encoding(self) -> u8 {
        self as u8
    }

    /// The negated condition (flips the lowest encoding bit).
    pub fn negate(self) -> Cond {
        Cond::from_encoding(self.encoding() ^ 1)
    }

    /// Mnemonic suffix, e.g. `"ns"` for [`Cond::Ns`].
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::O => "o",
            Cond::No => "no",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::P => "p",
            Cond::Np => "np",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }
}

/// Operand size of an instruction's data operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSize {
    /// 8-bit operation.
    Byte,
    /// 32-bit operation.
    Dword,
}

impl OpSize {
    /// Width in bytes (1 or 4).
    pub fn bytes(self) -> u8 {
        match self {
            OpSize::Byte => 1,
            OpSize::Dword => 4,
        }
    }
}

/// A memory operand: `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mem {
    /// Base register, if any.
    pub base: Option<Reg32>,
    /// Index register and scale (1, 2, 4, or 8), if any.
    pub index: Option<(Reg32, u8)>,
    /// Constant displacement.
    pub disp: i32,
}

impl Mem {
    /// `[base]`
    pub fn base(base: Reg32) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp: 0,
        }
    }

    /// `[base + disp]`
    pub fn base_disp(base: Reg32, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `[disp]` (absolute address).
    pub fn abs(disp: i32) -> Mem {
        Mem {
            base: None,
            index: None,
            disp,
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                write!(f, "+")?;
            }
            write!(f, "{i}*{s}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp < 0 {
                    write!(f, "-{:#x}", -(self.disp as i64))?;
                } else {
                    write!(f, "+{:#x}", self.disp)?;
                }
            } else {
                write!(f, "{:#x}", self.disp as u32)?;
            }
        }
        write!(f, "]")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An immediate constant (sign-extended to `i64`).
    Imm(i64),
    /// A memory reference.
    Mem(Mem),
    /// A relative branch displacement (from the end of the instruction).
    Rel(i32),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The 32-bit register, if this operand is one.
    pub fn reg32(&self) -> Option<Reg32> {
        match self {
            Operand::Reg(Reg::R32(r)) => Some(*r),
            _ => None,
        }
    }

    /// The immediate value, if this operand is one.
    pub fn imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(*v),
            _ => None,
        }
    }

    /// The memory reference, if this operand is one.
    pub fn mem(&self) -> Option<Mem> {
        match self {
            Operand::Mem(m) => Some(*m),
            _ => None,
        }
    }
}

impl From<Reg32> for Operand {
    fn from(r: Reg32) -> Operand {
        Operand::Reg(Reg::R32(r))
    }
}

impl From<crate::reg::Reg8> for Operand {
    fn from(r: crate::reg::Reg8) -> Operand {
        Operand::Reg(Reg::R8(r))
    }
}

impl From<Mem> for Operand {
    fn from(m: Mem) -> Operand {
        Operand::Mem(m)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => r.fmt(f),
            Operand::Imm(v) => write!(f, "{:#x}", v),
            Operand::Mem(m) => m.fmt(f),
            Operand::Rel(d) => write!(f, ".{:+#x}", d),
        }
    }
}

/// ALU operation selector shared by the group-1 opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Bitwise OR.
    Or,
    /// Add with carry.
    Adc,
    /// Subtract with borrow.
    Sbb,
    /// Bitwise AND.
    And,
    /// Subtraction.
    Sub,
    /// Bitwise XOR.
    Xor,
    /// Compare (subtraction discarding the result).
    Cmp,
}

impl AluOp {
    /// All eight operations in group-1 `/r` encoding order.
    pub const ALL: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Or,
        AluOp::Adc,
        AluOp::Sbb,
        AluOp::And,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::Cmp,
    ];

    /// Group-1 `/r` encoding (0–7).
    pub fn encoding(self) -> u8 {
        AluOp::ALL.iter().position(|&o| o == self).unwrap() as u8
    }

    /// Mnemonic text.
    pub fn name(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Or => "or",
            AluOp::Adc => "adc",
            AluOp::Sbb => "sbb",
            AluOp::And => "and",
            AluOp::Sub => "sub",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
        }
    }
}

/// Shift operation selector for the `c0`/`c1`/`d0`–`d3` groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Rotate left.
    Rol,
    /// Rotate right.
    Ror,
    /// Shift left (same as `sal`).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
}

impl ShiftOp {
    /// Group encoding (`/r` field); returns `None` for unused slots.
    pub fn from_encoding(enc: u8) -> Option<ShiftOp> {
        match enc {
            0 => Some(ShiftOp::Rol),
            1 => Some(ShiftOp::Ror),
            4 | 6 => Some(ShiftOp::Shl),
            5 => Some(ShiftOp::Shr),
            7 => Some(ShiftOp::Sar),
            _ => None,
        }
    }

    /// Canonical `/r` encoding.
    pub fn encoding(self) -> u8 {
        match self {
            ShiftOp::Rol => 0,
            ShiftOp::Ror => 1,
            ShiftOp::Shl => 4,
            ShiftOp::Shr => 5,
            ShiftOp::Sar => 7,
        }
    }

    /// Mnemonic text.
    pub fn name(self) -> &'static str {
        match self {
            ShiftOp::Rol => "rol",
            ShiftOp::Ror => "ror",
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

/// Instruction mnemonics understood by the toolchain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mnemonic {
    /// Group-1 ALU operation (`add`, `sub`, `xor`, …).
    Alu(AluOp),
    /// Data move.
    Mov,
    /// Load effective address.
    Lea,
    /// Logical compare (AND discarding the result).
    Test,
    /// Exchange.
    Xchg,
    /// Push onto the stack.
    Push,
    /// Pop from the stack.
    Pop,
    /// Increment by one.
    Inc,
    /// Decrement by one.
    Dec,
    /// Two's-complement negation.
    Neg,
    /// One's-complement negation.
    Not,
    /// Unsigned multiply (`edx:eax = eax * rm`).
    Mul,
    /// Signed multiply.
    Imul,
    /// Unsigned divide (`eax = edx:eax / rm`, `edx =` remainder).
    Div,
    /// Signed divide.
    Idiv,
    /// Shift or rotate.
    Shift(ShiftOp),
    /// Unconditional relative jump.
    Jmp,
    /// Indirect jump through a register or memory operand.
    JmpInd,
    /// Conditional relative jump.
    Jcc(Cond),
    /// Set byte on condition.
    Setcc(Cond),
    /// Conditional move.
    Cmovcc(Cond),
    /// Relative call.
    Call,
    /// Indirect call through a register or memory operand.
    CallInd,
    /// Near return (optionally releasing stack bytes).
    Ret,
    /// Far return.
    Retf,
    /// `mov esp, ebp; pop ebp`.
    Leave,
    /// No operation.
    Nop,
    /// Push all general-purpose registers.
    Pushad,
    /// Pop all general-purpose registers.
    Popad,
    /// Push the flags register.
    Pushfd,
    /// Pop the flags register.
    Popfd,
    /// Sign-extend `ax` into `eax`.
    Cwde,
    /// Sign-extend `eax` into `edx:eax`.
    Cdq,
    /// Software interrupt.
    Int,
    /// Breakpoint (`int3`).
    Int3,
    /// Halt.
    Hlt,
    /// Clear carry flag.
    Clc,
    /// Set carry flag.
    Stc,
    /// Complement carry flag.
    Cmc,
    /// Zero-extending move from a narrower operand.
    Movzx,
    /// Sign-extending move from a narrower operand.
    Movsx,
}

impl Mnemonic {
    /// Mnemonic text, e.g. `"jns"` or `"add"`.
    pub fn name(self) -> String {
        match self {
            Mnemonic::Alu(op) => op.name().to_owned(),
            Mnemonic::Mov => "mov".to_owned(),
            Mnemonic::Lea => "lea".to_owned(),
            Mnemonic::Test => "test".to_owned(),
            Mnemonic::Xchg => "xchg".to_owned(),
            Mnemonic::Push => "push".to_owned(),
            Mnemonic::Pop => "pop".to_owned(),
            Mnemonic::Inc => "inc".to_owned(),
            Mnemonic::Dec => "dec".to_owned(),
            Mnemonic::Neg => "neg".to_owned(),
            Mnemonic::Not => "not".to_owned(),
            Mnemonic::Mul => "mul".to_owned(),
            Mnemonic::Imul => "imul".to_owned(),
            Mnemonic::Div => "div".to_owned(),
            Mnemonic::Idiv => "idiv".to_owned(),
            Mnemonic::Shift(op) => op.name().to_owned(),
            Mnemonic::Jmp => "jmp".to_owned(),
            Mnemonic::JmpInd => "jmp".to_owned(),
            Mnemonic::Jcc(c) => format!("j{}", c.suffix()),
            Mnemonic::Setcc(c) => format!("set{}", c.suffix()),
            Mnemonic::Cmovcc(c) => format!("cmov{}", c.suffix()),
            Mnemonic::Call => "call".to_owned(),
            Mnemonic::CallInd => "call".to_owned(),
            Mnemonic::Ret => "ret".to_owned(),
            Mnemonic::Retf => "retf".to_owned(),
            Mnemonic::Leave => "leave".to_owned(),
            Mnemonic::Nop => "nop".to_owned(),
            Mnemonic::Pushad => "pushad".to_owned(),
            Mnemonic::Popad => "popad".to_owned(),
            Mnemonic::Pushfd => "pushfd".to_owned(),
            Mnemonic::Popfd => "popfd".to_owned(),
            Mnemonic::Cwde => "cwde".to_owned(),
            Mnemonic::Cdq => "cdq".to_owned(),
            Mnemonic::Int => "int".to_owned(),
            Mnemonic::Int3 => "int3".to_owned(),
            Mnemonic::Hlt => "hlt".to_owned(),
            Mnemonic::Clc => "clc".to_owned(),
            Mnemonic::Stc => "stc".to_owned(),
            Mnemonic::Cmc => "cmc".to_owned(),
            Mnemonic::Movzx => "movzx".to_owned(),
            Mnemonic::Movsx => "movsx".to_owned(),
        }
    }
}

/// Byte range of a field inside an instruction encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldLoc {
    /// Offset of the field from the start of the instruction, in bytes.
    pub offset: u8,
    /// Width of the field in bytes.
    pub width: u8,
}

/// A fully decoded instruction.
///
/// Besides the semantic content (mnemonic, operands, operand size), the
/// structure records where immediates, displacements, and relative
/// branch offsets live *inside the encoding*. The binary-rewriting
/// rules of Parallax (modified immediates, jump-offset alignment) patch
/// those bytes in place, so their exact positions matter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Insn {
    /// The operation.
    pub mnemonic: Mnemonic,
    /// Operands in Intel order (destination first).
    pub ops: Vec<Operand>,
    /// Data operand size.
    pub size: OpSize,
    /// Total encoded length in bytes.
    pub len: u8,
    /// Location of the immediate field, if any.
    pub imm_loc: Option<FieldLoc>,
    /// Location of the memory displacement field, if any.
    pub disp_loc: Option<FieldLoc>,
    /// Location of the relative branch offset field, if any.
    pub rel_loc: Option<FieldLoc>,
}

impl Insn {
    /// Creates an instruction with no recorded field locations.
    pub fn new(mnemonic: Mnemonic, ops: Vec<Operand>, size: OpSize, len: u8) -> Insn {
        Insn {
            mnemonic,
            ops,
            size,
            len,
            imm_loc: None,
            disp_loc: None,
            rel_loc: None,
        }
    }

    /// True if the instruction ends a basic block (returns, jumps,
    /// calls, halts, or software interrupts).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.mnemonic,
            Mnemonic::Ret
                | Mnemonic::Retf
                | Mnemonic::Jmp
                | Mnemonic::JmpInd
                | Mnemonic::Jcc(_)
                | Mnemonic::Hlt
        )
    }

    /// True for near and far returns.
    pub fn is_ret(&self) -> bool {
        matches!(self.mnemonic, Mnemonic::Ret | Mnemonic::Retf)
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic.name())?;
        let mut first = true;
        for op in &self.ops {
            if first {
                write!(f, " ")?;
                first = false;
            } else {
                write!(f, ",")?;
            }
            // Annotate byte-sized memory operands the way disassemblers do.
            if let Operand::Mem(m) = op {
                if self.size == OpSize::Byte {
                    write!(f, "byte {m}")?;
                    continue;
                }
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg8;

    #[test]
    fn cond_negate() {
        assert_eq!(Cond::E.negate(), Cond::Ne);
        assert_eq!(Cond::Ns.negate(), Cond::S);
        assert_eq!(Cond::L.negate(), Cond::Ge);
    }

    #[test]
    fn cond_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_encoding(c.encoding()), c);
        }
    }

    #[test]
    fn alu_encoding_order() {
        assert_eq!(AluOp::Add.encoding(), 0);
        assert_eq!(AluOp::Cmp.encoding(), 7);
        assert_eq!(AluOp::Xor.encoding(), 6);
    }

    #[test]
    fn shift_roundtrip() {
        for op in [
            ShiftOp::Rol,
            ShiftOp::Ror,
            ShiftOp::Shl,
            ShiftOp::Shr,
            ShiftOp::Sar,
        ] {
            assert_eq!(ShiftOp::from_encoding(op.encoding()), Some(op));
        }
        assert_eq!(ShiftOp::from_encoding(6), Some(ShiftOp::Shl));
        assert_eq!(ShiftOp::from_encoding(2), None);
    }

    #[test]
    fn mem_display() {
        assert_eq!(Mem::base_disp(Reg32::Ecx, 7).to_string(), "[ecx+0x7]");
        assert_eq!(Mem::base_disp(Reg32::Ebp, -8).to_string(), "[ebp-0x8]");
        assert_eq!(Mem::abs(0x8049000).to_string(), "[0x8049000]");
        assert_eq!(Mem::base(Reg32::Esp).to_string(), "[esp]");
    }

    #[test]
    fn insn_display() {
        let i = Insn::new(
            Mnemonic::Alu(AluOp::Add),
            vec![Operand::from(Reg8::Bl), Operand::from(Reg8::Ch)],
            OpSize::Byte,
            2,
        );
        assert_eq!(i.to_string(), "add bl,ch");
        let r = Insn::new(Mnemonic::Ret, vec![], OpSize::Dword, 1);
        assert_eq!(r.to_string(), "ret");
        assert!(r.is_ret());
        assert!(r.is_terminator());
    }
}
