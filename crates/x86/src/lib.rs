//! x86-32 instruction machinery for Parallax.
//!
//! This crate is the syntactic foundation of the Parallax toolchain:
//!
//! * [`reg`] — register definitions with hardware encodings;
//! * [`insn`] — the decoded-instruction model, including the byte
//!   positions of immediates, displacements, and branch offsets inside
//!   each encoding (the binary-rewriting rules patch those in place);
//! * [`mod@decode`] — a conservative decoder safe to run at *any* byte
//!   offset, as required for ROP-gadget scanning of unaligned
//!   instruction sequences;
//! * [`encode`] — an assembler with labels and symbol relocations, used
//!   by the compiler, the rewriter, and the chain loader.
//!
//! ```
//! use parallax_x86::{Asm, decode, Reg32, AluOp};
//!
//! // Assemble...
//! let mut a = Asm::new();
//! a.mov_ri(Reg32::Eax, 0x58);
//! a.alu_rr(AluOp::Add, Reg32::Eax, Reg32::Ecx);
//! a.ret();
//! let code = a.finish().unwrap();
//!
//! // ...and disassemble, at any offset.
//! let i = decode(&code.bytes).unwrap();
//! assert_eq!(i.to_string(), "mov eax,0x58");
//! assert_eq!(i.len, 5);
//! let unaligned = decode(&code.bytes[1..]).unwrap(); // inside the imm!
//! assert_eq!(unaligned.to_string(), "pop eax");
//! ```
//!
//! The supported subset is 32-bit flat-model user code: the group-1 ALU
//! family, moves, stack operations, shifts, multiplies/divides, all
//! conditional and unconditional branches, near and far returns, and
//! `int` for system calls. Prefixed encodings (`0x66`, `lock`, segment
//! overrides) are deliberately rejected so the gadget scanner stays
//! conservative.

#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod insn;
pub mod reg;

pub use decode::{decode, decode_run, DecodeError};
pub use encode::{Asm, AsmError, Assembled, Label, RelocKind, SymReloc};
pub use insn::{AluOp, Cond, FieldLoc, Insn, Mem, Mnemonic, OpSize, Operand, ShiftOp};
pub use reg::{Reg, Reg32, Reg8};
