//! Register definitions for 32-bit x86.

use core::fmt;

/// A 32-bit general-purpose register.
///
/// The discriminant equals the hardware encoding used in ModRM and
/// opcode-embedded register fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Reg32 {
    /// Accumulator.
    Eax = 0,
    /// Counter.
    Ecx = 1,
    /// Data.
    Edx = 2,
    /// Base.
    Ebx = 3,
    /// Stack pointer.
    Esp = 4,
    /// Frame pointer.
    Ebp = 5,
    /// Source index.
    Esi = 6,
    /// Destination index.
    Edi = 7,
}

impl Reg32 {
    /// All eight registers in encoding order.
    pub const ALL: [Reg32; 8] = [
        Reg32::Eax,
        Reg32::Ecx,
        Reg32::Edx,
        Reg32::Ebx,
        Reg32::Esp,
        Reg32::Ebp,
        Reg32::Esi,
        Reg32::Edi,
    ];

    /// Hardware encoding (0–7).
    #[inline]
    pub fn encoding(self) -> u8 {
        self as u8
    }

    /// Decodes a register from its 3-bit hardware encoding.
    #[inline]
    pub fn from_encoding(enc: u8) -> Reg32 {
        Reg32::ALL[(enc & 7) as usize]
    }

    /// Returns the canonical lowercase name, e.g. `"eax"`.
    pub fn name(self) -> &'static str {
        match self {
            Reg32::Eax => "eax",
            Reg32::Ecx => "ecx",
            Reg32::Edx => "edx",
            Reg32::Ebx => "ebx",
            Reg32::Esp => "esp",
            Reg32::Ebp => "ebp",
            Reg32::Esi => "esi",
            Reg32::Edi => "edi",
        }
    }
}

impl fmt::Display for Reg32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An 8-bit register.
///
/// Encodings 0–3 are the low bytes of `eax`, `ecx`, `edx`, `ebx`;
/// encodings 4–7 are the corresponding high bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Reg8 {
    /// Low byte of `eax`.
    Al = 0,
    /// Low byte of `ecx`.
    Cl = 1,
    /// Low byte of `edx`.
    Dl = 2,
    /// Low byte of `ebx`.
    Bl = 3,
    /// Bits 8–15 of `eax`.
    Ah = 4,
    /// Bits 8–15 of `ecx`.
    Ch = 5,
    /// Bits 8–15 of `edx`.
    Dh = 6,
    /// Bits 8–15 of `ebx`.
    Bh = 7,
}

impl Reg8 {
    /// All eight registers in encoding order.
    pub const ALL: [Reg8; 8] = [
        Reg8::Al,
        Reg8::Cl,
        Reg8::Dl,
        Reg8::Bl,
        Reg8::Ah,
        Reg8::Ch,
        Reg8::Dh,
        Reg8::Bh,
    ];

    /// Hardware encoding (0–7).
    #[inline]
    pub fn encoding(self) -> u8 {
        self as u8
    }

    /// Decodes a register from its 3-bit hardware encoding.
    #[inline]
    pub fn from_encoding(enc: u8) -> Reg8 {
        Reg8::ALL[(enc & 7) as usize]
    }

    /// The 32-bit register this byte register aliases.
    pub fn parent(self) -> Reg32 {
        Reg32::from_encoding(self.encoding() & 3)
    }

    /// True for `ah`, `ch`, `dh`, `bh`.
    pub fn is_high(self) -> bool {
        self.encoding() >= 4
    }

    /// Returns the canonical lowercase name, e.g. `"al"`.
    pub fn name(self) -> &'static str {
        match self {
            Reg8::Al => "al",
            Reg8::Cl => "cl",
            Reg8::Dl => "dl",
            Reg8::Bl => "bl",
            Reg8::Ah => "ah",
            Reg8::Ch => "ch",
            Reg8::Dh => "dh",
            Reg8::Bh => "bh",
        }
    }
}

impl fmt::Display for Reg8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A register of either width, as it appears in an operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg {
    /// A 32-bit register.
    R32(Reg32),
    /// An 8-bit register.
    R8(Reg8),
}

impl Reg {
    /// The 32-bit register this operand reads or writes (high-byte
    /// registers map to their parent).
    pub fn parent(self) -> Reg32 {
        match self {
            Reg::R32(r) => r,
            Reg::R8(r) => r.parent(),
        }
    }

    /// Width of the register in bytes (4 or 1).
    pub fn width(self) -> u8 {
        match self {
            Reg::R32(_) => 4,
            Reg::R8(_) => 1,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::R32(r) => r.fmt(f),
            Reg::R8(r) => r.fmt(f),
        }
    }
}

impl From<Reg32> for Reg {
    fn from(r: Reg32) -> Reg {
        Reg::R32(r)
    }
}

impl From<Reg8> for Reg {
    fn from(r: Reg8) -> Reg {
        Reg::R8(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg32_roundtrip() {
        for r in Reg32::ALL {
            assert_eq!(Reg32::from_encoding(r.encoding()), r);
        }
    }

    #[test]
    fn reg8_roundtrip() {
        for r in Reg8::ALL {
            assert_eq!(Reg8::from_encoding(r.encoding()), r);
        }
    }

    #[test]
    fn reg8_parents() {
        assert_eq!(Reg8::Al.parent(), Reg32::Eax);
        assert_eq!(Reg8::Ah.parent(), Reg32::Eax);
        assert_eq!(Reg8::Ch.parent(), Reg32::Ecx);
        assert_eq!(Reg8::Bl.parent(), Reg32::Ebx);
        assert!(Reg8::Ch.is_high());
        assert!(!Reg8::Cl.is_high());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg32::Esp.to_string(), "esp");
        assert_eq!(Reg8::Bh.to_string(), "bh");
        assert_eq!(Reg::from(Reg32::Esi).to_string(), "esi");
    }
}
