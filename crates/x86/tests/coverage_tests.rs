//! Exhaustive coverage tests for the decoder: every one-byte opcode is
//! classified (supported/unsupported), and every ModRM/SIB form of a
//! representative instruction decodes with consistent lengths.

use parallax_x86::{decode, DecodeError, Mnemonic};

/// Bytes long enough to satisfy any operand tail.
const TAIL: [u8; 15] = [
    0x41, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
];

fn try_opcode(op: u8) -> Result<parallax_x86::Insn, DecodeError> {
    let mut buf = vec![op];
    buf.extend_from_slice(&TAIL);
    decode(&buf)
}

/// The exact set of supported one-byte opcodes. A change to the decoder
/// that silently adds or drops support must update this table.
#[test]
fn one_byte_opcode_coverage_is_exactly_as_documented() {
    for op in 0u16..=0xff {
        let op = op as u8;
        // The TAIL's first byte is ModRM 0x41 (= mod 01, reg 0, rm 1):
        // group opcodes therefore select their /0 slot, which is valid
        // for every supported group.
        let supported = match op {
            // Group-1 ALU families: forms /0../5 of each 8-opcode row.
            0x00..=0x3f if (op & 7) < 6 && !matches!(op & 0x38, 0x38) => true,
            0x38..=0x3d => true, // cmp family
            0x0f => true,        // two-byte escape: 0f 41 = cmovno
            0x40..=0x4f => true, // inc/dec
            0x50..=0x5f => true, // push/pop
            0x60 | 0x61 => true, // pushad/popad
            0x68..=0x6b => true,
            0x70..=0x7f => true, // jcc rel8
            0x80 | 0x81 | 0x83 => true,
            0x84..=0x8b => true,
            0x8d => true, // lea (memory tail)
            0x8f => true, // pop r/m, /0
            0x90..=0x99 => true,
            0x9c | 0x9d => true,
            0xa0..=0xa3 => true,
            0xa8 | 0xa9 => true,
            0xb0..=0xbf => true,
            0xc0 | 0xc1 => true, // shift group, /0 = rol
            0xc2 | 0xc3 => true,
            0xc6 | 0xc7 => true, // mov r/m, imm — /0
            0xc9..=0xcd => true,
            0xd0..=0xd3 => true,
            0xe8 | 0xe9 | 0xeb => true,
            0xf4 | 0xf5 => true,
            0xf6 | 0xf7 => true, // group 3, /0 = test imm
            0xf8 | 0xf9 => true,
            0xfe | 0xff => true, // group 4/5, /0 = inc
            _ => false,
        };
        let got = try_opcode(op);
        assert_eq!(
            got.is_ok(),
            supported,
            "opcode {op:#04x}: expected supported={supported}, got {got:?}"
        );
    }
}

/// Every two-byte opcode the decoder supports, by row.
#[test]
fn two_byte_opcode_coverage() {
    for op2 in 0u16..=0xff {
        let op2 = op2 as u8;
        let mut buf = vec![0x0f, op2];
        buf.extend_from_slice(&TAIL);
        let supported = matches!(op2, 0x40..=0x4f | 0x80..=0x8f | 0x90..=0x9f | 0xaf | 0xb6 | 0xbe);
        assert_eq!(decode(&buf).is_ok(), supported, "opcode 0f {op2:#04x}");
    }
}

/// All 256 ModRM bytes for `mov r32, r/m32` decode, and the decoded
/// length always covers opcode + modrm + sib? + disp?.
#[test]
fn all_modrm_forms_decode_with_consistent_lengths() {
    for modrm in 0u16..=0xff {
        let modrm = modrm as u8;
        for sib in [0x00u8, 0x24, 0x65, 0xe5, 0xff] {
            let mut buf = vec![0x8b, modrm, sib];
            buf.extend_from_slice(&[0x11, 0x22, 0x33, 0x44, 0x55, 0x66]);
            let insn = decode(&buf).unwrap_or_else(|e| {
                panic!("mov with modrm {modrm:#04x} sib {sib:#04x} failed: {e}")
            });
            let md = modrm >> 6;
            let rm = modrm & 7;
            let mut expect = 2; // opcode + modrm
            if md != 3 && rm == 4 {
                expect += 1; // sib
                if md == 0 && (sib & 7) == 5 {
                    expect += 4;
                }
            }
            match md {
                0 if rm == 5 => expect += 4,
                1 => expect += 1,
                2 => expect += 4,
                _ => {}
            }
            assert_eq!(
                insn.len, expect,
                "modrm {modrm:#04x} sib {sib:#04x}: {insn}"
            );
            assert_eq!(insn.mnemonic, Mnemonic::Mov);
        }
    }
}

/// Decoding is length-stable: for every supported instruction the
/// reported length never exceeds the input we gave it.
#[test]
fn reported_lengths_are_within_input() {
    for op in 0u16..=0xff {
        let mut buf = vec![op as u8];
        buf.extend_from_slice(&TAIL);
        if let Ok(insn) = decode(&buf) {
            assert!(
                (insn.len as usize) <= buf.len(),
                "opcode {op:#04x} overruns"
            );
            assert!(insn.len >= 1);
        }
    }
}

/// Truncation at every prefix length either decodes identically or
/// reports `Truncated` — never panics, never mis-decodes.
#[test]
fn truncation_behaviour() {
    let samples: &[&[u8]] = &[
        &[0xb8, 0x01, 0x02, 0x03, 0x04],
        &[0x8b, 0x44, 0xb3, 0x08],
        &[0x0f, 0x84, 0x00, 0x01, 0x00, 0x00],
        &[0x81, 0xc1, 0xaa, 0xbb, 0xcc, 0xdd],
        &[0xc7, 0x05, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08],
    ];
    for s in samples {
        let full = decode(s).expect("full decodes");
        assert_eq!(full.len as usize, s.len());
        for cut in 0..s.len() {
            match decode(&s[..cut]) {
                Err(DecodeError::Truncated) => {}
                Err(_) if cut == 0 => {}
                other => panic!("cut {cut} of {s:02x?}: {other:?}"),
            }
        }
    }
}
