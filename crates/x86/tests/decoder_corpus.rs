//! Deterministic adversarial corpus for the decoder.
//!
//! Promotes the `decode_total` property ("decoding never panics on
//! arbitrary bytes") into a regression test over a checked-in corpus
//! of byte strings chosen to hit the decoder's edge cases: overlapping
//! instruction prefixes, truncated ModRM/SIB forms, and immediates or
//! displacements that would span past the end of the buffer. The
//! corpus is exact — a decoder change that starts panicking (or
//! looping) on any of these is caught without property-test luck.

use parallax_x86::{decode, decode_run};

/// Adversarial byte strings. Comments give the intent of each entry;
/// many are *prefixes* of longer valid encodings, so the decoder must
/// fail cleanly at the missing byte rather than read past the end.
const CORPUS: &[&[u8]] = &[
    // Empty and single bytes spanning the opcode map.
    &[],
    &[0x00],
    &[0xff],
    &[0xc3],
    &[0x0f], // two-byte opcode escape, no second byte
    &[0x66], // operand-size prefix alone
    &[0xf0], // lock prefix alone
    &[0xf3], // rep prefix alone
    &[0x67], // address-size prefix alone
    // Prefix pileups (overlapping/redundant prefixes, no opcode).
    &[0x66, 0x66, 0x66],
    &[0xf0, 0xf2, 0xf3, 0x66, 0x67],
    &[0x66, 0x0f], // prefix + escape, truncated
    // Truncated ModRM: opcode present, ModRM byte missing.
    &[0x89],       // mov r/m32, r32
    &[0x8b],       // mov r32, r/m32
    &[0x01],       // add r/m32, r32
    &[0x85],       // test r/m32, r32
    &[0xff, 0x25], // jmp [disp32] with no displacement
    // ModRM demanding a SIB byte that is absent.
    &[0x8b, 0x04], // mod=00 rm=100 → SIB required
    &[0x8b, 0x44], // mod=01 rm=100 → SIB + disp8 required
    &[0x8b, 0x84], // mod=10 rm=100 → SIB + disp32 required
    // SIB present but displacement truncated.
    &[0x8b, 0x04, 0x25],             // SIB says disp32, none follows
    &[0x8b, 0x04, 0x25, 0x78],       // disp32 cut after one byte
    &[0x8b, 0x44, 0x24],             // disp8 missing after SIB
    &[0x8b, 0x84, 0x24, 0x01, 0x02], // disp32 cut after two bytes
    // Direct-displacement forms truncated (mod=00 rm=101 → disp32).
    &[0x8b, 0x05],
    &[0x8b, 0x05, 0x44, 0x33],
    // Immediates spanning past the end of the section/buffer.
    &[0xb8],                   // mov eax, imm32 with no imm
    &[0xb8, 0x11],             // one of four imm bytes
    &[0xb8, 0x11, 0x22, 0x33], // three of four imm bytes
    &[0x68, 0xde, 0xad],       // push imm32, truncated
    &[0xc7, 0x00, 0x01],       // mov [eax], imm32 truncated
    &[0x81, 0xc0, 0x44],       // add eax, imm32 truncated
    &[0x69, 0xc0, 0x10, 0x20], // imul r32, r/m32, imm32 truncated
    &[0x05, 0xff, 0xff, 0xff], // add eax, imm32 truncated
    &[0xa9, 0x01, 0x02, 0x03], // test eax, imm32 truncated
    &[0x66, 0xb8, 0x12],       // 16-bit mov imm truncated
    // Relative branches with truncated offsets.
    &[0xe8],                         // call rel32, no offset
    &[0xe8, 0x01, 0x02, 0x03],       // call rel32, 3 of 4 bytes
    &[0xe9, 0xff],                   // jmp rel32 truncated
    &[0x0f, 0x84, 0x10, 0x20, 0x30], // jz rel32, 3 of 4 bytes
    &[0xeb],                         // jmp rel8, no offset
    &[0x74],                         // jz rel8, no offset
    // Far-return / far-branch oddities.
    &[0xca],       // retf imm16, no imm
    &[0xca, 0x08], // retf imm16, 1 of 2 bytes
    &[0xc2, 0x04], // ret imm16, 1 of 2 bytes
    // Group opcodes with undefined /reg forms.
    &[0xff, 0xff], // FF /7 — undefined
    &[0xff, 0xf8], // FF /7 alternate encoding
    &[0xf6, 0xc8], // F6 /1 — undefined test form
    &[0x8f, 0xc8], // 8F /1 — only /0 (pop) defined
    // Shift group with immediate truncated.
    &[0xc1, 0xe0], // shl eax, imm8 — imm missing
    &[0xc0, 0xe0], // shl al, imm8 — imm missing
    // Overlapping-prefix soup ending inside an instruction (the
    // gadget-discovery case: decoding from a misaligned offset).
    &[0x00, 0xb8, 0x01, 0x00, 0x00], // starts inside a mov
    &[0x00, 0x00, 0x0f, 0xaf],       // escape + imul, no ModRM
    &[0xc3, 0xb8, 0xc3],             // ret; then truncated mov
    &[0x35, 0x90, 0x90, 0x90],       // xor eax, imm32 truncated
    // Interrupt / syscall forms.
    &[0xcd], // int imm8, no vector
    &[0xcc], // int3 — valid single byte
    // Long runs of a single byte (stress the no-progress paths).
    &[0x66; 16],
    &[0x0f; 16],
    &[0x90; 16],
    &[0xff; 16],
    &[0xb8; 16],
    &[0xe8; 16],
];

/// Every corpus entry decodes to `Ok` or a clean `Err` — never a panic,
/// and never a zero-length "instruction" that would stall a scanner.
#[test]
fn corpus_never_panics_and_always_progresses() {
    for (i, bytes) in CORPUS.iter().enumerate() {
        if let Ok(insn) = decode(bytes) {
            assert!(
                insn.len > 0 && insn.len as usize <= bytes.len(),
                "entry {i}: decoded length {} out of range for {} bytes",
                insn.len,
                bytes.len()
            );
        }
    }
}

/// Every *suffix* of every corpus entry is also safe — this is exactly
/// how the gadget scanner consumes bytes (decode at every offset).
#[test]
fn all_suffixes_are_safe() {
    for (i, bytes) in CORPUS.iter().enumerate() {
        for start in 0..bytes.len() {
            let tail = &bytes[start..];
            if let Ok(insn) = decode(tail) {
                assert!(
                    insn.len > 0 && insn.len as usize <= tail.len(),
                    "entry {i} offset {start}: bad decoded length"
                );
            }
        }
    }
}

/// `decode_run` (the scanner's bulk API) terminates on every entry and
/// never claims more bytes than exist.
#[test]
fn decode_run_terminates_within_bounds() {
    for (i, bytes) in CORPUS.iter().enumerate() {
        let insns = decode_run(bytes, 64);
        let total: usize = insns.iter().map(|x| x.len as usize).sum();
        assert!(
            total <= bytes.len(),
            "entry {i}: decode_run consumed {total} of {} bytes",
            bytes.len()
        );
    }
}
