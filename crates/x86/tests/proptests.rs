//! Property-based tests for the x86 encoder/decoder pair.

use proptest::prelude::*;

use parallax_x86::{decode, AluOp, Asm, Cond, Mem, Reg32, Reg8, ShiftOp};

fn reg32() -> impl Strategy<Value = Reg32> {
    (0u8..8).prop_map(Reg32::from_encoding)
}

fn reg8() -> impl Strategy<Value = Reg8> {
    (0u8..8).prop_map(Reg8::from_encoding)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..8).prop_map(|i| AluOp::ALL[i])
}

fn shift_op() -> impl Strategy<Value = ShiftOp> {
    prop_oneof![
        Just(ShiftOp::Rol),
        Just(ShiftOp::Ror),
        Just(ShiftOp::Shl),
        Just(ShiftOp::Shr),
        Just(ShiftOp::Sar),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    (0u8..16).prop_map(Cond::from_encoding)
}

fn mem() -> impl Strategy<Value = Mem> {
    (
        proptest::option::of(reg32()),
        proptest::option::of((
            reg32().prop_filter("esp cannot index", |r| *r != Reg32::Esp),
            0u8..4,
        )),
        any::<i32>(),
    )
        .prop_map(|(base, index, disp)| Mem {
            base,
            index: index.map(|(r, s)| (r, 1u8 << s)),
            disp,
        })
}

/// One random emitter invocation, returning the expected disassembly.
#[derive(Debug, Clone)]
enum Op {
    MovRr(Reg32, Reg32),
    MovRi(Reg32, i32),
    MovRm(Reg32, Mem),
    MovMr(Mem, Reg32),
    MovMi(Mem, i32),
    MovRr8(Reg8, Reg8),
    AluRr(AluOp, Reg32, Reg32),
    AluRi(AluOp, Reg32, i32),
    AluRm(AluOp, Reg32, Mem),
    AluMr(AluOp, Mem, Reg32),
    AluRr8(AluOp, Reg8, Reg8),
    ShiftRi(ShiftOp, Reg32, u8),
    PushR(Reg32),
    PopR(Reg32),
    PushI(i32),
    IncR(Reg32),
    DecR(Reg32),
    NegR(Reg32),
    NotR(Reg32),
    Lea(Reg32, Mem),
    Setcc(Cond, Reg8),
    Cmovcc(Cond, Reg32, Reg32),
    TestRr(Reg32, Reg32),
    Xchg(Reg32, Reg32),
    ImulRr(Reg32, Reg32),
    Ret,
    Retf,
    Leave,
    Nop,
    Int(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (reg32(), reg32()).prop_map(|(a, b)| Op::MovRr(a, b)),
        (reg32(), any::<i32>()).prop_map(|(a, b)| Op::MovRi(a, b)),
        (reg32(), mem()).prop_map(|(a, b)| Op::MovRm(a, b)),
        (mem(), reg32()).prop_map(|(a, b)| Op::MovMr(a, b)),
        (mem(), any::<i32>()).prop_map(|(a, b)| Op::MovMi(a, b)),
        (reg8(), reg8()).prop_map(|(a, b)| Op::MovRr8(a, b)),
        (alu_op(), reg32(), reg32()).prop_map(|(o, a, b)| Op::AluRr(o, a, b)),
        (alu_op(), reg32(), any::<i32>()).prop_map(|(o, a, b)| Op::AluRi(o, a, b)),
        (alu_op(), reg32(), mem()).prop_map(|(o, a, b)| Op::AluRm(o, a, b)),
        (alu_op(), mem(), reg32()).prop_map(|(o, a, b)| Op::AluMr(o, a, b)),
        (alu_op(), reg8(), reg8()).prop_map(|(o, a, b)| Op::AluRr8(o, a, b)),
        (shift_op(), reg32(), 0u8..32).prop_map(|(o, a, b)| Op::ShiftRi(o, a, b)),
        reg32().prop_map(Op::PushR),
        reg32().prop_map(Op::PopR),
        any::<i32>().prop_map(Op::PushI),
        reg32().prop_map(Op::IncR),
        reg32().prop_map(Op::DecR),
        reg32().prop_map(Op::NegR),
        reg32().prop_map(Op::NotR),
        (reg32(), mem()).prop_map(|(a, b)| Op::Lea(a, b)),
        (cond(), reg8()).prop_map(|(c, r)| Op::Setcc(c, r)),
        (cond(), reg32(), reg32()).prop_map(|(c, a, b)| Op::Cmovcc(c, a, b)),
        (reg32(), reg32()).prop_map(|(a, b)| Op::TestRr(a, b)),
        (reg32(), reg32()).prop_map(|(a, b)| Op::Xchg(a, b)),
        (reg32(), reg32()).prop_map(|(a, b)| Op::ImulRr(a, b)),
        Just(Op::Ret),
        Just(Op::Retf),
        Just(Op::Leave),
        Just(Op::Nop),
        any::<u8>().prop_map(Op::Int),
    ]
}

fn emit(a: &mut Asm, op: &Op) {
    match *op {
        Op::MovRr(d, s) => a.mov_rr(d, s),
        Op::MovRi(d, i) => a.mov_ri(d, i),
        Op::MovRm(d, m) => a.mov_rm(d, m),
        Op::MovMr(m, s) => a.mov_mr(m, s),
        Op::MovMi(m, i) => a.mov_mi(m, i),
        Op::MovRr8(d, s) => a.mov_rr8(d, s),
        Op::AluRr(o, d, s) => a.alu_rr(o, d, s),
        Op::AluRi(o, d, i) => a.alu_ri(o, d, i),
        Op::AluRm(o, d, m) => a.alu_rm(o, d, m),
        Op::AluMr(o, m, s) => a.alu_mr(o, m, s),
        Op::AluRr8(o, d, s) => a.alu_rr8(o, d, s),
        Op::ShiftRi(o, d, i) => a.shift_ri(o, d, i),
        Op::PushR(r) => a.push_r(r),
        Op::PopR(r) => a.pop_r(r),
        Op::PushI(i) => a.push_i(i),
        Op::IncR(r) => a.inc_r(r),
        Op::DecR(r) => a.dec_r(r),
        Op::NegR(r) => a.neg_r(r),
        Op::NotR(r) => a.not_r(r),
        Op::Lea(d, m) => a.lea(d, m),
        Op::Setcc(c, r) => a.setcc(c, r),
        Op::Cmovcc(c, d, s) => a.cmovcc(c, d, s),
        Op::TestRr(d, s) => a.test_rr(d, s),
        Op::Xchg(d, s) => a.xchg_rr(d, s),
        Op::ImulRr(d, s) => a.imul_rr(d, s),
        Op::Ret => a.ret(),
        Op::Retf => a.retf(),
        Op::Leave => a.leave(),
        Op::Nop => a.nop(),
        Op::Int(n) => a.int(n),
    }
}

proptest! {
    /// Decoding never panics on arbitrary bytes.
    #[test]
    fn decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
        let _ = decode(&bytes);
    }

    /// Every emitted instruction decodes, and the decoded length equals
    /// the emitted length (so instruction streams re-synchronize).
    #[test]
    fn encode_then_decode(ops in proptest::collection::vec(op(), 1..24)) {
        let mut a = Asm::new();
        let mut lens = Vec::new();
        for o in &ops {
            let before = a.pos();
            emit(&mut a, o);
            lens.push(a.pos() - before);
        }
        let out = a.finish().unwrap();
        let mut pos = 0;
        for (i, expected_len) in lens.iter().enumerate() {
            let insn = decode(&out.bytes[pos..])
                .unwrap_or_else(|e| panic!("op {i} ({:?}) failed to decode: {e}", ops[i]));
            prop_assert_eq!(insn.len as usize, *expected_len, "op {} ({:?})", i, &ops[i]);
            pos += insn.len as usize;
        }
        prop_assert_eq!(pos, out.bytes.len());
    }

    /// Immediate/displacement field locations reported by the decoder
    /// point at the actual little-endian bytes of the value.
    #[test]
    fn field_locations_are_faithful(d in reg32(), m in mem(), imm in any::<i32>()) {
        let mut a = Asm::new();
        a.mov_mi(m, imm);
        a.mov_ri(d, imm);
        let out = a.finish().unwrap();

        let i1 = decode(&out.bytes).unwrap();
        let loc = i1.imm_loc.unwrap();
        prop_assert_eq!(loc.width, 4);
        let raw = &out.bytes[loc.offset as usize..loc.offset as usize + 4];
        prop_assert_eq!(i32::from_le_bytes(raw.try_into().unwrap()), imm);

        if let Some(dloc) = i1.disp_loc {
            let start = dloc.offset as usize;
            let val = match dloc.width {
                1 => out.bytes[start] as i8 as i32,
                4 => i32::from_le_bytes(out.bytes[start..start + 4].try_into().unwrap()),
                _ => unreachable!(),
            };
            prop_assert_eq!(val, m.disp);
        }

        let i2 = decode(&out.bytes[i1.len as usize..]).unwrap();
        let loc2 = i2.imm_loc.unwrap();
        let start = i1.len as usize + loc2.offset as usize;
        let raw2 = &out.bytes[start..start + 4];
        prop_assert_eq!(i32::from_le_bytes(raw2.try_into().unwrap()), imm);
    }
}
