//! Probabilistically generated verification chains (paper §V-B): the
//! chain is never stored; each call assembles a fresh variant from
//! per-position index arrays over a GF(2) basis, verifying a different
//! gadget subset every time.
//!
//! ```sh
//! cargo run --example probabilistic_chains
//! ```

use parallax::compiler::ir::build::*;
use parallax::compiler::{Function, Module};
use parallax::core::{protect, ChainMode, ProtectConfig};
use parallax::vm::{Exit, Vm, VmOptions};
use std::collections::HashSet;

fn main() {
    let mut m = Module::new();
    m.func(Function::new(
        "vf",
        ["a", "b"],
        vec![
            let_("x", add(mul(l("a"), c(3)), l("b"))),
            if_(
                gt_s(l("x"), c(100)),
                vec![ret(sub(l("x"), c(100)))],
                vec![ret(l("x"))],
            ),
        ],
    ));
    m.func(Function::new(
        "main",
        [],
        vec![ret(add(
            call("vf", vec![c(30), c(20)]),
            call("vf", vec![c(2), c(2)]),
        ))],
    ));
    m.entry("main");

    let variants = 5;
    let protected = protect(
        &m,
        &ProtectConfig {
            verify_funcs: vec!["vf".into()],
            mode: ChainMode::Probabilistic {
                variants,
                seed: 0xd1ce,
            },
            ..ProtectConfig::default()
        },
    )
    .expect("protects");
    let info = &protected.report.chains[0];
    println!(
        "N = {variants} compiled variants, chain length l = {} words",
        info.words
    );
    println!(
        "=> up to N^l = {variants}^{} runtime variants (paper §V-B)\n",
        info.words
    );

    let expect = Exit::Exited(10 + 8);
    let buf = protected.image.symbol("__plx_chain_vf").unwrap();
    let union: HashSet<u32> = info.used_gadgets.iter().copied().collect();

    let mut subsets = HashSet::new();
    for seed in [3u64, 14, 159, 2653, 58979] {
        let mut vm = Vm::with_options(
            &protected.image,
            VmOptions {
                seed,
                ..VmOptions::default()
            },
        );
        assert_eq!(vm.run(), expect, "every variant computes the same result");
        let bytes = vm.mem().read_bytes(buf.vaddr, buf.size).unwrap();
        let used: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .filter(|w| union.contains(w))
            .collect();
        let distinct: HashSet<u32> = used.iter().copied().collect();
        println!(
            "run (vm seed {seed:>6}): correct result, {} distinct gadgets verified",
            distinct.len()
        );
        subsets.insert({
            let mut v: Vec<u32> = distinct.into_iter().collect();
            v.sort_unstable();
            v
        });
    }
    println!(
        "\n{} runs produced {} distinct verified-gadget subsets;",
        5,
        subsets.len()
    );
    println!("an adversary cannot know which gadgets the next run will check,");
    println!("so a widely distributed crack keeps breaking for some users (§V-B).");
}
