//! The paper's running example (§IV-A, Listings 1 & 2): a ptrace-based
//! anti-debugging check protected by overlapping gadgets, and the
//! classic NOP-patch attack against it.
//!
//! ```sh
//! cargo run --example ptrace_detector
//! ```

use parallax::compiler::ir::build::*;
use parallax::compiler::{Function, Module};
use parallax::core::{protect, ChainMode, ProtectConfig};
use parallax::vm::{Exit, Vm};

fn module() -> Module {
    let mut m = Module::new();
    // check_ptrace: requests a trace of the host process; if a debugger
    // is attached the request fails (Listing 1's detector).
    m.func(Function::new(
        "check_ptrace",
        [],
        vec![
            let_("r", syscall(26, vec![c(0)])), // PTRACE_TRACEME
            if_(
                eq(l("r"), c(0)),
                vec![ret(c(0))], // clean
                vec![ret(c(1))], // debugger detected
            ),
        ],
    ));
    // cleanup_and_exit path vs normal operation (paper layout).
    m.func(Function::new(
        "protected_work",
        ["x"],
        vec![ret(add(mul(l("x"), c(17)), c(5)))],
    ));
    m.func(Function::new(
        "main",
        [],
        vec![
            if_(
                ne(call("check_ptrace", vec![]), c(0)),
                vec![ret(c(13))], // cleanup_and_exit
                vec![],
            ),
            ret(and(call("protected_work", vec![c(4)]), c(0xff))),
        ],
    ));
    m.entry("main");
    m
}

fn main() {
    let m = module();

    // Parallax setup mirrors §IV-A: the detector's instructions are
    // explicitly guarded (the paper hand-picked the ptrace call, its
    // argument, and the guarded jumps); `protected_work` — code the
    // program NEEDS — becomes the verification chain that executes the
    // detector's gadgets.
    let protected = protect(
        &m,
        &ProtectConfig {
            verify_funcs: vec!["protected_work".into()],
            guard_funcs: vec!["check_ptrace".into(), "main".into()],
            mode: ChainMode::Cleartext,
            ..ProtectConfig::default()
        },
    )
    .expect("protects");

    // Honest runs.
    let mut vm = Vm::new(&protected.image);
    let clean = vm.run();
    println!("no debugger:                     {clean}");
    assert_eq!(clean, Exit::Exited((4 * 17 + 5) & 0xff));

    let mut vm = Vm::new(&protected.image);
    vm.attach_debugger();
    let detected = vm.run();
    println!("debugger attached:               {detected}");
    assert_eq!(detected, Exit::Exited(13), "detector fires");

    // Listing 2: the adversary NOPs out the detector's guarded branch
    // so execution always reaches the success path. We NOP the byte
    // range of a guard gadget inside check_ptrace — exactly what
    // overwriting the jns/jump does in the paper's listing.
    let det = protected.image.symbol("check_ptrace").unwrap();
    let victim = protected.report.chains[0]
        .used_gadgets
        .iter()
        .copied()
        .find(|&g| g >= det.vaddr && g < det.vaddr + det.size)
        .expect("chain executes a gadget overlapping the detector");
    println!(
        "\nadversary NOPs 4 bytes at {victim:#x} (inside check_ptrace, {}..{})",
        det.vaddr,
        det.vaddr + det.size
    );
    let mut cracked = protected.image.clone();
    cracked.write(victim, &[0x90, 0x90, 0x90, 0x90]);

    let mut vm = Vm::new(&cracked);
    vm.attach_debugger();
    let outcome = vm.run();
    println!("debugger + patched detector:     {outcome}");
    assert_ne!(
        outcome,
        Exit::Exited((4 * 17 + 5) & 0xff),
        "the patch must not yield the success path"
    );
    println!("\nthe patch destroyed a gadget the verification chain executes —");
    println!("the program malfunctions instead of running debugged (paper §IV-A).");
}
