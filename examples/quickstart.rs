//! Quickstart: protect a program, run it, tamper with it, watch it die.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use parallax::compiler::ir::build::*;
use parallax::compiler::{Function, Module};
use parallax::core::{protect, ProtectConfig};
use parallax::vm::Vm;

fn main() {
    // 1. A program: `checksum` folds a buffer; `main` checks the result.
    //    (Programs are written in Parallax's IR and compiled to x86-32;
    //    with real tooling this would be any 32-bit binary.)
    let mut module = Module::new();
    module.global("data", (1u8..=32).collect());
    module.func(Function::new(
        "checksum",
        ["ptr", "len"],
        vec![
            let_("h", c(0x1505)),
            let_("i", c(0)),
            while_(
                lt_s(l("i"), l("len")),
                vec![
                    let_(
                        "h",
                        xor(
                            add(mul(l("h"), c(33)), load8(add(l("ptr"), l("i")))),
                            shrl(l("h"), c(20)),
                        ),
                    ),
                    let_("i", add(l("i"), c(1))),
                ],
            ),
            ret(l("h")),
        ],
    ));
    module.func(Function::new(
        "main",
        [],
        vec![ret(and(call("checksum", vec![g("data"), c(32)]), c(0xff)))],
    ));
    module.entry("main");

    // 2. The native baseline.
    let native = parallax::compiler::compile_module(&module)
        .unwrap()
        .link()
        .unwrap();
    let mut vm = Vm::new(&native);
    let expected = vm.run();
    println!("native run:            {expected}");

    // 3. Protect: `checksum` becomes ROP verification code; gadgets are
    //    crafted overlapping the remaining instructions.
    let protected = protect(
        &module,
        &ProtectConfig {
            verify_funcs: vec!["checksum".into()],
            ..ProtectConfig::default()
        },
    )
    .expect("protection succeeds");
    let report = &protected.report;
    println!(
        "protected:             {} gadgets in image, chain uses {} ({} overlapping protected code)",
        report.gadget_count,
        report.chains[0].used_gadgets.len(),
        report.chains[0].overlapping_used,
    );
    println!(
        "protectable bytes:     {:.1}% of code (paper: 63-90%)",
        report.coverage.any_pct()
    );

    // 4. The protected binary behaves identically.
    let mut vm = Vm::new(&protected.image);
    let got = vm.run();
    println!("protected run:         {got}");
    assert_eq!(got, expected);

    // 5. Tamper with one byte of a gadget the chain uses...
    let victim = report.chains[0].used_gadgets[3];
    let mut cracked = protected.image.clone();
    cracked.write(victim, &[0x90]);
    let mut vm = Vm::new(&cracked);
    let outcome = vm.run();
    println!("tampered run:          {outcome}");
    assert_ne!(outcome, expected, "tampering must not go unnoticed");
    println!("\ntampering one byte at {victim:#x} broke the verification chain — detected.");
}
