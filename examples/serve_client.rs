//! Minimal client for a running `plx serve` daemon.
//!
//! ```sh
//! # terminal 1
//! cargo run --release -- serve --addr 127.0.0.1:7070
//! # terminal 2
//! cargo run --example serve_client -- 127.0.0.1:7070 status
//! cargo run --example serve_client -- 127.0.0.1:7070 protect examples/px/license.px verify_pipeline
//! cargo run --example serve_client -- 127.0.0.1:7070 report
//! cargo run --example serve_client -- 127.0.0.1:7070 shutdown
//! ```
//!
//! The CI smoke job drives exactly this binary against a freshly
//! started daemon: status for readiness, shutdown for a clean drain.

use std::process::ExitCode;
use std::time::Duration;

use parallax::serve::{Client, JobSpec, Request, Response};

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve_client <addr> <command>\n\
         commands:\n\
         \x20 status                      queue depth, admitted/shed counts\n\
         \x20 report                      live service-side metrics tables\n\
         \x20 protect <src.px> <vf[,..]>  protect a source file, print image size\n\
         \x20 shutdown                    drain in-flight jobs and stop"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(addr), Some(cmd)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let request = match cmd.as_str() {
        "status" => Request::Status,
        "report" => Request::Report,
        "shutdown" => Request::Shutdown,
        "protect" => {
            let (Some(path), Some(verify)) = (args.get(2), args.get(3)) else {
                return usage();
            };
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            Request::Protect {
                spec: JobSpec::Inline(src),
                mode: String::new(),
                seed: 1,
                verify: verify.split(',').map(str::to_owned).collect(),
            }
        }
        _ => return usage(),
    };

    let mut client = match Client::connect(addr, Duration::from_secs(30)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.call(&request) {
        Ok(Response::Status {
            uptime_us,
            admitted,
            shed,
            queue_depth,
            text,
        }) => {
            println!(
                "up {:.1} s   {admitted} admitted / {shed} shed   queue depth {queue_depth}\n{text}",
                uptime_us as f64 / 1e6
            );
        }
        Ok(Response::Report { text }) => println!("{text}"),
        Ok(Response::ShuttingDown) => println!("daemon draining"),
        Ok(Response::Protected {
            image,
            gadget_count,
            cached,
            micros,
        }) => {
            println!(
                "protected: {} bytes, {gadget_count} gadgets, {:.1} ms{}",
                image.len(),
                micros as f64 / 1e3,
                if cached { " [cached]" } else { "" }
            );
        }
        Ok(Response::Refused { reason, detail }) => {
            eprintln!("refused ({reason}): {detail}");
            return ExitCode::FAILURE;
        }
        Ok(other) => {
            eprintln!("unexpected response: {other:?}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("request failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
