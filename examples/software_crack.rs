//! Static software cracking (the paper's distribution scenario): an
//! attacker patches a license check in the binary *on disk* and
//! distributes the result. Parallax-protected binaries stop working.
//!
//! ```sh
//! cargo run --example software_crack
//! ```

use parallax::compiler::ir::build::*;
use parallax::compiler::{Function, Module};
use parallax::core::{protect, ProtectConfig};
use parallax::image::format;
use parallax::vm::{Exit, Vm};

fn module() -> Module {
    let mut m = Module::new();
    m.func(Function::new("licensed", [], vec![ret(c(0))])); // unlicensed copy
    m.func(Function::new(
        "render_output",
        ["x"],
        vec![ret(xor(mul(l("x"), c(7)), c(0x29)))],
    ));
    m.func(Function::new(
        "main",
        [],
        vec![
            if_(
                ne(call("licensed", vec![]), c(1)),
                vec![ret(c(2))], // demo mode
                vec![],
            ),
            ret(and(call("render_output", vec![c(6)]), c(0xff))), // full mode
        ],
    ));
    m.entry("main");
    m
}

fn main() {
    let m = module();

    let protected = protect(
        &m,
        &ProtectConfig {
            verify_funcs: vec!["render_output".into()],
            guard_funcs: vec!["licensed".into(), "main".into()],
            rewrite: parallax::rewrite::RewriteConfig {
                imm_completion_always: true,
                ..Default::default()
            },
            ..ProtectConfig::default()
        },
    )
    .expect("protects");

    // The vendor ships the protected binary as a file.
    let shipped = format::save(&protected.image);
    println!("shipped binary: {} bytes (PLX format)", shipped.len());

    // Honest user: demo mode.
    let mut vm = Vm::new(&format::load(&shipped).unwrap());
    println!("honest run:            {}", vm.run());

    // Cracker: load the file, overwrite `licensed` with `mov eax,1; ret`,
    // re-save, distribute.
    let mut img = format::load(&shipped).unwrap();
    let lic = img.symbol("licensed").unwrap().vaddr;
    img.write(lic, &[0xb8, 0x01, 0x00, 0x00, 0x00, 0xc3]);
    let cracked_file = format::save(&img);
    println!("cracked binary: {} bytes", cracked_file.len());

    // Victim runs the cracked copy.
    let mut vm = Vm::new(&format::load(&cracked_file).unwrap());
    let outcome = vm.run();
    println!("cracked run:           {outcome}");
    let full_mode = Exit::Exited(((6 * 7) ^ 0x29) & 0xff);
    assert_ne!(outcome, full_mode, "the crack must not unlock full mode");
    println!("\nthe crack destroyed guard gadgets inside `licensed` that the");
    println!("verification chain executes — the cracked copy is unusable, which");
    println!("is Parallax's anti-cracking goal (§II-B, §V-B).");
}
