//! The source-language front-end: compile a `.px` file, protect it with
//! Parallax, and exercise the result — the same flow the `plx` CLI
//! drives (`plx build` / `plx protect` / `plx run`).
//!
//! ```sh
//! cargo run --example source_language
//! ```

use parallax::compiler::parse_module;
use parallax::core::{protect, ProtectConfig};
use parallax::vm::{Exit, Vm};

fn main() {
    let src = include_str!("px/license.px");
    let module = parse_module(src).expect("source parses");
    println!(
        "parsed {} functions, {} globals",
        module.funcs.len(),
        module.globals.len()
    );

    // Native run.
    let img = parallax::compiler::compile_module(&module)
        .unwrap()
        .link()
        .unwrap();
    let mut vm = Vm::new(&img);
    let native = vm.run();
    println!(
        "native:    {native} ({})",
        String::from_utf8_lossy(vm.output()).trim()
    );

    // Protect: verify_pipeline becomes the chain; the license check is
    // guard-covered; chains are checksummed per §VI-C.
    let protected = protect(
        &module,
        &ProtectConfig {
            verify_funcs: vec!["verify_pipeline".into()],
            guard_funcs: vec!["licensed".into()],
            checksum_chains: true,
            ..ProtectConfig::default()
        },
    )
    .expect("protects");
    let mut vm = Vm::new(&protected.image);
    let got = vm.run();
    println!("protected: {got}");
    assert_eq!(got, native);

    // Crack attempt 1: overwrite `licensed` -> guard gadgets die.
    let lic = protected.image.symbol("licensed").unwrap().vaddr;
    let mut cracked = protected.image.clone();
    cracked.write(lic, &[0xb8, 0x01, 0x00, 0x00, 0x00, 0xc3]);
    let mut vm = Vm::new(&cracked);
    let r1 = vm.run();
    println!("crack #1 (patch licensed):     {r1}");
    assert_ne!(r1, native);

    // Crack attempt 2: patch the verification chain itself -> the §VI-C
    // checksum over the chain data fires.
    let chain = protected
        .image
        .symbol("__plx_chain_verify_pipeline")
        .unwrap();
    let mut cracked = protected.image.clone();
    let b = cracked.read(chain.vaddr + 4, 1).unwrap()[0];
    cracked.write(chain.vaddr + 4, &[b ^ 1]);
    let mut vm = Vm::new(&cracked);
    let r2 = vm.run();
    println!("crack #2 (patch chain data):   {r2}");
    assert_eq!(r2, Exit::Exited(parallax::ropc::CHAIN_CK_EXIT));
    println!("\nboth tampering channels detected.");
}
