//! The Wurster et al. split instruction/data cache attack (§I, §IX):
//! the kernel-level technique that defeats *every* checksumming-based
//! self-verification scheme — and why Parallax is immune.
//!
//! ```sh
//! cargo run --example wurster_attack
//! ```

use parallax::baselines::{attack_icache, attack_static, protect_with_checksums, TAMPER_EXIT};
use parallax::compiler::ir::build::*;
use parallax::compiler::{Function, Module};
use parallax::core::{protect, ProtectConfig};
use parallax::vm::Exit;

fn module() -> Module {
    let mut m = Module::new();
    m.func(Function::new("licensed", [], vec![ret(c(0))]));
    m.func(Function::new(
        "gate",
        [],
        vec![if_(
            eq(call("licensed", vec![]), c(1)),
            vec![ret(c(7))],
            vec![ret(c(99))],
        )],
    ));
    m.func(Function::new("main", [], vec![ret(call("gate", vec![]))]));
    m.entry("main");
    m
}

fn main() {
    let m = module();
    let crack = |img: &parallax::image::LinkedImage| {
        let f = img.symbol("licensed").unwrap();
        (f.vaddr, vec![0xb8u8, 0x01, 0x00, 0x00, 0x00, 0xc3])
    };

    // ---- Checksumming network (Chang & Atallah style) ----
    let (ck, checkers) = protect_with_checksums(&m, &["licensed".into()], 3).unwrap();
    println!(
        "checksumming network: {} cross-verifying checkers",
        checkers.len()
    );
    let p = crack(&ck);
    println!(
        "  static patch:       {}",
        verdict(attack_static(&ck, std::slice::from_ref(&p), &[]).exit)
    );
    println!(
        "  icache-only patch:  {}",
        verdict(attack_icache(&ck, &[p], &[]).exit)
    );
    println!("  -> the checksums read code as DATA; the split cache shows them");
    println!("     the original bytes while the patched code executes.\n");

    // ---- Parallax ----
    let plx = protect(
        &m,
        &ProtectConfig {
            verify_funcs: vec!["gate".into()],
            guard_funcs: vec!["licensed".into()],
            rewrite: parallax::rewrite::RewriteConfig {
                // Put the planted rets in the low immediate bytes so
                // value-forcing patches destroy them (§VIII cond. 3).
                imm_completion_always: true,
                ..Default::default()
            },
            ..ProtectConfig::default()
        },
    )
    .unwrap();
    let p = crack(&plx.image);
    println!("parallax:");
    println!(
        "  static patch:       {}",
        verdict(attack_static(&plx.image, std::slice::from_ref(&p), &[]).exit)
    );
    println!(
        "  icache-only patch:  {}",
        verdict(attack_icache(&plx.image, &[p], &[]).exit)
    );
    println!("  -> verification happens by EXECUTING the protected bytes as");
    println!("     gadgets; whichever view the attacker patches is the view the");
    println!("     processor fetches, so the chain malfunctions either way.");
}

fn verdict(e: Exit) -> String {
    match e {
        Exit::Exited(7) => "CRACKED (exit 7: attacker's licensed path)".into(),
        Exit::Exited(99) => "ineffective (honest path)".into(),
        Exit::Exited(s) if s == TAMPER_EXIT => "DETECTED (checksum tamper response)".into(),
        other => format!("DETECTED ({other})"),
    }
}
