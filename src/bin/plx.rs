//! The `plx` command-line tool: build, protect, run, inspect, and
//! attack Parallax images. See `plx --help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", parallax::cli::USAGE);
        std::process::exit(2);
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        println!("{}", parallax::cli::USAGE);
        return;
    }
    match parallax::cli::dispatch(cmd, &args[1..]) {
        Ok(msg) => println!("{msg}"),
        Err(e) => {
            eprintln!("plx: {}", e.0);
            std::process::exit(1);
        }
    }
}
