//! Implementation of the `plx` command-line tool.
//!
//! The binary in `src/bin/plx.rs` is a thin wrapper; all logic lives
//! here so it can be unit-tested. Subcommands:
//!
//! ```text
//! plx build   <src>  -o <out.plx>                  compile source to an image
//! plx protect <src>  -o <out.plx> --verify f[,g]   compile + Parallax-protect
//!             [--mode cleartext|xor|rc4|prob] [--guard f[,g]] [--seed N]
//!             [--jobs N] [--trace-out t.json]
//! plx run     <img.plx> [--input <file>] [--debugger] [--trace-out t.json]
//!             [--dangerous-skip-verify]
//! plx verify  <img.plx> [--provenance] [--provenance-dir <dir>]
//! plx inspect <img.plx>                            sections + symbols
//! plx disasm  <img.plx> [function]
//! plx gadgets <img.plx>                            usable gadgets + types
//! plx coverage <img.plx>                           Figure-6 style analysis
//! plx tamper  <img.plx> --at <vaddr> --bytes aa,bb -o <out.plx>
//! plx batch   <manifest> [--jobs N] [--out dir]    batch-protect via the engine
//! plx serve   [--addr host:port] [--workers N]     resident protection daemon
//! plx report  <t.json> | --diff <a.json> <b.json>  paper-style tables
//! ```
//!
//! Source positions accept `corpus:NAME` (e.g. `corpus:gzip`) anywhere
//! a `.px` file is expected, resolving to the built-in evaluation
//! workload; its designated verification function and input become the
//! defaults. `--trace-out` writes a Chrome trace-event JSON timeline
//! (protect stages, rewrite passes, chain compiles, and — after a
//! validation run — per-gadget dispatch telemetry) that `plx report`
//! turns into the paper's evaluation tables.
//!
//! Flags are validated against each subcommand's known set; an unknown
//! `--flag` is rejected with a "did you mean" suggestion instead of
//! being silently swallowed as a positional or mis-paired value.

use std::fmt::Write as _;
use std::sync::Arc;

use parallax_core::{
    chain_tracer_for, chain_tracer_for_image, load_verified_image, load_verified_image_strict,
    protect_hooked_traced, ChainMode, NoHooks, ProtectConfig,
};
use parallax_engine::{
    hash128, toolchain_id, Engine, EngineEvent, EngineOptions, Ledger, ProvenanceHooks,
    ProvenanceRecord, RECORD_VERSION,
};
use parallax_image::{format, LinkedImage};
use parallax_trace::{chrome_json, TraceFile, Tracer};
use parallax_vm::{Vm, VmOptions};

use crate::report::{render_diff, render_report};

/// A CLI failure, printed to stderr by the wrapper.
#[derive(Debug)]
pub struct CliError(pub String);

impl<E: std::error::Error> From<E> for CliError {
    fn from(e: E) -> CliError {
        CliError(e.to_string())
    }
}

type Result<T> = std::result::Result<T, CliError>;

fn bail(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// The flags and switches one subcommand accepts. Anything else on the
/// command line is rejected at parse time.
pub struct Spec {
    /// `--flag value` (and `-f value`) names.
    pub flags: &'static [&'static str],
    /// Valueless `--switch` names.
    pub switches: &'static [&'static str],
}

/// The accepted flag set per subcommand.
pub fn spec_for(cmd: &str) -> Spec {
    let (flags, switches): (&'static [&'static str], &'static [&'static str]) = match cmd {
        "build" => (&["o"], &[]),
        "protect" => (
            &[
                "o",
                "verify",
                "select",
                "input",
                "mode",
                "guard",
                "seed",
                "jobs",
                "trace-out",
                "provenance-dir",
            ],
            &[],
        ),
        "run" => (
            &["input", "trace", "trace-out"],
            &["debugger", "profile", "dangerous-skip-verify"],
        ),
        "verify" => (&["provenance-dir"], &["provenance"]),
        "tamper" => (&["o", "at", "bytes"], &[]),
        "batch" => (
            &["jobs", "out", "log-json", "cache-dir", "seed", "trace-out"],
            &["no-validate"],
        ),
        "serve" => (
            &[
                "addr",
                "workers",
                "queue",
                "cache-dir",
                "read-timeout-ms",
                "max-frame",
                "trace-out",
                "slow-ms",
                "blackbox-dir",
            ],
            &["no-validate"],
        ),
        "report" => (&[], &["diff"]),
        // inspect / disasm / gadgets / coverage / chain take only
        // positionals.
        _ => (&[], &[]),
    };
    Spec { flags, switches }
}

/// Levenshtein distance, for "did you mean" suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The closest known name within edit distance 2, if any.
fn suggest<'a>(name: &str, known: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    known
        .into_iter()
        .map(|k| (edit_distance(name, k), k))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, k)| k)
}

fn unknown_flag(name: &str, spec: &Spec) -> CliError {
    let known = spec.flags.iter().chain(spec.switches).copied();
    match suggest(name, known) {
        Some(s) => bail(format!("unknown flag `--{name}` (did you mean `--{s}`?)")),
        None => bail(format!("unknown flag `--{name}`")),
    }
}

/// Minimal flag parser: positional args plus `--flag value` pairs,
/// validated against the subcommand's [`Spec`].
pub struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Parses raw arguments (after the subcommand), rejecting any flag
    /// the spec doesn't know.
    pub fn parse(raw: &[String], spec: &Spec) -> Result<Args> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            let name = a
                .strip_prefix("--")
                .or_else(|| a.strip_prefix("-").filter(|n| !n.is_empty()));
            if let Some(name) = name {
                if spec.switches.contains(&name) {
                    switches.push(name.to_owned());
                    i += 1;
                } else if spec.flags.contains(&name) {
                    let v = raw
                        .get(i + 1)
                        .ok_or_else(|| bail(format!("--{name} needs a value")))?;
                    flags.push((name.to_owned(), v.clone()));
                    i += 2;
                } else {
                    return Err(unknown_flag(name, spec));
                }
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Ok(Args {
            positional,
            flags,
            switches,
        })
    }

    fn pos(&self, i: usize, what: &str) -> Result<&str> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| bail(format!("missing {what}")))
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// Exports a VM's block-translation cache counters onto a tracer,
/// next to `vm.run.cycles`, so `plx report` can show dispatch-engine
/// behaviour alongside chain stats.
fn count_block_stats(tracer: &Tracer, bs: parallax_vm::BlockStats) {
    tracer.count("vm.block.hit", bs.hits);
    tracer.count("vm.block.miss", bs.misses);
    tracer.count("vm.block.invalidate", bs.invalidated);
}

fn load_image(path: &str) -> Result<LinkedImage> {
    let bytes = std::fs::read(path).map_err(|e| bail(format!("{path}: {e}")))?;
    Ok(format::load(&bytes)?)
}

fn compile_source(path: &str) -> Result<parallax_compiler::Module> {
    let src = std::fs::read_to_string(path).map_err(|e| bail(format!("{path}: {e}")))?;
    Ok(parallax_compiler::parse_module(&src)?)
}

/// A resolved program source: a `.px` file or a `corpus:NAME`
/// evaluation workload. Workloads carry a designated verification
/// function and a deterministic input, used as defaults when the
/// command line gives neither.
struct Source {
    module: parallax_compiler::Module,
    default_verify: Option<String>,
    default_input: Vec<u8>,
}

fn resolve_source(src: &str) -> Result<Source> {
    if let Some(name) = src.strip_prefix("corpus:") {
        let w = parallax_corpus::by_name(name).ok_or_else(|| {
            let known: Vec<&str> = parallax_corpus::all().iter().map(|w| w.name).collect();
            bail(format!(
                "unknown corpus workload `{name}` (known: {})",
                known.join(", ")
            ))
        })?;
        Ok(Source {
            module: (w.module)(),
            default_verify: Some(w.verify_func.to_owned()),
            default_input: (w.input)(),
        })
    } else {
        Ok(Source {
            module: compile_source(src)?,
            default_verify: None,
            default_input: Vec::new(),
        })
    }
}

fn parse_mode(s: &str, seed: u64) -> Result<ChainMode> {
    // Shared with `plx batch`'s manifest expansion, so a batch job and
    // a one-off protect of the same target are byte-identical.
    parallax_engine::chain_mode_for(s, seed).ok_or_else(|| bail(format!("unknown mode `{s}`")))
}

fn list(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect()
}

/// `plx build`
pub fn cmd_build(args: &Args) -> Result<String> {
    let src = args.pos(0, "source file")?;
    let out = args.flag("o").ok_or_else(|| bail("missing -o <out.plx>"))?;
    let module = compile_source(src)?;
    let img = parallax_compiler::compile_module(&module)?.link()?;
    let bytes = format::save(&img);
    std::fs::write(out, &bytes).map_err(|e| bail(format!("{out}: {e}")))?;
    Ok(format!(
        "built {out}: {} text bytes, {} data bytes, {} functions",
        img.text.len(),
        img.data.len(),
        img.funcs().count()
    ))
}

/// `plx protect`
pub fn cmd_protect(args: &Args) -> Result<String> {
    let src = args.pos(0, "source file")?;
    let out = args.flag("o").ok_or_else(|| bail("missing -o <out.plx>"))?;
    let source = resolve_source(src)?;
    let input = match args.flag("input") {
        Some(p) => std::fs::read(p).map_err(|e| bail(format!("{p}: {e}")))?,
        None => source.default_input.clone(),
    };
    let verify = match (args.flag("verify"), args.flag("select")) {
        (Some(v), _) => list(v),
        (None, Some(n)) => {
            // §VII-B automatic selection: profile one run (with --input
            // if given) and pick the best candidates.
            let n: usize = n.parse().map_err(|e| bail(format!("bad --select: {e}")))?;
            let picked = parallax_core::select_verification_functions(
                &source.module,
                &input,
                &parallax_core::SelectionConfig {
                    count: n,
                    ..Default::default()
                },
            )?;
            if picked.is_empty() {
                return Err(bail(
                    "automatic selection found no suitable function                      (needs: called repeatedly, <2% of runtime,                      chain-translatable); use --verify",
                ));
            }
            picked
        }
        // A corpus workload designates its own verification function.
        (None, None) => match &source.default_verify {
            Some(v) => vec![v.clone()],
            None => return Err(bail("missing --verify <func[,func]> or --select <n>")),
        },
    };
    let seed = args
        .flag("seed")
        .map(|s| s.parse::<u64>().map_err(|e| bail(e.to_string())))
        .transpose()?
        .unwrap_or(0xbead_cafe);
    let mode = parse_mode(args.flag("mode").unwrap_or("cleartext"), seed)?;
    let guard_funcs = args.flag("guard").map(list).unwrap_or_default();
    // 0 = auto (one worker per core); the output image is byte-identical
    // whatever the worker count.
    let jobs = args
        .flag("jobs")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|e| bail(format!("bad --jobs: {e}")))
        })
        .transpose()?
        .unwrap_or(1);

    let cfg = ProtectConfig {
        verify_funcs: verify.clone(),
        mode: mode.clone(),
        seed,
        guard_funcs,
        jobs,
        ..ProtectConfig::default()
    };
    let trace_out = args.flag("trace-out");
    // Every protect leaves a paper trail: the pipeline runs under
    // provenance hooks that digest each artifact it consumes, and the
    // record lands in the ledger beside the engine's disk cache (or
    // under --provenance-dir; `none` disables it).
    let phooks = ProvenanceHooks::new(&NoHooks);
    let (protected, trace_note) = match trace_out {
        Some(path) => {
            // Traced protect, then a validation run with the chain
            // tracer installed so pipeline spans and per-gadget
            // dispatch telemetry land on one timeline.
            let tracer = Tracer::new();
            let protected = protect_hooked_traced(&source.module, &cfg, &phooks, Some(&tracer))?;
            let mut vm = Vm::new(&protected.image);
            vm.set_input(&input);
            vm.set_chain_tracer(chain_tracer_for(&protected));
            let exit = {
                let _run = tracer.span("vm.run", "vm");
                vm.run()
            };
            tracer.count("vm.run.cycles", vm.cycles());
            count_block_stats(&tracer, vm.block_stats());
            if let Some(ct) = vm.take_chain_tracer() {
                ct.export_to(&tracer);
            }
            std::fs::write(path, chrome_json(&tracer.snapshot()))
                .map_err(|e| bail(format!("{path}: {e}")))?;
            let note = format!(
                "  trace: {path} (validation run: {exit}, {} cycles)",
                vm.cycles()
            );
            (protected, Some(note))
        }
        None => (
            protect_hooked_traced(&source.module, &cfg, &phooks, None)?,
            None,
        ),
    };
    let bytes = format::save(&protected.image);
    std::fs::write(out, &bytes).map_err(|e| bail(format!("{out}: {e}")))?;

    let prov_dir = args
        .flag("provenance-dir")
        .unwrap_or("target/plx-cache/provenance");
    let prov_note = if prov_dir == "none" {
        None
    } else {
        let base = parallax_compiler::compile_module(&source.module)?.link()?;
        let record = ProvenanceRecord {
            version: RECORD_VERSION,
            toolchain: toolchain_id(),
            input_hash: hash128(&format::save(&base)),
            config: format!(
                "cfg={:?};plan={:?}",
                cfg.key_normalized(),
                parallax_core::FaultPlan::default().without_cache_faults()
            ),
            stages: phooks.stage_digests(),
            image_hash: hash128(&bytes),
        };
        let path = Ledger::new(prov_dir.into()).store(&record)?;
        Some(format!("  provenance: {}", path.display()))
    };

    let mut msg = String::new();
    let r = &protected.report;
    writeln!(
        msg,
        "protected {out} (mode: {}, verify: {})",
        mode.name(),
        verify.join(",")
    )
    .unwrap();
    writeln!(
        msg,
        "  gadgets discovered: {}; crafted sites: {}",
        r.gadget_count,
        r.rewrites.crafted_count()
    )
    .unwrap();
    writeln!(msg, "  protectable bytes:  {:.1}%", r.coverage.any_pct()).unwrap();
    for ci in &r.chains {
        writeln!(
            msg,
            "  chain {}: {} ops, {} words, {} gadgets ({} overlapping)",
            ci.func,
            ci.ops,
            ci.words,
            ci.used_gadgets.len(),
            ci.overlapping_used
        )
        .unwrap();
    }
    if let Some(note) = trace_note {
        writeln!(msg, "{note}").unwrap();
    }
    if let Some(note) = prov_note {
        writeln!(msg, "{note}").unwrap();
    }
    Ok(msg.trim_end().to_owned())
}

/// `plx run`
pub fn cmd_run(args: &Args) -> Result<String> {
    let path = args.pos(0, "image")?;
    let bytes = std::fs::read(path).map_err(|e| bail(format!("{path}: {e}")))?;
    // Fail-closed by default: the image must pass container-digest and
    // structural verification before a VM is ever constructed. The
    // escape hatch exists for differential oracles (running a tampered
    // image on purpose to observe the runtime watchdog), never for
    // production loading.
    let img: LinkedImage = if args.switch("dangerous-skip-verify") {
        eprintln!("warning: --dangerous-skip-verify: running UNVERIFIED image {path}");
        format::load(&bytes)?
    } else {
        match load_verified_image(&bytes) {
            Ok(v) => v.into_inner(),
            Err(e) => {
                return Err(bail(format!(
                    "refusing to run {path}: verify: FAIL code={} offset={:#x} reason={e}\n\
                     (re-run with --dangerous-skip-verify to bypass, e.g. for tamper oracles)",
                    e.code(),
                    e.offset()
                )))
            }
        }
    };
    let input = match args.flag("input") {
        Some(p) => std::fs::read(p).map_err(|e| bail(format!("{p}: {e}")))?,
        None => Vec::new(),
    };
    let mut vm = Vm::with_options(
        &img,
        VmOptions {
            profile: args.switch("profile"),
            ..VmOptions::default()
        },
    );
    vm.set_input(&input);
    if args.switch("debugger") {
        vm.attach_debugger();
    }
    let trace_out = args.flag("trace-out");
    let tracer = trace_out.map(|_| Tracer::new());
    if tracer.is_some() {
        // Recover chain entry points from the image's symbols so gadget
        // dispatches attribute to their verification function.
        vm.set_chain_tracer(chain_tracer_for_image(&img));
    }
    let run_span = tracer.as_ref().map(|t| t.enter("vm.run", "vm"));
    let trace: u64 = args
        .flag("trace")
        .map(|v| v.parse().map_err(|e| bail(format!("bad --trace: {e}"))))
        .transpose()?
        .unwrap_or(0);
    let exit = if trace > 0 {
        let mut result = None;
        for _ in 0..trace {
            let eip = vm.cpu.eip;
            let sym = img
                .symbol_at(eip)
                .map(|s| format!("{}+{:#x}", s.name, eip - s.vaddr))
                .unwrap_or_else(|| format!("{eip:#010x}"));
            let dis = img
                .read(eip, 16.min((img.text_end().saturating_sub(eip)) as usize))
                .and_then(|b| parallax_x86::decode(b).ok())
                .map(|i| i.to_string())
                .unwrap_or_else(|| "?".into());
            eprintln!("[trace] {sym:<28} {dis}");
            match vm.step() {
                Ok(None) => {}
                Ok(Some(code)) => {
                    result = Some(parallax_vm::Exit::Exited(code));
                    break;
                }
                Err(f) => {
                    result = Some(parallax_vm::Exit::Fault(f));
                    break;
                }
            }
        }
        match result {
            Some(e) => e,
            None => vm.run(),
        }
    } else {
        vm.run()
    };
    if let (Some(t), Some(id)) = (&tracer, run_span) {
        t.exit(id);
        t.count("vm.run.cycles", vm.cycles());
        count_block_stats(t, vm.block_stats());
        if let Some(ct) = vm.take_chain_tracer() {
            ct.export_to(t);
        }
    }
    let mut msg = String::new();
    if let (Some(path), Some(t)) = (trace_out, &tracer) {
        std::fs::write(path, chrome_json(&t.snapshot()))
            .map_err(|e| bail(format!("{path}: {e}")))?;
        writeln!(msg, "trace written to {path}").unwrap();
    }
    let out = vm.take_output();
    if !out.is_empty() {
        writeln!(msg, "--- output ({} bytes) ---", out.len()).unwrap();
        writeln!(msg, "{}", String::from_utf8_lossy(&out)).unwrap();
    }
    writeln!(
        msg,
        "{exit}; {} cycles, {} instructions",
        vm.cycles(),
        vm.instructions
    )
    .unwrap();
    if let Some(p) = vm.profiler() {
        writeln!(msg, "--- profile ---").unwrap();
        for (n, f, calls) in p.hotspots(0.005 / 100.0).iter().take(12) {
            writeln!(msg, "{:6.2}%  calls={calls:<8} {n}", f * 100.0).unwrap();
        }
    }
    Ok(msg.trim_end().to_owned())
}

/// `plx verify`: strict fail-closed verification of a saved image,
/// optionally cross-checked against its provenance record.
///
/// Failures exit nonzero with a machine-readable first line:
/// `verify: FAIL code=<kind> offset=<hex> reason=<text>`.
pub fn cmd_verify(args: &Args) -> Result<String> {
    let path = args.pos(0, "image")?;
    let bytes = std::fs::read(path).map_err(|e| bail(format!("{path}: {e}")))?;
    let t0 = std::time::Instant::now();
    // Strict mode: a fresh gadget scan backs chain-word resolution, so
    // a chain word redirected to an equivalent-but-unmapped gadget is
    // refused, not just an implausible one.
    let v = match load_verified_image_strict(&bytes) {
        Ok(v) => v,
        Err(e) => {
            return Err(bail(format!(
                "verify: FAIL code={} offset={:#x} reason={e}",
                e.code(),
                e.offset()
            )))
        }
    };
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let image_hash = hash128(&bytes);
    let r = v.report();
    let mut msg = String::new();
    writeln!(msg, "verify: PASS {path} ({elapsed_ms:.1} ms, strict)").unwrap();
    writeln!(msg, "  image hash: {image_hash:032x}").unwrap();
    writeln!(
        msg,
        "  symbols: {}; markers: {}; relocs: {}",
        r.symbols, r.markers, r.relocs
    )
    .unwrap();
    writeln!(
        msg,
        "  chains: {} ({} words, {} resolved against the gadget map)",
        r.chains, r.chain_words, r.text_words
    )
    .unwrap();

    if args.switch("provenance") {
        let dir = args
            .flag("provenance-dir")
            .unwrap_or("target/plx-cache/provenance");
        let ledger = Ledger::new(dir.into());
        let record = ledger.load(image_hash).ok_or_else(|| {
            bail(format!(
                "verify: FAIL code=provenance-missing offset=0x0 reason=no record for image hash \
                 {image_hash:032x} under {dir}"
            ))
        })?;
        if record.image_hash != image_hash {
            return Err(bail(format!(
                "verify: FAIL code=provenance-mismatch offset=0x0 reason=record claims image hash \
                 {:032x}, file is {image_hash:032x}",
                record.image_hash
            )));
        }
        writeln!(
            msg,
            "  provenance: ok ({})",
            ledger.path_for(image_hash).display()
        )
        .unwrap();
        writeln!(msg, "    toolchain: {}", record.toolchain).unwrap();
        writeln!(msg, "    input:     {:032x}", record.input_hash).unwrap();
        for s in &record.stages {
            writeln!(
                msg,
                "    stage:     {} x{} {:032x}",
                s.kind, s.count, s.digest
            )
            .unwrap();
        }
    }
    Ok(msg.trim_end().to_owned())
}

/// `plx inspect`
pub fn cmd_inspect(args: &Args) -> Result<String> {
    let img = load_image(args.pos(0, "image")?)?;
    let mut msg = String::new();
    writeln!(
        msg,
        "text: {:#010x}..{:#010x} ({} bytes)",
        img.text_base,
        img.text_end(),
        img.text.len()
    )
    .unwrap();
    writeln!(
        msg,
        "data: {:#010x}..{:#010x} ({} bytes + {} bss)",
        img.data_base,
        img.data_end(),
        img.data.len(),
        img.bss_size
    )
    .unwrap();
    writeln!(msg, "entry: {:#010x}", img.entry).unwrap();
    writeln!(msg, "symbols:").unwrap();
    for s in &img.symbols {
        writeln!(
            msg,
            "  {:#010x} {:>6}  {:?}  {}",
            s.vaddr, s.size, s.kind, s.name
        )
        .unwrap();
    }
    writeln!(msg, "relocations: {}", img.reloc_sites.len()).unwrap();
    Ok(msg.trim_end().to_owned())
}

/// `plx disasm`
pub fn cmd_disasm(args: &Args) -> Result<String> {
    let img = load_image(args.pos(0, "image")?)?;
    let filter = args.positional.get(1).cloned();
    let mut msg = String::new();
    for f in img.funcs() {
        if let Some(want) = &filter {
            if &f.name != want {
                continue;
            }
        }
        writeln!(msg, "<{}>:", f.name).unwrap();
        let Some(bytes) = img.read(f.vaddr, f.size as usize) else {
            continue;
        };
        let mut pos = 0usize;
        while pos < bytes.len() {
            match parallax_x86::decode(&bytes[pos..]) {
                Ok(i) => {
                    let raw: Vec<String> = bytes[pos..pos + i.len as usize]
                        .iter()
                        .map(|b| format!("{b:02x}"))
                        .collect();
                    writeln!(
                        msg,
                        "  {:#010x}: {:<24} {}",
                        f.vaddr + pos as u32,
                        raw.join(" "),
                        i
                    )
                    .unwrap();
                    pos += i.len as usize;
                }
                Err(_) => {
                    writeln!(
                        msg,
                        "  {:#010x}: {:02x}                        (data)",
                        f.vaddr + pos as u32,
                        bytes[pos]
                    )
                    .unwrap();
                    pos += 1;
                }
            }
        }
    }
    if msg.is_empty() {
        return Err(bail("no matching function"));
    }
    Ok(msg.trim_end().to_owned())
}

/// `plx gadgets`
pub fn cmd_gadgets(args: &Args) -> Result<String> {
    let img = load_image(args.pos(0, "image")?)?;
    let gadgets = parallax_gadgets::find_gadgets(&img);
    let mut msg = String::new();
    writeln!(msg, "{} usable gadgets:", gadgets.len()).unwrap();
    for g in &gadgets {
        let host = img
            .symbol_at(g.vaddr)
            .map(|s| s.name.as_str())
            .unwrap_or("?");
        writeln!(msg, "  {g}   [in {host}]").unwrap();
    }
    Ok(msg.trim_end().to_owned())
}

/// `plx coverage`
pub fn cmd_coverage(args: &Args) -> Result<String> {
    let img = load_image(args.pos(0, "image")?)?;
    let cov = parallax_rewrite::analyze(&img);
    Ok(format!(
        "code bytes: {}\nexisting near-ret: {:.1}%\nexisting far-ret:  {:.1}%\nimmediates rule:   {:.1}%\nrearrange rule:    {:.1}%\nany rule:          {:.1}%",
        cov.code_bytes,
        cov.existing_near_pct(),
        cov.existing_far_pct(),
        cov.immediate_pct(),
        cov.jump_pct(),
        cov.any_pct()
    ))
}

/// `plx chain`: disassemble a verification chain.
pub fn cmd_chain(args: &Args) -> Result<String> {
    let img = load_image(args.pos(0, "image")?)?;
    let func = args.pos(1, "function name")?;
    let sym = img
        .symbol(&format!("__plx_chain_{func}"))
        .ok_or_else(|| bail(format!("no chain for `{func}` in this image")))?;
    let bytes = img
        .read(sym.vaddr, sym.size as usize)
        .ok_or_else(|| bail("chain data unreadable (runtime-generated chains live in BSS; disassemble a cleartext build)"))?
        .to_vec();
    let map = parallax_gadgets::build_map(&img);
    let words = parallax_ropc::disasm_chain(&img, &map, &bytes);
    Ok(format!(
        "chain for `{func}`: {} words at {:#010x}
{}",
        bytes.len() / 4,
        sym.vaddr,
        parallax_ropc::format_chain(&words)
    ))
}

/// `plx tamper`
pub fn cmd_tamper(args: &Args) -> Result<String> {
    let mut img = load_image(args.pos(0, "image")?)?;
    let out = args.flag("o").ok_or_else(|| bail("missing -o <out.plx>"))?;
    let at = args
        .flag("at")
        .ok_or_else(|| bail("missing --at <vaddr>"))?;
    let at = u32::from_str_radix(at.trim_start_matches("0x"), 16)
        .map_err(|e| bail(format!("bad --at: {e}")))?;
    let bytes: Vec<u8> = args
        .flag("bytes")
        .ok_or_else(|| bail("missing --bytes aa,bb,.."))?
        .split(',')
        .map(|b| u8::from_str_radix(b.trim(), 16).map_err(|e| bail(e.to_string())))
        .collect::<Result<_>>()?;
    if !img.write(at, &bytes) {
        return Err(bail(format!("{at:#x} is outside the image")));
    }
    std::fs::write(out, format::save(&img)).map_err(|e| bail(format!("{out}: {e}")))?;
    Ok(format!("patched {} bytes at {at:#x} -> {out}", bytes.len()))
}

/// `plx batch`: run a manifest of protection jobs through the engine.
pub fn cmd_batch(args: &Args) -> Result<String> {
    let manifest_path = args.pos(0, "manifest file")?;
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| bail(format!("{manifest_path}: {e}")))?;
    let jobs = parallax_engine::parse_manifest(&text).map_err(bail)?;
    let n = jobs.len();

    let workers = match args.flag("jobs") {
        Some(v) => v.parse().map_err(|e| bail(format!("bad --jobs: {e}")))?,
        None => std::thread::available_parallelism().map_or(1, usize::from),
    };
    let cache_dir = match args.flag("cache-dir") {
        Some("none") => None,
        Some(dir) => Some(std::path::PathBuf::from(dir)),
        None => Some(std::path::PathBuf::from("target/plx-cache")),
    };
    let trace_out = args.flag("trace-out");
    let tracer = trace_out.map(|_| Arc::new(Tracer::new()));
    let engine = Engine::new(EngineOptions {
        workers,
        cache_dir,
        validate: !args.switch("no-validate"),
        log_json: args.flag("log-json").map(std::path::PathBuf::from),
        trace: tracer.clone(),
        ..EngineOptions::default()
    });

    // Live progress goes to stderr (stdout carries the final summary,
    // like every other subcommand). Ctrl-C drains instead of killing:
    // in-flight jobs finish, unstarted ones are shed with a typed
    // error, and the partial summary still prints.
    parallax_serve::install_shutdown_signal();
    let report = engine
        .run_with_cancel(jobs, Some(parallax_serve::shutdown_flag()), |ev| match ev {
            EngineEvent::JobShed { job, reason } => {
                eprintln!("[{:>3}/{n}] shed ({reason}): draining batch", job + 1);
            }
            EngineEvent::JobStarted { job, name, worker } => {
                eprintln!("[{:>3}/{n}] {name} started (worker {worker})", job + 1);
            }
            EngineEvent::CachePoisoned { job, kind } => {
                eprintln!(
                    "[{:>3}/{n}] poisoned {kind} cache entry detected; recomputing",
                    job + 1
                );
            }
            EngineEvent::Degraded {
                job, func, missing, ..
            } => {
                eprintln!("[{:>3}/{n}] degraded: {func} missing {missing}", job + 1);
            }
            EngineEvent::JobFinished {
                job,
                name,
                micros,
                cached,
                verdict,
                error,
                ..
            } => {
                let status = match (error, verdict) {
                    (Some(e), _) => format!("FAILED: {e}"),
                    (None, Some(v)) => v.to_string(),
                    (None, None) => "ok (not validated)".to_owned(),
                };
                let src = if *cached { " [cached]" } else { "" };
                eprintln!(
                    "[{:>3}/{n}] {name} finished in {:.1} ms{src}: {status}",
                    job + 1,
                    *micros as f64 / 1e3
                );
            }
            _ => {}
        })
        .map_err(|e| bail(format!("event log: {e}")))?;

    if let Some(dir) = args.flag("out") {
        std::fs::create_dir_all(dir).map_err(|e| bail(format!("{dir}: {e}")))?;
        for r in report.results.iter().filter(|r| r.error.is_none()) {
            let file = format!("{}.plx", r.name.replace(['/', '#'], "-"));
            let path = std::path::Path::new(dir).join(file);
            std::fs::write(&path, &r.image)
                .map_err(|e| bail(format!("{}: {e}", path.display())))?;
        }
    }

    let mut msg = String::new();
    for r in &report.results {
        let status = match (&r.error, r.verdict) {
            (Some(e), _) => format!("FAILED: {e}"),
            (None, Some(v)) => v.to_string(),
            (None, None) => "ok (not validated)".to_owned(),
        };
        writeln!(
            msg,
            "  {:<28} {:>6} gadgets  {:>9.1} ms  {}{}",
            r.name,
            r.gadget_count,
            r.micros as f64 / 1e3,
            status,
            if r.cached { " [cached]" } else { "" }
        )
        .unwrap();
    }
    if let (Some(path), Some(t)) = (trace_out, &tracer) {
        std::fs::write(path, chrome_json(&t.snapshot()))
            .map_err(|e| bail(format!("{path}: {e}")))?;
        writeln!(msg, "  trace: {path}").unwrap();
    }
    msg.push('\n');
    msg.push_str(&report.metrics.render());
    if report.all_clean() {
        Ok(msg.trim_end().to_owned())
    } else {
        Err(bail(format!(
            "{}\nbatch had failures or non-clean verdicts",
            msg.trim_end()
        )))
    }
}

/// `plx serve`: run the resident protection daemon.
pub fn cmd_serve(args: &Args) -> Result<String> {
    let mut opts = parallax_serve::ServeOptions::default();
    if let Some(addr) = args.flag("addr") {
        opts.addr = addr.to_owned();
    }
    if let Some(v) = args.flag("workers") {
        opts.workers = v.parse().map_err(|e| bail(format!("bad --workers: {e}")))?;
    }
    if let Some(v) = args.flag("queue") {
        opts.queue_capacity = v.parse().map_err(|e| bail(format!("bad --queue: {e}")))?;
    }
    match args.flag("cache-dir") {
        Some("none") => opts.cache_dir = None,
        Some(dir) => opts.cache_dir = Some(std::path::PathBuf::from(dir)),
        None => {}
    }
    if let Some(v) = args.flag("read-timeout-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|e| bail(format!("bad --read-timeout-ms: {e}")))?;
        opts.read_timeout = std::time::Duration::from_millis(ms);
        opts.write_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(v) = args.flag("max-frame") {
        opts.max_frame = v
            .parse()
            .map_err(|e| bail(format!("bad --max-frame: {e}")))?;
    }
    opts.validate = !args.switch("no-validate");
    if let Some(v) = args.flag("slow-ms") {
        let ms: u64 = v.parse().map_err(|e| bail(format!("bad --slow-ms: {e}")))?;
        opts.flight.slow_request_us = Some(ms * 1_000);
    }
    if let Some(dir) = args.flag("blackbox-dir") {
        opts.flight.blackbox_dir = Some(std::path::PathBuf::from(dir));
    }
    let trace_out = args.flag("trace-out").map(str::to_owned);

    let server = parallax_serve::Server::bind(opts).map_err(|e| bail(format!("bind: {e}")))?;
    // The readiness line goes to stderr *before* the accept loop so a
    // supervisor (or the CI smoke job) can poll for it.
    eprintln!("plx serve listening on {}", server.local_addr());

    // SIGINT/SIGTERM → graceful drain: stop accepting, complete every
    // admitted job, answer stragglers with a typed Shutdown refusal.
    parallax_serve::install_shutdown_signal();
    let handle = server.handle();
    let watcher = std::thread::Builder::new()
        .name("plx-serve-signal".into())
        .spawn(move || loop {
            if parallax_serve::shutdown_requested() {
                handle.shutdown();
                return;
            }
            if handle.is_shutting_down() {
                // Shutdown arrived over the wire instead; nothing to do.
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        })
        .map_err(|e| bail(format!("signal watcher: {e}")))?;

    let tracer = server.tracer();
    let summary = server.run().map_err(|e| bail(format!("serve: {e}")))?;
    // Unblock the watcher if the daemon exited via a wire Shutdown.
    parallax_serve::request_shutdown();
    let _ = watcher.join();

    let mut msg = format!(
        "served {} requests in {:.1} s: {} admitted, {} shed\n",
        summary.requests,
        summary.uptime.as_secs_f64(),
        summary.admitted,
        summary.shed,
    );
    if let Some(path) = trace_out {
        std::fs::write(&path, chrome_json(&tracer.snapshot()))
            .map_err(|e| bail(format!("{path}: {e}")))?;
        writeln!(msg, "  trace: {path}").unwrap();
    }
    msg.push('\n');
    msg.push_str(&summary.metrics_text);
    Ok(msg.trim_end().to_owned())
}

/// `plx report`: render paper-style tables from `--trace-out` files.
pub fn cmd_report(args: &Args) -> Result<String> {
    let load = |p: &str| -> Result<TraceFile> {
        let text = std::fs::read_to_string(p).map_err(|e| bail(format!("{p}: {e}")))?;
        TraceFile::parse(&text).map_err(|e| bail(format!("{p}: {e}")))
    };
    if args.switch("diff") {
        let a = load(args.pos(0, "baseline trace file")?)?;
        let b = load(args.pos(1, "comparison trace file")?)?;
        Ok(render_diff(&a, &b))
    } else {
        Ok(render_report(&load(args.pos(0, "trace file")?)?))
    }
}

/// `plx profile`: critical-path and bottleneck analysis of a trace.
pub fn cmd_profile(args: &Args) -> Result<String> {
    let p = args.pos(0, "trace file")?;
    let text = std::fs::read_to_string(p).map_err(|e| bail(format!("{p}: {e}")))?;
    let tf = TraceFile::parse(&text).map_err(|e| bail(format!("{p}: {e}")))?;
    Ok(crate::profile::render_profile(&tf))
}

/// Usage text.
pub const USAGE: &str = "\
plx — the Parallax toolchain

USAGE:
  plx build    <src> -o <out.plx>
  plx protect  <src> -o <out.plx> (--verify f[,g] | --select n [--input file])
               [--mode cleartext|xor|rc4|prob] [--guard f[,g]] [--seed N]
               [--jobs N] [--trace-out <t.json>]
  plx run      <img.plx> [--input <file>] [--debugger] [--profile]
               [--trace-out <t.json>] [--dangerous-skip-verify]
  plx verify   <img.plx> [--provenance] [--provenance-dir <dir>]
  plx inspect  <img.plx>
  plx disasm   <img.plx> [function]
  plx gadgets  <img.plx>
  plx coverage <img.plx>
  plx chain    <img.plx> <function>
  plx tamper   <img.plx> --at <hex-vaddr> --bytes aa,bb -o <out.plx>
  plx batch    <manifest> [--jobs N] [--out <dir>] [--log-json <path>]
               [--cache-dir <dir>|none] [--no-validate] [--trace-out <t.json>]
  plx serve    [--addr host:port] [--workers N] [--queue N]
               [--cache-dir <dir>|none] [--read-timeout-ms N]
               [--max-frame N] [--no-validate] [--trace-out <t.json>]
               [--slow-ms N] [--blackbox-dir <dir>]
  plx report   <t.json>
  plx report   --diff <a.json> <b.json>
  plx profile  <t.json>

<src> may be a .px file or corpus:NAME (wget, nginx, bzip2, gzip, gcc,
lame); corpus workloads default --verify and --input to the workload's
designated verification function and packaged input.";

const COMMANDS: [&str; 14] = [
    "build", "protect", "run", "verify", "inspect", "disasm", "gadgets", "coverage", "chain",
    "tamper", "batch", "serve", "report", "profile",
];

/// Dispatches a subcommand.
pub fn dispatch(cmd: &str, raw: &[String]) -> Result<String> {
    let args = Args::parse(raw, &spec_for(cmd))?;
    match cmd {
        "build" => cmd_build(&args),
        "protect" => cmd_protect(&args),
        "run" => cmd_run(&args),
        "verify" => cmd_verify(&args),
        "inspect" => cmd_inspect(&args),
        "disasm" => cmd_disasm(&args),
        "gadgets" => cmd_gadgets(&args),
        "coverage" => cmd_coverage(&args),
        "chain" => cmd_chain(&args),
        "tamper" => cmd_tamper(&args),
        "batch" => cmd_batch(&args),
        "serve" => cmd_serve(&args),
        "report" => cmd_report(&args),
        "profile" => cmd_profile(&args),
        _ => match suggest(cmd, COMMANDS) {
            Some(s) => Err(bail(format!(
                "unknown command `{cmd}` (did you mean `{s}`?)\n\n{USAGE}"
            ))),
            None => Err(bail(format!("unknown command `{cmd}`\n\n{USAGE}"))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        global secret = "k3y";
        fn licensed() { return 0; }
        fn vf(x) { return x * 3 + 1; }
        fn main() {
            // The verification function must run unconditionally so its
            // chain (and guard gadgets) execute on every path.
            let r = vf(2);
            if licensed() == 1 { return r; }
            return 99;
        }
    "#;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("plx-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_owned()
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn build_run_inspect_roundtrip() {
        let src_path = tmp("prog.px");
        std::fs::write(&src_path, SRC).unwrap();
        let out = tmp("prog.plx");

        let msg = dispatch("build", &argv(&[&src_path, "-o", &out])).unwrap();
        assert!(msg.contains("built"));

        let msg = dispatch("run", &argv(&[&out])).unwrap();
        assert!(msg.contains("status 99"), "{msg}");

        let msg = dispatch("inspect", &argv(&[&out])).unwrap();
        assert!(msg.contains("licensed"));
        assert!(msg.contains("entry:"));

        let msg = dispatch("disasm", &argv(&[&out, "licensed"])).unwrap();
        assert!(msg.contains("<licensed>:"));
        assert!(msg.contains("ret"));

        let msg = dispatch("coverage", &argv(&[&out])).unwrap();
        assert!(msg.contains("any rule:"));
    }

    #[test]
    fn protect_and_tamper_flow() {
        let src_path = tmp("prot.px");
        std::fs::write(&src_path, SRC).unwrap();
        let out = tmp("prot.plx");

        let msg = dispatch(
            "protect",
            &argv(&[
                &src_path, "-o", &out, "--verify", "vf", "--guard", "licensed",
            ]),
        )
        .unwrap();
        assert!(msg.contains("chain vf"), "{msg}");

        let msg = dispatch("run", &argv(&[&out])).unwrap();
        assert!(msg.contains("status 99"), "{msg}");

        // Find a gadget address inside `licensed` via `gadgets`, patch it.
        let gout = dispatch("gadgets", &argv(&[&out])).unwrap();
        let line = gout
            .lines()
            .find(|l| l.contains("[in licensed]"))
            .expect("a gadget in licensed");
        let addr = line.trim().split(':').next().unwrap().trim().to_owned();
        let tampered = tmp("prot-tampered.plx");
        let msg = dispatch(
            "tamper",
            &argv(&[&out, "--at", &addr, "--bytes", "90,90", "-o", &tampered]),
        )
        .unwrap();
        assert!(msg.contains("patched"));

        // Fail-closed default: the tampered image is either refused at
        // load (structural verification) or, if the corruption is too
        // subtle for static checks, caught by the runtime watchdog.
        match dispatch("run", &argv(&[&tampered])) {
            Err(e) => assert!(e.0.contains("verify: FAIL"), "{}", e.0),
            Ok(msg) => assert!(
                !msg.contains("status 99"),
                "tampered run should misbehave: {msg}"
            ),
        }
        // The differential-oracle escape hatch always executes it, and
        // the ROP watchdog misbehaves.
        let msg = dispatch("run", &argv(&[&tampered, "--dangerous-skip-verify"])).unwrap();
        assert!(
            !msg.contains("status 99"),
            "tampered run should misbehave: {msg}"
        );
        // Strict verification may or may not catch a NOP-slide tamper
        // statically (the suffix can still scan as a gadget); when it
        // does object, the refusal must be machine-readable. The
        // *runtime* detection above is the paper's actual defense here.
        if let Err(e) = dispatch("verify", &argv(&[&tampered])) {
            assert!(e.0.starts_with("verify: FAIL code="), "{}", e.0);
            assert!(e.0.contains("offset="), "{}", e.0);
        }
    }

    #[test]
    fn verify_passes_clean_image_and_roundtrips_provenance() {
        let src_path = tmp("verif.px");
        std::fs::write(&src_path, SRC).unwrap();
        let out = tmp("verif.plx");
        let prov = tmp("verif-prov");

        let msg = dispatch(
            "protect",
            &argv(&[
                &src_path,
                "-o",
                &out,
                "--verify",
                "vf",
                "--provenance-dir",
                &prov,
            ]),
        )
        .unwrap();
        assert!(msg.contains("provenance:"), "{msg}");

        let msg = dispatch(
            "verify",
            &argv(&[&out, "--provenance", "--provenance-dir", &prov]),
        )
        .unwrap();
        assert!(msg.contains("verify: PASS"), "{msg}");
        assert!(msg.contains("image hash:"), "{msg}");
        assert!(msg.contains("provenance: ok"), "{msg}");
        assert!(msg.contains("stage:"), "{msg}");

        // Tampering with the file breaks the provenance lookup (the
        // hash no longer names a record) even before considering the
        // digest; here the digest check fires first.
        let mut bytes = std::fs::read(&out).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let forged = tmp("verif-forged.plx");
        std::fs::write(&forged, &bytes).unwrap();
        let e = dispatch(
            "verify",
            &argv(&[&forged, "--provenance", "--provenance-dir", &prov]),
        )
        .unwrap_err();
        assert!(e.0.starts_with("verify: FAIL code="), "{}", e.0);

        // A clean copy under a different name still verifies (records
        // are keyed by content, not path).
        let copy = tmp("verif-copy.plx");
        std::fs::copy(&out, &copy).unwrap();
        let msg = dispatch(
            "verify",
            &argv(&[&copy, "--provenance", "--provenance-dir", &prov]),
        )
        .unwrap();
        assert!(msg.contains("provenance: ok"), "{msg}");

        // And an image with no record fails the provenance check while
        // still passing structural verification without --provenance.
        let built = tmp("verif-built.plx");
        dispatch("build", &argv(&[&src_path, "-o", &built])).unwrap();
        assert!(dispatch("verify", &argv(&[&built])).is_ok());
        let e = dispatch(
            "verify",
            &argv(&[&built, "--provenance", "--provenance-dir", &prov]),
        )
        .unwrap_err();
        assert!(e.0.contains("code=provenance-missing"), "{}", e.0);
    }

    #[test]
    fn protect_modes() {
        let src_path = tmp("modes.px");
        std::fs::write(&src_path, SRC).unwrap();
        for mode in ["xor", "rc4", "prob"] {
            let out = tmp(&format!("modes-{mode}.plx"));
            dispatch(
                "protect",
                &argv(&[&src_path, "-o", &out, "--verify", "vf", "--mode", mode]),
            )
            .unwrap();
            let msg = dispatch("run", &argv(&[&out])).unwrap();
            assert!(msg.contains("status 99"), "mode {mode}: {msg}");
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(dispatch("nope", &[]).is_err());
        assert!(dispatch("build", &argv(&["missing.px", "-o", "x"])).is_err());
        let src_path = tmp("bad.px");
        std::fs::write(&src_path, "fn main( {").unwrap();
        let e = dispatch("build", &argv(&[&src_path, "-o", tmp("bad.plx").as_str()])).unwrap_err();
        assert!(e.0.contains("parse error"));
    }
}

#[cfg(test)]
mod chain_cmd_tests {
    use super::*;

    #[test]
    fn chain_disassembly_via_cli() {
        let src_path = {
            let dir = std::env::temp_dir().join("plx-cli-tests");
            std::fs::create_dir_all(&dir).unwrap();
            let p = dir.join("chaincmd.px");
            std::fs::write(
                &p,
                "fn vf(x) { return x + 1; }\nfn main() { return vf(4); }\n",
            )
            .unwrap();
            p.to_str().unwrap().to_owned()
        };
        let out = std::env::temp_dir()
            .join("plx-cli-tests/chaincmd.plx")
            .to_str()
            .unwrap()
            .to_owned();
        let argv =
            |parts: &[&str]| -> Vec<String> { parts.iter().map(|s| s.to_string()).collect() };
        dispatch("protect", &argv(&[&src_path, "-o", &out, "--verify", "vf"])).unwrap();
        let msg = dispatch("chain", &argv(&[&out, "vf"])).unwrap();
        assert!(msg.contains("chain for `vf`"), "{msg}");
        assert!(msg.contains("pop"), "{msg}");
        assert!(msg.contains(".data"), "{msg}");
        // No chain for an unprotected function.
        assert!(dispatch("chain", &argv(&[&out, "main"])).is_err());
    }
}

#[cfg(test)]
mod select_cmd_tests {
    use super::*;

    #[test]
    fn auto_selection_from_cli() {
        let dir = std::env::temp_dir().join("plx-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("select.px");
        std::fs::write(
            &src,
            r#"
            global acc = 0;
            fn fold(x) { return ((x * 31) ^ (x >>> 7)) + 5; }
            fn hot(n) {
                let i = 0;
                let s = 0;
                while i < n { s = s + fold(i) + i * i; i = i + 1; }
                return s;
            }
            fn finish(s) { return (s ^ (s >>> 16)) & 0xff; }
            fn main() {
                let s = hot(300);
                let r = finish(s);
                r = r + finish(s + 1);
                return r & 0xff;
            }
            "#,
        )
        .unwrap();
        let out = dir.join("select.plx");
        let argv: Vec<String> = vec![
            src.to_str().unwrap().into(),
            "-o".into(),
            out.to_str().unwrap().into(),
            "--select".into(),
            "1".into(),
        ];
        let msg = dispatch("protect", &argv).unwrap();
        // `finish` is the §VII-B pick: called twice, tiny, diverse.
        assert!(msg.contains("chain finish"), "{msg}");
        let run = dispatch("run", &[out.to_str().unwrap().to_string()]).unwrap();
        assert!(run.contains("status"), "{run}");
    }
}

#[cfg(test)]
mod trace_cmd_tests {
    use super::*;

    #[test]
    fn run_with_trace_flag() {
        let dir = std::env::temp_dir().join("plx-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("trace.px");
        std::fs::write(&src, "fn main() { return 5; }").unwrap();
        let out = dir.join("trace.plx");
        let argv: Vec<String> = vec![
            src.to_str().unwrap().into(),
            "-o".into(),
            out.to_str().unwrap().into(),
        ];
        dispatch("build", &argv).unwrap();
        let msg = dispatch(
            "run",
            &[out.to_str().unwrap().into(), "--trace".into(), "50".into()],
        )
        .unwrap();
        assert!(msg.contains("status 5"), "{msg}");
    }
}

#[cfg(test)]
mod strict_flag_tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_flag_is_rejected_with_suggestion() {
        let e = dispatch("protect", &argv(&["x.px", "-o", "y", "--mdoe", "xor"])).unwrap_err();
        assert!(
            e.0.contains("unknown flag `--mdoe`") && e.0.contains("did you mean `--mode`?"),
            "{}",
            e.0
        );
        let e = dispatch("run", &argv(&["x.plx", "--debuger"])).unwrap_err();
        assert!(e.0.contains("did you mean `--debugger`?"), "{}", e.0);
        let e = dispatch("batch", &argv(&["m.txt", "--job", "4"])).unwrap_err();
        assert!(e.0.contains("did you mean `--jobs`?"), "{}", e.0);
    }

    #[test]
    fn unknown_flag_without_a_close_match() {
        let e = dispatch("protect", &argv(&["x.px", "--frobnicate", "1"])).unwrap_err();
        assert!(e.0.contains("unknown flag `--frobnicate`"), "{}", e.0);
        assert!(!e.0.contains("did you mean"), "{}", e.0);
    }

    #[test]
    fn flags_are_per_command() {
        // `--mode` belongs to protect, not build.
        let e = dispatch("build", &argv(&["x.px", "-o", "y", "--mode", "xor"])).unwrap_err();
        assert!(e.0.contains("unknown flag `--mode`"), "{}", e.0);
        // Positional-only commands accept no flags at all.
        let e = dispatch("inspect", &argv(&["x.plx", "--verbose"])).unwrap_err();
        assert!(e.0.contains("unknown flag `--verbose`"), "{}", e.0);
    }

    #[test]
    fn unknown_command_suggestion() {
        let e = dispatch("protct", &[]).unwrap_err();
        assert!(e.0.contains("did you mean `protect`?"), "{}", e.0);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("mode", "mode"), 0);
        assert_eq!(edit_distance("mdoe", "mode"), 2);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(suggest("sede", ["seed", "mode"]), Some("seed"));
        assert_eq!(suggest("zzzzzz", ["seed", "mode"]), None);
    }
}

#[cfg(test)]
mod batch_cmd_tests {
    use super::*;

    #[test]
    fn batch_from_manifest() {
        let dir = std::env::temp_dir().join("plx-cli-batch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("batch.px");
        std::fs::write(
            &src,
            "fn vf(x) { return x * 3 + 1; }\nfn main() { return vf(2) & 0xff; }\n",
        )
        .unwrap();
        let manifest = dir.join("batch.manifest");
        std::fs::write(
            &manifest,
            format!(
                "# test manifest\n{} verify=vf modes=cleartext,xor seeds=1,2\n",
                src.display()
            ),
        )
        .unwrap();
        let out_dir = dir.join("out");
        let cache_dir = dir.join("cache");
        let argv: Vec<String> = vec![
            manifest.display().to_string(),
            "--jobs".into(),
            "2".into(),
            "--out".into(),
            out_dir.display().to_string(),
            "--cache-dir".into(),
            cache_dir.display().to_string(),
        ];
        let msg = dispatch("batch", &argv).unwrap();
        assert!(msg.contains("clean"), "{msg}");
        assert!(msg.contains("jobs        4"), "{msg}");
        assert!(msg.contains("cache"), "{msg}");
        // Images land in --out with slash/hash-free names.
        assert!(out_dir.join("batch-cleartext-1.plx").exists());
        assert!(out_dir.join("batch-xor-2.plx").exists());
        // A batch-protected image equals a one-off `plx protect` of the
        // same source, mode, and seed.
        let single = dir.join("single.plx");
        dispatch(
            "protect",
            &[
                src.display().to_string(),
                "-o".into(),
                single.display().to_string(),
                "--verify".into(),
                "vf".into(),
                "--mode".into(),
                "xor".into(),
                "--seed".into(),
                "2".into(),
            ],
        )
        .unwrap();
        assert_eq!(
            std::fs::read(out_dir.join("batch-xor-2.plx")).unwrap(),
            std::fs::read(&single).unwrap(),
            "batch and one-off protect must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_with_trace_out_writes_parseable_trace() {
        let dir = std::env::temp_dir().join("plx-cli-batch-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("bt.px");
        std::fs::write(
            &src,
            "fn vf(x) { return x * 3 + 1; }\nfn main() { return vf(2) & 0xff; }\n",
        )
        .unwrap();
        let manifest = dir.join("bt.manifest");
        std::fs::write(
            &manifest,
            format!("{} verify=vf modes=cleartext\n", src.display()),
        )
        .unwrap();
        let trace = dir.join("bt-trace.json");
        let msg = dispatch(
            "batch",
            &[
                manifest.display().to_string(),
                "--jobs".into(),
                "1".into(),
                "--cache-dir".into(),
                "none".into(),
                "--trace-out".into(),
                trace.display().to_string(),
            ],
        )
        .unwrap();
        assert!(msg.contains("trace:"), "{msg}");
        let tf = parallax_trace::TraceFile::parse(&std::fs::read_to_string(&trace).unwrap())
            .expect("batch trace parses");
        let names: Vec<&str> = tf.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("job:")), "{names:?}");
        assert!(names.contains(&"chain-compile"), "{names:?}");
        assert!(names.contains(&"validate"), "{names:?}");
        assert!(
            tf.instants.iter().any(|i| i.name == "job_finished"),
            "engine events become instants"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_rejects_bad_manifests() {
        let dir = std::env::temp_dir().join("plx-cli-batch-tests-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("bad.manifest");
        std::fs::write(&manifest, "corpus:wget mode=rot13\n").unwrap();
        let e = dispatch("batch", &[manifest.display().to_string()]).unwrap_err();
        assert!(e.0.contains("unknown mode"), "{}", e.0);
        let e = dispatch("batch", &[]).unwrap_err();
        assert!(e.0.contains("missing manifest"), "{}", e.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod report_cmd_tests {
    use super::*;
    use parallax_trace::TraceFile;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn protect_traced_corpus(dir: &std::path::Path, seed: &str) -> (String, String) {
        let out = dir.join(format!("gzip-{seed}.plx")).display().to_string();
        let trace = dir.join(format!("gzip-{seed}.json")).display().to_string();
        let msg = dispatch(
            "protect",
            &[
                // corpus:NAME source; --verify defaults to the
                // workload's designated verification function.
                "corpus:gzip".into(),
                "-o".into(),
                out.clone(),
                "--seed".into(),
                seed.into(),
                "--trace-out".into(),
                trace.clone(),
            ],
        )
        .unwrap();
        assert!(msg.contains("chain chunk_header"), "{msg}");
        assert!(msg.contains("trace:"), "{msg}");
        (out, trace)
    }

    #[test]
    fn corpus_protect_trace_meets_acceptance_shape() {
        let dir = tmp_dir("plx-cli-report-tests");
        let (_, trace) = protect_traced_corpus(&dir, "1");
        let tf = TraceFile::parse(&std::fs::read_to_string(&trace).unwrap())
            .expect("protect trace parses");

        // All seven protect stages as spans nested under the root.
        let root = tf.spans_named("protect").next().expect("root span");
        for stage in [
            "select",
            "load",
            "rewrite",
            "gadget-scan",
            "chain-compile",
            "map",
            "link",
        ] {
            let span = tf.spans_named(stage).next().unwrap_or_else(|| {
                panic!("missing {stage} span");
            });
            assert_eq!(span.cat, "stage", "{stage}");
            assert_eq!(span.parent, Some(root.id), "{stage} nests under root");
        }
        // At least one VM chain-execution span with per-gadget
        // dispatch events, on the cycle-denominated lane. (The ropc
        // compile spans share the `chain:` name but live in "ropc".)
        let chain = tf
            .spans_named("chain:chunk_header")
            .find(|s| s.cat == "vm")
            .expect("chain execution span");
        assert_eq!(
            tf.thread_names.get(&chain.tid).map(String::as_str),
            Some("vm-chain (cycles)")
        );
        let dispatches = tf.instants.iter().filter(|i| i.name == "gadget").count();
        assert!(dispatches >= 1, "per-gadget dispatch events recorded");
        assert!(tf.counters["vm.run.cycles"] > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_renders_paper_tables_from_protect_trace() {
        let dir = tmp_dir("plx-cli-report-render-tests");
        let (_, trace) = protect_traced_corpus(&dir, "2");
        let msg = dispatch("report", &[trace]).unwrap();
        for needle in [
            "pipeline stages",
            "chain-compile",
            "verification overhead (per function)",
            "chunk_header",
            "overhead",
            "chain length distribution",
            "overlapping gadget fraction",
        ] {
            assert!(msg.contains(needle), "missing {needle:?} in:\n{msg}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_trace_out_and_diff() {
        let dir = tmp_dir("plx-cli-report-diff-tests");
        let (img, trace_a) = protect_traced_corpus(&dir, "3");
        // `plx run --trace-out` recovers chain telemetry from the saved
        // image alone (no protect report at hand). The workload needs
        // its input or it exits before the verify function runs.
        let input = dir.join("gzip.input");
        let w = parallax_corpus::by_name("gzip").unwrap();
        std::fs::write(&input, (w.input)()).unwrap();
        let trace_b = dir.join("run.json").display().to_string();
        let msg = dispatch(
            "run",
            &[
                img,
                "--input".into(),
                input.display().to_string(),
                "--trace-out".into(),
                trace_b.clone(),
            ],
        )
        .unwrap();
        assert!(msg.contains("trace written to"), "{msg}");
        let tf = TraceFile::parse(&std::fs::read_to_string(&trace_b).unwrap())
            .expect("run trace parses");
        assert!(tf.spans_named("chain:chunk_header").any(|s| s.cat == "vm"));
        assert!(tf.counters["vm.run.cycles"] > 0);

        let diff = dispatch("report", &["--diff".into(), trace_a, trace_b]).unwrap();
        assert!(
            diff.contains("pipeline stages (wall time, b - a)"),
            "{diff}"
        );
        assert!(diff.contains("chunk_header"), "{diff}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_corpus_and_bad_traces_error_cleanly() {
        let e = dispatch("protect", &["corpus:emacs".into(), "-o".into(), "x".into()]).unwrap_err();
        assert!(e.0.contains("unknown corpus workload `emacs`"), "{}", e.0);
        assert!(e.0.contains("gzip"), "{}", e.0);
        let e = dispatch("report", &["no-such-trace.json".into()]).unwrap_err();
        assert!(e.0.contains("no-such-trace.json"), "{}", e.0);
        let dir = tmp_dir("plx-cli-report-bad-tests");
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"traceEvents\":[]}").unwrap();
        let e = dispatch("report", &[bad.display().to_string()]).unwrap_err();
        assert!(e.0.contains("empty"), "{}", e.0);
        let e = dispatch("report", &[]).unwrap_err();
        assert!(e.0.contains("missing trace file"), "{}", e.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
