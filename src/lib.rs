//! Parallax umbrella crate: re-exports all subsystem crates and hosts
//! the `plx` command-line tool ([`cli`]).
pub mod cli;
pub mod profile;
pub mod report;

pub use parallax_baselines as baselines;
pub use parallax_compiler as compiler;
pub use parallax_core as core;
pub use parallax_corpus as corpus;
pub use parallax_gadgets as gadgets;
pub use parallax_image as image;
pub use parallax_rewrite as rewrite;
pub use parallax_ropc as ropc;
pub use parallax_serve as serve;
pub use parallax_trace as trace;
pub use parallax_vm as vm;
pub use parallax_x86 as x86;
