//! `plx profile`: bottleneck analysis of a `--trace-out` file.
//!
//! Built on `parallax-trace`'s critical-path analyzer ([`analyze`]),
//! this module answers the question ROADMAP item 1 opens with — *why*
//! is the parallel speedup flat? — from one traced run:
//!
//! * the **critical path** and measured serial fraction, with the
//!   Amdahl ceiling they imply for 2/4/8 workers;
//! * per-**stage** wall/serial splits (which pipeline stages are
//!   single-laned);
//! * a ranked **bottlenecks** list combining serial-span attribution
//!   with the `pool.*` contention counters (lock-wait, failed steals,
//!   serial merge) and `vm.probe.*` probe-VM construction cost; and
//! * a per-site **pool** table (steals, contention, merge).
//!
//! The bottlenecks section is shared with `plx report`.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use parallax_trace::{analyze, TraceFile};

/// One ranked bottleneck: a quantified reason the run did not scale.
#[derive(Debug, Clone)]
pub struct Bottleneck {
    /// Human-readable label, e.g. `"serial: gadget-scan"` or
    /// `"pool contention (chain)"`.
    pub label: String,
    /// Cost in microseconds (serial time, lock-wait time, build time).
    pub us: u64,
    /// Supporting detail (counts, means).
    pub detail: String,
}

/// Pool sites (`pool.<site>.*` namespaces) present in a trace.
pub fn pool_sites(tf: &TraceFile) -> Vec<String> {
    let mut sites = BTreeSet::new();
    for key in tf.counters.keys() {
        if let Some(rest) = key.strip_prefix("pool.") {
            if let Some((site, _)) = rest.split_once('.') {
                sites.insert(site.to_string());
            }
        }
    }
    sites.into_iter().collect()
}

fn get(tf: &TraceFile, k: &str) -> u64 {
    tf.counters.get(k).copied().unwrap_or(0)
}

/// Assembles the ranked bottleneck list for a trace: top serial spans
/// from the critical-path sweep, per-site pool lock contention and
/// serial merges, and probe-VM construction. Sorted by cost,
/// descending; entries costing nothing are dropped.
pub fn bottlenecks(tf: &TraceFile) -> Vec<Bottleneck> {
    let prof = analyze(tf);
    let mut out: Vec<Bottleneck> = Vec::new();
    for s in prof.serial_spans.iter().take(5) {
        out.push(Bottleneck {
            label: format!("serial: {}", s.name),
            us: s.serial_us,
            detail: "single-lane execution".to_string(),
        });
    }
    for site in pool_sites(tf) {
        let p = |s: &str| get(tf, &format!("pool.{site}.{s}"));
        let wait_us = p("lock.wait_ns") / 1_000;
        if wait_us > 0 {
            out.push(Bottleneck {
                label: format!("pool contention ({site})"),
                us: wait_us,
                detail: format!(
                    "{} contended acquisitions, {} failed steals",
                    p("lock.contended"),
                    p("steal.fail")
                ),
            });
        }
        let merge_us = p("merge_ns") / 1_000;
        if merge_us > 0 {
            out.push(Bottleneck {
                label: format!("merge ({site})"),
                us: merge_us,
                detail: "serial result merge".to_string(),
            });
        }
    }
    let builds = get(tf, "vm.probe.builds");
    let build_us = get(tf, "vm.probe.build_ns") / 1_000;
    if build_us > 0 {
        out.push(Bottleneck {
            label: "probe-VM construction".to_string(),
            us: build_us,
            detail: format!(
                "{builds} probe VMs, mean {:.3} ms",
                build_us as f64 / 1e3 / builds.max(1) as f64
            ),
        });
    }
    out.retain(|b| b.us > 0);
    out.sort_by(|x, y| y.us.cmp(&x.us).then(x.label.cmp(&y.label)));
    out
}

/// Writes the ranked `bottlenecks` section (shared between
/// `plx profile` and `plx report`). Writes nothing when the trace
/// yields no attributable cost.
pub fn bottlenecks_table(out: &mut String, tf: &TraceFile) {
    let ranked = bottlenecks(tf);
    if ranked.is_empty() {
        return;
    }
    let _ = writeln!(out, "bottlenecks (top blockers):");
    for (i, b) in ranked.iter().take(8).enumerate() {
        let _ = writeln!(
            out,
            "  {}. {:<28} {:>10.3} ms  ({})",
            i + 1,
            b.label,
            b.us as f64 / 1e3,
            b.detail
        );
    }
}

/// Writes the per-site pool table: scheduling and contention counters
/// for every `pool.<site>.*` namespace in the trace.
fn pool_table(out: &mut String, tf: &TraceFile) {
    let sites = pool_sites(tf);
    if sites.is_empty() {
        return;
    }
    let _ = writeln!(out, "pool sites:");
    let _ = writeln!(
        out,
        "  {:<9} {:>4} {:>7} {:>6} {:>13} {:>9} {:>11} {:>11}",
        "site", "runs", "workers", "items", "steal ok/fail", "contended", "lock-wait", "merge"
    );
    for site in sites {
        let p = |s: &str| get(tf, &format!("pool.{site}.{s}"));
        let workers = tf
            .hists
            .get(&format!("pool.{site}.workers"))
            .map(|h| h.max)
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "  {:<9} {:>4} {:>7} {:>6} {:>13} {:>9} {:>8.3} ms {:>8.3} ms",
            site,
            p("runs"),
            workers,
            p("items"),
            format!("{}/{}", p("steal.ok"), p("steal.fail")),
            p("lock.contended"),
            p("lock.wait_ns") as f64 / 1e6,
            p("merge_ns") as f64 / 1e6,
        );
    }
}

/// Renders the full `plx profile` view of one trace file.
pub fn render_profile(tf: &TraceFile) -> String {
    let prof = analyze(tf);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {:.3} ms wall, {:.3} ms critical path, {:.3} ms idle",
        prof.wall_us() as f64 / 1e3,
        prof.critical_us as f64 / 1e3,
        prof.idle_us as f64 / 1e3,
    );
    let _ = writeln!(
        out,
        "  serial {:.3} ms ({:.1}%)   parallel {:.3} ms   lanes {} (peak concurrency {})",
        prof.serial_us as f64 / 1e3,
        prof.serial_fraction() * 100.0,
        prof.parallel_us as f64 / 1e3,
        prof.lanes,
        prof.max_concurrency,
    );
    let _ = writeln!(
        out,
        "  amdahl ceiling: 2 workers {:.2}x, 4 workers {:.2}x, 8 workers {:.2}x  (measured serial fraction {:.3})",
        prof.amdahl_ceiling(2),
        prof.amdahl_ceiling(4),
        prof.amdahl_ceiling(8),
        prof.serial_fraction(),
    );
    if !prof.stages.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "stage concurrency:");
        let _ = writeln!(
            out,
            "  {:<14} {:>12} {:>12} {:>8}",
            "stage", "wall", "serial", "serial%"
        );
        for st in &prof.stages {
            let _ = writeln!(
                out,
                "  {:<14} {:>9.3} ms {:>9.3} ms {:>7.1}%",
                st.name,
                st.wall_us as f64 / 1e3,
                st.serial_us as f64 / 1e3,
                st.serial_fraction() * 100.0,
            );
        }
    }
    out.push('\n');
    let before = out.len();
    bottlenecks_table(&mut out, tf);
    if out.len() == before {
        let _ = writeln!(
            out,
            "bottlenecks: none attributable (trace carries no spans?)"
        );
    }
    out.push('\n');
    pool_table(&mut out, tf);
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_trace::{chrome_json, Tracer};

    /// A trace shaped like a 4-job protect run: serial stages around a
    /// fanned-out scan, with pool contention and probe-VM counters.
    fn profiled_trace() -> TraceFile {
        let t = Tracer::new();
        {
            let _root = t.span("protect", "pipeline");
            {
                let _s = t.span("select", "stage");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let scan = t.enter("gadget-scan", "stage");
            let base = t.elapsed_us();
            for w in 0..4 {
                let lane = t.lane(&format!("pool.scan.w{w}"));
                t.span_at(&format!("scan#{w}"), "pool", lane, base, 1_000);
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            t.exit(scan);
        }
        t.count("pool.scan.runs", 1);
        t.count("pool.scan.items", 8);
        t.count("pool.scan.steal.ok", 3);
        t.count("pool.scan.steal.fail", 9);
        t.count("pool.scan.lock.contended", 4);
        t.count("pool.scan.lock.wait_ns", 2_500_000);
        t.count("pool.scan.merge_ns", 800_000);
        t.count("pool.scan.run_ns", 4_000_000);
        t.record("pool.scan.workers", 4);
        t.count("vm.probe.builds", 8);
        t.count("vm.probe.build_ns", 12_000_000);
        TraceFile::parse(&chrome_json(&t.snapshot())).expect("trace parses")
    }

    #[test]
    fn bottlenecks_rank_contention_probe_and_merge() {
        let tf = profiled_trace();
        let ranked = bottlenecks(&tf);
        assert!(!ranked.is_empty());
        let labels: Vec<&str> = ranked.iter().map(|b| b.label.as_str()).collect();
        assert!(
            labels.contains(&"pool contention (scan)"),
            "pool contention must be attributable: {labels:?}"
        );
        assert!(
            labels.contains(&"probe-VM construction"),
            "probe-VM construction must be attributable: {labels:?}"
        );
        assert!(
            labels.contains(&"merge (scan)"),
            "merge must be attributable: {labels:?}"
        );
        // Ranked by cost, descending.
        for pair in ranked.windows(2) {
            assert!(pair[0].us >= pair[1].us);
        }
        // Quantified: contention carries its counter detail.
        let cont = ranked
            .iter()
            .find(|b| b.label == "pool contention (scan)")
            .expect("contention entry");
        assert_eq!(cont.us, 2_500);
        assert!(cont.detail.contains("4 contended"), "{}", cont.detail);
        assert!(cont.detail.contains("9 failed steals"), "{}", cont.detail);
    }

    #[test]
    fn render_profile_names_top_blockers() {
        let tf = profiled_trace();
        let text = render_profile(&tf);
        for needle in [
            "profile:",
            "critical path",
            "amdahl ceiling",
            "stage concurrency:",
            "gadget-scan",
            "bottlenecks (top blockers):",
            "pool contention (scan)",
            "probe-VM construction",
            "merge (scan)",
            "pool sites:",
            "steal ok/fail",
            "3/9",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn spanless_trace_degrades() {
        let t = Tracer::new();
        t.count("something.else", 1);
        t.instant("x", "misc", Vec::new());
        let tf = TraceFile::parse(&chrome_json(&t.snapshot())).expect("parses");
        let text = render_profile(&tf);
        assert!(text.contains("none attributable"), "{text}");
    }
}
