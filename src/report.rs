//! `plx report`: paper-style evaluation tables from `--trace-out`
//! files.
//!
//! The report mirrors the tables of the source paper's evaluation
//! (§VII): per-function verification overhead (cycles per invocation
//! and share of total runtime), chain length distribution, and the
//! §IV-B overlapping-gadget fraction — all reconstructed from the
//! counters, histograms, and spans a single traced run emits, so
//! `plx protect --trace-out t.json` followed by `plx report t.json`
//! needs no other artifacts. `render_diff` compares two trace files
//! stage by stage for before/after measurements.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use parallax_trace::{Histogram, TraceFile};

/// The seven pipeline stages in execution order, as span names.
const STAGES: [&str; 7] = [
    "select",
    "load",
    "rewrite",
    "gadget-scan",
    "chain-compile",
    "map",
    "link",
];

/// Per-function verification statistics pulled from `vf.*` counters.
#[derive(Debug, Clone, PartialEq)]
pub struct VfRow {
    /// Verification function name.
    pub func: String,
    /// Chain executions observed.
    pub invocations: u64,
    /// Gadget dispatches across all invocations.
    pub dispatches: u64,
    /// VM cycles across all invocations.
    pub cycles: u64,
}

impl VfRow {
    /// Mean cycles per invocation (0.0 when never invoked).
    pub fn cycles_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.cycles as f64 / self.invocations as f64
        }
    }

    /// Share of `total_cycles` spent verifying (0.0 when unknown).
    pub fn overhead(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.cycles as f64 / total_cycles as f64
        }
    }
}

/// Extracts the per-function verification rows from a trace's
/// `vf.<func>.{invocations,cycles,dispatches}` counters, name-sorted.
pub fn vf_rows(tf: &TraceFile) -> Vec<VfRow> {
    let mut funcs = BTreeSet::new();
    for key in tf.counters.keys() {
        if let Some(rest) = key.strip_prefix("vf.") {
            if let Some(func) = rest.strip_suffix(".invocations") {
                funcs.insert(func.to_string());
            }
        }
    }
    funcs
        .into_iter()
        .map(|func| {
            let get = |suffix: &str| {
                tf.counters
                    .get(&format!("vf.{func}.{suffix}"))
                    .copied()
                    .unwrap_or(0)
            };
            VfRow {
                invocations: get("invocations"),
                dispatches: get("dispatches"),
                cycles: get("cycles"),
                func,
            }
        })
        .collect()
}

/// Total VM cycles of the traced run, if the trace recorded them.
pub fn total_run_cycles(tf: &TraceFile) -> Option<u64> {
    tf.counters.get("vm.run.cycles").copied()
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 * 100.0 / den as f64
    }
}

fn stage_table(out: &mut String, tf: &TraceFile) {
    if !STAGES.iter().any(|s| tf.spans_named(s).next().is_some()) {
        return;
    }
    let _ = writeln!(out, "pipeline stages (wall time):");
    for stage in STAGES {
        let blocks = tf.spans_named(stage).count() as u64;
        let _ = writeln!(
            out,
            "  {:<14} {:>10.3} ms  ({blocks} blocks)",
            stage,
            tf.total_dur_us(stage) as f64 / 1e3
        );
    }
}

/// Parallel/incremental protection telemetry: wall vs CPU time of the
/// fanned-out rewrite and chain-compile passes, pool behaviour, and
/// the function-grained artifact cache.
fn parallel_table(out: &mut String, tf: &TraceFile) {
    let get = |k: &str| tf.counters.get(k).copied().unwrap_or(0);
    let (rw_wall, rw_cpu) = (
        get("protect.par.rewrite.wall_us"),
        get("protect.par.rewrite.cpu_us"),
    );
    let (ch_wall, ch_cpu) = (
        get("protect.par.chain.wall_us"),
        get("protect.par.chain.cpu_us"),
    );
    let (hits, misses) = (get("cache.func.hit"), get("cache.func.miss"));
    if rw_wall + ch_wall == 0 && hits + misses == 0 {
        return;
    }
    let _ = writeln!(out, "protection pipeline (parallel + incremental):");
    if rw_wall + ch_wall > 0 {
        let workers = tf
            .hists
            .get("protect.par.workers")
            .map(|h| h.max)
            .unwrap_or(1);
        let _ = writeln!(
            out,
            "  workers: {workers}   steals: {}",
            get("protect.par.steals")
        );
        let speedup = |cpu: u64, wall: u64| {
            if wall == 0 {
                0.0
            } else {
                cpu as f64 / wall as f64
            }
        };
        for (name, wall, cpu) in [
            ("rewrite", rw_wall, rw_cpu),
            ("chain-compile", ch_wall, ch_cpu),
        ] {
            if wall == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {name:<14} {:>9.3} ms wall  {:>9.3} ms cpu  ({:.2}x parallel speedup)",
                wall as f64 / 1e3,
                cpu as f64 / 1e3,
                speedup(cpu, wall)
            );
        }
    }
    if hits + misses > 0 {
        let _ = writeln!(
            out,
            "  func cache: {hits} hits, {misses} misses ({:.1}% hit rate)",
            pct(hits, hits + misses)
        );
        let (rh, rm) = (
            get("cache.func.rewritten.hit"),
            get("cache.func.rewritten.miss"),
        );
        let (gh, gm) = (get("cache.func.chain.hit"), get("cache.func.chain.miss"));
        if rh + rm + gh + gm > 0 {
            let _ = writeln!(
                out,
                "    rewritten-func: {rh} hits / {rm} misses   compiled-chain: {gh} hits / {gm} misses"
            );
        }
    }
}

fn vf_table(out: &mut String, tf: &TraceFile) {
    let rows = vf_rows(tf);
    if rows.is_empty() {
        return;
    }
    let total = total_run_cycles(tf);
    let _ = writeln!(out, "verification overhead (per function):");
    let _ = writeln!(
        out,
        "  {:<20} {:>7} {:>10} {:>12} {:>12}  {:>9}",
        "function", "invocs", "dispatches", "cycles", "cyc/invoc", "overhead"
    );
    for r in &rows {
        let overhead = match total {
            Some(t) => format!("{:8.2}%", r.overhead(t) * 100.0),
            None => "       ?".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<20} {:>7} {:>10} {:>12} {:>12.1}  {overhead}",
            r.func,
            r.invocations,
            r.dispatches,
            r.cycles,
            r.cycles_per_invocation()
        );
    }
    if let Some(t) = total {
        let _ = writeln!(out, "  total run cycles: {t}");
    }
}

fn chain_table(out: &mut String, tf: &TraceFile) {
    let Some(words) = tf.hists.get("chain.words") else {
        return;
    };
    let _ = writeln!(out, "chain length distribution (words):");
    let _ = writeln!(
        out,
        "  chains: {}   mean: {:.1}   min: {}   max: {}",
        words.count,
        words.mean(),
        words.min,
        words.max
    );
    let peak = words.buckets.iter().map(|&(_, n)| n).max().unwrap_or(1);
    for &(bits, n) in &words.buckets {
        let (lo, hi) = Histogram::bucket_range(bits);
        let bar = "#".repeat(((n * 24).div_ceil(peak.max(1))) as usize);
        let _ = writeln!(out, "  [{lo:>6}..{hi:>6}] {n:>5}  {bar}");
    }
    if let Some(ops) = tf.hists.get("chain.ops") {
        let _ = writeln!(
            out,
            "  gadget ops per chain: mean {:.1} (min {}, max {})",
            ops.mean(),
            ops.min,
            ops.max
        );
    }
}

fn gadget_table(out: &mut String, tf: &TraceFile) {
    let used = tf.counters.get("chain.used.total").copied().unwrap_or(0);
    let overl = tf
        .counters
        .get("chain.used.overlapping")
        .copied()
        .unwrap_or(0);
    let pick_o = tf
        .counters
        .get("chain.pick.overlapping")
        .copied()
        .unwrap_or(0);
    let pick_x = tf.counters.get("chain.pick.other").copied().unwrap_or(0);
    if used == 0 && pick_o + pick_x == 0 {
        return;
    }
    let _ = writeln!(out, "gadget provenance (paper SIV-B):");
    if used > 0 {
        let _ = writeln!(
            out,
            "  overlapping gadget fraction: {:.1}%  ({overl} of {used} used gadgets)",
            pct(overl, used)
        );
    }
    if pick_o + pick_x > 0 {
        let _ = writeln!(
            out,
            "  selections preferring overlap: {:.1}%  ({pick_o} of {} selections)",
            pct(pick_o, pick_o + pick_x),
            pick_o + pick_x
        );
    }
    let kinds: Vec<(&str, u64)> = tf
        .counters
        .iter()
        .filter_map(|(k, &v)| k.strip_prefix("vm.dispatch.kind.").map(|r| (r, v)))
        .collect();
    if !kinds.is_empty() {
        let total: u64 = kinds.iter().map(|&(_, n)| n).sum();
        let _ = writeln!(out, "  dispatches by gadget kind:");
        for (kind, n) in kinds {
            let _ = writeln!(out, "    {kind:<12} {n:>6}  ({:.1}%)", pct(n, total));
        }
    }
}

/// Block-translation cache and scanner-memoization behaviour: how the
/// execution engine served the traced runs.
fn engine_table(out: &mut String, tf: &TraceFile) {
    let get = |k: &str| tf.counters.get(k).copied().unwrap_or(0);
    let (hits, misses, inval) = (
        get("vm.block.hit"),
        get("vm.block.miss"),
        get("vm.block.invalidate"),
    );
    let (offsets, decoded, memo) = (
        get("scan.decode.offsets"),
        get("scan.decode.once"),
        get("scan.decode.memo_hit"),
    );
    if hits + misses == 0 && decoded == 0 {
        return;
    }
    let _ = writeln!(out, "execution engine:");
    if hits + misses > 0 {
        let _ = writeln!(
            out,
            "  block cache: {hits} hits, {misses} misses ({:.1}% hit rate), {inval} invalidations",
            pct(hits, hits + misses)
        );
    }
    if decoded > 0 {
        let amort = memo as f64 / decoded as f64;
        let _ = writeln!(
            out,
            "  gadget scan: {decoded} decodes over {offsets} text offsets, \
             {memo} memoized walk steps ({amort:.1}x amortization)"
        );
    }
}

/// Shared-trial gadget-validation telemetry: probe executions per
/// proposal (at most two — one per trial — regardless of how many
/// effects a proposal carries), the per-(effect, trial) runs the
/// shared path avoided, and scratch-reseeding volume.
fn validation_table(out: &mut String, tf: &TraceFile) {
    let get = |k: &str| tf.counters.get(k).copied().unwrap_or(0);
    let proposals = get("vm.probe.proposals");
    let runs = get("vm.probe.runs");
    if proposals + runs == 0 {
        return;
    }
    let per = if proposals == 0 {
        0.0
    } else {
        runs as f64 / proposals as f64
    };
    let saved = get("vm.probe.runs_saved");
    let _ = writeln!(out, "gadget validation (shared-trial probes):");
    let _ = writeln!(
        out,
        "  proposals: {proposals}   probe runs: {runs} ({per:.2} per proposal)   runs saved: {saved} ({:.1}%)",
        pct(saved, runs + saved)
    );
    let _ = writeln!(
        out,
        "  scratch reseed: {} words   probe VMs: {} built ({:.3} ms)",
        get("vm.probe.reseed_words"),
        get("vm.probe.builds"),
        get("vm.probe.build_ns") as f64 / 1e6
    );
}

/// Fail-closed loading telemetry: image verifications (pass/fail and
/// wall time) and cache entries refused by load-time verification.
fn verification_table(out: &mut String, tf: &TraceFile) {
    let get = |k: &str| tf.counters.get(k).copied().unwrap_or(0);
    let (pass, fail, ns) = (
        get("image.verify.pass"),
        get("image.verify.fail"),
        get("image.verify.ns"),
    );
    let cache_fail = get("cache.verify.fail");
    if pass + fail + cache_fail == 0 {
        return;
    }
    let _ = writeln!(out, "verification:");
    if pass + fail > 0 {
        let _ = writeln!(
            out,
            "  image loads:  {pass} verified, {fail} refused ({:.3} ms total)",
            ns as f64 / 1e6
        );
    }
    if cache_fail > 0 {
        let _ = writeln!(
            out,
            "  cache:        {cache_fail} entries refused by load-time verification"
        );
    }
}

/// Request kinds the daemon serves, in display order.
const SERVE_KINDS: [&str; 5] = ["protect", "verify", "status", "report", "shutdown"];

/// Resident-daemon telemetry (`plx serve --trace-out`): request mix,
/// per-kind latency percentiles, the admission-queue watermark, and
/// the shed taxonomy — the service-side view of the fleet scenario.
fn service_table(out: &mut String, tf: &TraceFile) {
    let get = |k: &str| tf.counters.get(k).copied().unwrap_or(0);
    let requests: u64 = SERVE_KINDS
        .iter()
        .map(|k| get(&format!("serve.requests.{k}")))
        .sum();
    let admitted = get("serve.admitted");
    let shed: u64 = tf
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("serve.shed."))
        .map(|(_, &v)| v)
        .sum();
    if requests + admitted + shed == 0 {
        return;
    }
    let _ = writeln!(out, "service (plx serve):");
    let mix: Vec<String> = SERVE_KINDS
        .iter()
        .filter_map(|k| {
            let n = get(&format!("serve.requests.{k}"));
            (n > 0).then(|| format!("{k} {n}"))
        })
        .collect();
    let _ = writeln!(out, "  requests: {requests}  ({})", mix.join(", "));
    for kind in SERVE_KINDS {
        let Some(h) = tf.hists.get(&format!("serve.latency.{kind}_us")) else {
            continue;
        };
        let _ = writeln!(
            out,
            "  latency   {kind:<9} p50 {:>9.3} ms   p99 {:>9.3} ms  ({} samples)",
            h.percentile(0.50) as f64 / 1e3,
            h.percentile(0.99) as f64 / 1e3,
            h.count
        );
    }
    if let Some(depth) = tf.hists.get("serve.queue.depth") {
        let _ = writeln!(out, "  queue depth max: {}", depth.max);
    }
    if admitted + shed > 0 {
        let _ = writeln!(
            out,
            "  admission: {admitted} admitted / {shed} shed ({:.1}% shed rate)",
            pct(shed, admitted + shed)
        );
        for (key, &n) in tf.counters.iter() {
            if let Some(reason) = key.strip_prefix("serve.shed.") {
                let _ = writeln!(out, "    shed.{reason:<11} {n}");
            }
        }
    }
    let (conns, timeouts, proto) = (
        get("serve.conn.accepted"),
        get("serve.conn.timeout"),
        get("serve.proto.error"),
    );
    if conns + timeouts + proto > 0 {
        let _ = writeln!(
            out,
            "  connections: {conns} accepted, {timeouts} timed out, {proto} protocol errors"
        );
    }
    let (fl_rec, fl_shed, fl_slow, fl_vf) = (
        get("serve.flight.recorded"),
        get("serve.flight.snapshot.shed"),
        get("serve.flight.snapshot.slow-request"),
        get("serve.flight.snapshot.verify-fail"),
    );
    if fl_rec + fl_shed + fl_slow + fl_vf > 0 {
        let _ = writeln!(
            out,
            "  flight recorder: {fl_rec} requests recorded; snapshots: {fl_shed} shed, {fl_slow} slow-request, {fl_vf} verify-fail"
        );
    }
}

/// Renders the full report for one trace file.
pub fn render_report(tf: &TraceFile) -> String {
    let mut out = String::new();
    stage_table(&mut out, tf);
    if !out.is_empty() {
        out.push('\n');
    }
    parallel_table(&mut out, tf);
    if !out.ends_with("\n\n") && !out.is_empty() {
        out.push('\n');
    }
    vf_table(&mut out, tf);
    if !out.ends_with("\n\n") && !out.is_empty() {
        out.push('\n');
    }
    chain_table(&mut out, tf);
    if !out.ends_with("\n\n") && !out.is_empty() {
        out.push('\n');
    }
    gadget_table(&mut out, tf);
    if !out.ends_with("\n\n") && !out.is_empty() {
        out.push('\n');
    }
    engine_table(&mut out, tf);
    if !out.ends_with("\n\n") && !out.is_empty() {
        out.push('\n');
    }
    validation_table(&mut out, tf);
    if !out.ends_with("\n\n") && !out.is_empty() {
        out.push('\n');
    }
    verification_table(&mut out, tf);
    if !out.ends_with("\n\n") && !out.is_empty() {
        out.push('\n');
    }
    service_table(&mut out, tf);
    if !out.ends_with("\n\n") && !out.is_empty() {
        out.push('\n');
    }
    crate::profile::bottlenecks_table(&mut out, tf);
    let trimmed = out.trim_end().to_string();
    if trimmed.is_empty() {
        "trace contains no reportable metrics (was it produced with --trace-out?)".to_string()
    } else {
        trimmed
    }
}

fn signed_ms(delta_us: i64) -> String {
    format!("{:+.3} ms", delta_us as f64 / 1e3)
}

/// Renders a stage-by-stage and overhead comparison of two traces
/// (`b` relative to `a`).
pub fn render_diff(a: &TraceFile, b: &TraceFile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "pipeline stages (wall time, b - a):");
    let _ = writeln!(
        out,
        "  {:<14} {:>12} {:>12} {:>12}",
        "stage", "a", "b", "delta"
    );
    for stage in STAGES {
        let ta = a.total_dur_us(stage);
        let tb = b.total_dur_us(stage);
        let _ = writeln!(
            out,
            "  {:<14} {:>9.3} ms {:>9.3} ms {:>12}",
            stage,
            ta as f64 / 1e3,
            tb as f64 / 1e3,
            signed_ms(tb as i64 - ta as i64)
        );
    }

    // Parallel-vs-sequential comparison of the fanned-out stages: when
    // either trace carries `protect.par.*` counters (e.g. a --jobs 1
    // baseline against a --jobs N run), show wall-time deltas and how
    // the parallel speedup moved.
    let par = |tf: &TraceFile, k: &str| tf.counters.get(k).copied().unwrap_or(0);
    let par_stages = [
        ("rewrite", "protect.par.rewrite"),
        ("chain-compile", "protect.par.chain"),
    ];
    if par_stages
        .iter()
        .any(|(_, p)| par(a, &format!("{p}.wall_us")) + par(b, &format!("{p}.wall_us")) > 0)
    {
        let _ = writeln!(out, "\nparallel protection (wall time, b - a):");
        for (name, p) in par_stages {
            let (wa, wb) = (
                par(a, &format!("{p}.wall_us")),
                par(b, &format!("{p}.wall_us")),
            );
            let (ca, cb) = (
                par(a, &format!("{p}.cpu_us")),
                par(b, &format!("{p}.cpu_us")),
            );
            if wa + wb == 0 {
                continue;
            }
            let sp = |cpu: u64, wall: u64| {
                if wall == 0 {
                    0.0
                } else {
                    cpu as f64 / wall as f64
                }
            };
            let _ = writeln!(
                out,
                "  {name:<14} {:>9.3} ms -> {:>9.3} ms ({})   speedup {:.2}x -> {:.2}x",
                wa as f64 / 1e3,
                wb as f64 / 1e3,
                signed_ms(wb as i64 - wa as i64),
                sp(ca, wa),
                sp(cb, wb)
            );
        }
        let (fa, fb) = (
            (par(a, "cache.func.hit"), par(a, "cache.func.miss")),
            (par(b, "cache.func.hit"), par(b, "cache.func.miss")),
        );
        if fa.0 + fa.1 + fb.0 + fb.1 > 0 {
            let _ = writeln!(
                out,
                "  func cache     {:.1}% -> {:.1}% hit rate ({} -> {} hits)",
                pct(fa.0, fa.0 + fa.1),
                pct(fb.0, fb.0 + fb.1),
                fa.0,
                fb.0
            );
        }
    }

    let (rows_a, rows_b) = (vf_rows(a), vf_rows(b));
    let (tot_a, tot_b) = (total_run_cycles(a), total_run_cycles(b));
    let mut funcs: BTreeSet<&str> = rows_a.iter().map(|r| r.func.as_str()).collect();
    funcs.extend(rows_b.iter().map(|r| r.func.as_str()));
    if !funcs.is_empty() {
        let _ = writeln!(out, "\nverification overhead (b - a):");
        for func in funcs {
            let find = |rows: &[VfRow]| rows.iter().find(|r| r.func == func).cloned();
            let (ra, rb) = (find(&rows_a), find(&rows_b));
            let cpi = |r: &Option<VfRow>| r.as_ref().map_or(0.0, VfRow::cycles_per_invocation);
            let ovh = |r: &Option<VfRow>, t: Option<u64>| match (r, t) {
                (Some(r), Some(t)) => r.overhead(t) * 100.0,
                _ => 0.0,
            };
            let _ = writeln!(
                out,
                "  {func:<20} cyc/invoc {:>10.1} -> {:>10.1} ({:+.1})   overhead {:>6.2}% -> {:>6.2}% ({:+.2}pp)",
                cpi(&ra),
                cpi(&rb),
                cpi(&rb) - cpi(&ra),
                ovh(&ra, tot_a),
                ovh(&rb, tot_b),
                ovh(&rb, tot_b) - ovh(&ra, tot_a)
            );
        }
    }

    if let (Some(wa), Some(wb)) = (a.hists.get("chain.words"), b.hists.get("chain.words")) {
        let _ = writeln!(
            out,
            "\nchain words: mean {:.1} -> {:.1} ({:+.1})",
            wa.mean(),
            wb.mean(),
            wb.mean() - wa.mean()
        );
    }

    // Fail-closed loading deltas (only when either trace verified
    // anything): pass/fail counts and cache refusals.
    let vc = |tf: &TraceFile, k: &str| tf.counters.get(k).copied().unwrap_or(0);
    let any_verify = [
        "image.verify.pass",
        "image.verify.fail",
        "cache.verify.fail",
    ]
    .iter()
    .any(|k| vc(a, k) + vc(b, k) > 0);
    if any_verify {
        let _ = writeln!(
            out,
            "\nverification (b - a):\n  image loads:  {} -> {} verified, {} -> {} refused\n  cache:        {} -> {} entries refused by load-time verification",
            vc(a, "image.verify.pass"),
            vc(b, "image.verify.pass"),
            vc(a, "image.verify.fail"),
            vc(b, "image.verify.fail"),
            vc(a, "cache.verify.fail"),
            vc(b, "cache.verify.fail"),
        );
    }

    // Service-side deltas (only when either trace carries `serve.*`
    // telemetry): request volume, admission outcomes, per-kind p99.
    let sv = |tf: &TraceFile, k: &str| tf.counters.get(k).copied().unwrap_or(0);
    let req_total = |tf: &TraceFile| -> u64 {
        SERVE_KINDS
            .iter()
            .map(|k| sv(tf, &format!("serve.requests.{k}")))
            .sum()
    };
    let shed_total = |tf: &TraceFile| -> u64 {
        tf.counters
            .iter()
            .filter(|(k, _)| k.starts_with("serve.shed."))
            .map(|(_, &v)| v)
            .sum()
    };
    if req_total(a) + req_total(b) + sv(a, "serve.admitted") + sv(b, "serve.admitted") > 0 {
        let _ = writeln!(
            out,
            "\nservice (b - a):\n  requests: {} -> {}   admitted: {} -> {}   shed: {} -> {}",
            req_total(a),
            req_total(b),
            sv(a, "serve.admitted"),
            sv(b, "serve.admitted"),
            shed_total(a),
            shed_total(b),
        );
        for kind in SERVE_KINDS {
            let key = format!("serve.latency.{kind}_us");
            let (ha, hb) = (a.hists.get(&key), b.hists.get(&key));
            if ha.is_none() && hb.is_none() {
                continue;
            }
            let p99 = |h: Option<&parallax_trace::HistRec>| {
                h.map_or(0, |h| h.percentile(0.99)) as f64 / 1e3
            };
            let _ = writeln!(
                out,
                "  p99       {kind:<9} {:>9.3} ms -> {:>9.3} ms ({})",
                p99(ha),
                p99(hb),
                signed_ms((p99(hb) * 1e3) as i64 - (p99(ha) * 1e3) as i64)
            );
        }
    }
    // Pool-contention deltas (only when either trace carries `pool.*`
    // telemetry). Traces recorded before the pool namespace existed —
    // e.g. a pre-profiler baseline — degrade to a `not recorded`
    // marker on that side instead of being compared as zeros.
    let (sites_a, sites_b) = (crate::profile::pool_sites(a), crate::profile::pool_sites(b));
    if !sites_a.is_empty() || !sites_b.is_empty() {
        let _ = writeln!(out, "\npool contention (b - a):");
        let mut sites: BTreeSet<&String> = sites_a.iter().collect();
        sites.extend(sites_b.iter());
        let side = |tf: &TraceFile, recorded: bool, site: &str| -> String {
            if !recorded {
                return "not recorded".to_string();
            }
            let p = |s: &str| {
                tf.counters
                    .get(&format!("pool.{site}.{s}"))
                    .copied()
                    .unwrap_or(0)
            };
            format!(
                "{:.3} ms lock-wait, {} contended, {}/{} steals",
                p("lock.wait_ns") as f64 / 1e6,
                p("lock.contended"),
                p("steal.ok"),
                p("steal.fail")
            )
        };
        for site in sites {
            let _ = writeln!(
                out,
                "  {site:<9} {}  ->  {}",
                side(a, sites_a.contains(site), site),
                side(b, sites_b.contains(site), site)
            );
        }
    }

    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_trace::{chrome_json, Tracer};

    fn sample_trace(cycles: u64, words: u64) -> TraceFile {
        let t = Tracer::new();
        {
            let _root = t.span("protect", "pipeline");
            for s in STAGES {
                let _g = t.span(s, "stage");
            }
        }
        t.count("vf.vf.invocations", 2);
        t.count("vf.vf.cycles", cycles);
        t.count("vf.vf.dispatches", 14);
        t.count("vm.run.cycles", cycles * 10);
        t.count("chain.used.total", 8);
        t.count("chain.used.overlapping", 6);
        t.count("chain.pick.overlapping", 5);
        t.count("chain.pick.other", 3);
        t.count("vm.dispatch.kind.LoadConst", 9);
        t.count("vm.block.hit", 900);
        t.count("vm.block.miss", 100);
        t.count("vm.block.invalidate", 3);
        t.count("scan.decode.offsets", 5000);
        t.count("scan.decode.once", 5000);
        t.count("scan.decode.memo_hit", 20000);
        t.count("vm.probe.proposals", 486);
        t.count("vm.probe.runs", 941);
        t.count("vm.probe.runs_saved", 59);
        t.count("vm.probe.reseed_words", 12800);
        t.count("vm.probe.builds", 2);
        t.count("vm.probe.build_ns", 1_500_000);
        t.count("protect.par.rewrite.wall_us", 500);
        t.count("protect.par.rewrite.cpu_us", 2000);
        t.count("protect.par.chain.wall_us", 1000);
        t.count("protect.par.chain.cpu_us", 3000);
        t.count("protect.par.steals", 2);
        t.record("protect.par.workers", 4);
        t.count("cache.func.hit", 3);
        t.count("cache.func.miss", 1);
        t.count("cache.func.rewritten.hit", 2);
        t.count("cache.func.rewritten.miss", 1);
        t.count("cache.func.chain.hit", 1);
        t.record("chain.words", words);
        t.record("chain.ops", 11);
        t.count("image.verify.pass", 5);
        t.count("image.verify.fail", 1);
        t.count("image.verify.ns", 2_000_000);
        t.count("cache.verify.fail", 2);
        TraceFile::parse(&chrome_json(&t.snapshot())).expect("sample trace parses")
    }

    #[test]
    fn report_renders_all_sections() {
        let tf = sample_trace(400, 96);
        let report = render_report(&tf);
        for needle in [
            "pipeline stages",
            "chain-compile",
            "verification overhead",
            "cyc/invoc",
            "10.00%", // 400 of 4000 cycles
            "chain length distribution",
            "overlapping gadget fraction: 75.0%",
            "selections preferring overlap: 62.5%",
            "LoadConst",
            "execution engine",
            "protection pipeline (parallel + incremental)",
            "workers: 4   steals: 2",
            "4.00x parallel speedup",
            "3.00x parallel speedup",
            "func cache: 3 hits, 1 misses (75.0% hit rate)",
            "rewritten-func: 2 hits / 1 misses",
            "block cache: 900 hits, 100 misses (90.0% hit rate), 3 invalidations",
            "5000 decodes over 5000 text offsets",
            "4.0x amortization",
            "gadget validation (shared-trial probes):",
            "proposals: 486   probe runs: 941 (1.94 per proposal)   runs saved: 59 (5.9%)",
            "scratch reseed: 12800 words   probe VMs: 2 built (1.500 ms)",
            "verification:",
            "image loads:  5 verified, 1 refused (2.000 ms total)",
            "cache:        2 entries refused by load-time verification",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn report_on_metricless_trace_degrades_gracefully() {
        let t = Tracer::new();
        t.instant("x", "misc", Vec::new());
        let tf = TraceFile::parse(&chrome_json(&t.snapshot())).expect("parses");
        let report = render_report(&tf);
        assert!(report.contains("no reportable metrics"), "{report}");
    }

    #[test]
    fn diff_shows_stage_and_overhead_deltas() {
        let a = sample_trace(400, 96);
        let b = sample_trace(800, 32);
        let diff = render_diff(&a, &b);
        assert!(diff.contains("pipeline stages"), "{diff}");
        assert!(diff.contains("delta"), "{diff}");
        // cycles/invocation doubled: 200 -> 400.
        assert!(diff.contains("200.0 ->      400.0 (+200.0)"), "{diff}");
        // Overhead share is cycles/run_cycles = 10% in both.
        assert!(diff.contains("(+0.00pp)"), "{diff}");
        assert!(
            diff.contains("chain words: mean 96.0 -> 32.0 (-64.0)"),
            "{diff}"
        );
        assert!(
            diff.contains("parallel protection (wall time, b - a)"),
            "{diff}"
        );
        assert!(diff.contains("speedup 4.00x -> 4.00x"), "{diff}");
        assert!(
            diff.contains("func cache     75.0% -> 75.0% hit rate (3 -> 3 hits)"),
            "{diff}"
        );
        assert!(diff.contains("verification (b - a):"), "{diff}");
        assert!(
            diff.contains("image loads:  5 -> 5 verified, 1 -> 1 refused"),
            "{diff}"
        );
    }

    fn service_trace(protects: u64, shed: u64, latency_us: u64) -> TraceFile {
        let t = Tracer::new();
        t.count("serve.requests.protect", protects);
        t.count("serve.requests.status", 1);
        t.count("serve.admitted", protects);
        if shed > 0 {
            t.count("serve.shed.queue-full", shed);
        }
        for _ in 0..protects {
            t.record("serve.latency.protect_us", latency_us);
        }
        t.record("serve.queue.depth", 3);
        t.count("serve.conn.accepted", 4);
        t.count("serve.flight.recorded", protects + shed);
        if shed > 0 {
            t.count("serve.flight.snapshot.shed", shed);
        }
        TraceFile::parse(&chrome_json(&t.snapshot())).expect("service trace parses")
    }

    #[test]
    fn report_renders_service_section() {
        let report = render_report(&service_trace(8, 2, 2_000));
        for needle in [
            "service (plx serve):",
            "requests: 9  (protect 8, status 1)",
            "latency   protect",
            "p50",
            "p99",
            "(8 samples)",
            "queue depth max: 3",
            "admission: 8 admitted / 2 shed (20.0% shed rate)",
            "shed.queue-full  2",
            "connections: 4 accepted",
            "flight recorder: 10 requests recorded; snapshots: 2 shed, 0 slow-request, 0 verify-fail",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn diff_shows_service_deltas() {
        let a = service_trace(8, 0, 1_000);
        let b = service_trace(16, 4, 4_000);
        let diff = render_diff(&a, &b);
        assert!(diff.contains("service (b - a):"), "{diff}");
        assert!(
            diff.contains("requests: 9 -> 17   admitted: 8 -> 16   shed: 0 -> 4"),
            "{diff}"
        );
        assert!(diff.contains("p99       protect"), "{diff}");
        // Traces without serve.* counters render no service section.
        let plain = render_diff(&sample_trace(400, 96), &sample_trace(400, 96));
        assert!(!plain.contains("service (b - a)"), "{plain}");
    }

    #[test]
    fn vf_rows_and_totals() {
        let tf = sample_trace(400, 96);
        let rows = vf_rows(&tf);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].func, "vf");
        assert_eq!(rows[0].invocations, 2);
        assert!((rows[0].cycles_per_invocation() - 200.0).abs() < 1e-9);
        assert_eq!(total_run_cycles(&tf), Some(4000));
        assert!((rows[0].overhead(4000) - 0.1).abs() < 1e-9);
        assert_eq!(rows[0].overhead(0), 0.0);
    }
}
