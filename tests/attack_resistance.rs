//! Reproductions of the paper's §VI attack-resistance discussion: what
//! the adversary can and cannot get away with, including the honest
//! limitations the paper itself states.

use parallax::core::{protect, ChainMode, ProtectConfig};
use parallax::vm::{Exit, Vm};
use parallax_compiler::ir::build::*;
use parallax_compiler::{Function, Module};

/// §VI-A code restoration: a dynamic adversary patches protected code
/// and restores it before verification re-runs. The paper: no
/// self-contained scheme prevents this entirely; the defense is
/// *frequent re-verification* (criterion 1 of §VII-B's selection).
#[test]
fn code_restoration_attack_and_frequency_defense() {
    // licensed() is protected; vf runs REPEATEDLY (each loop pass).
    let mut m = Module::new();
    m.func(Function::new("licensed", [], vec![ret(c(0))]));
    m.func(Function::new(
        "vf",
        ["x"],
        vec![ret(add(mul(l("x"), c(3)), c(1)))],
    ));
    m.func(Function::new(
        "main",
        [],
        vec![
            let_("i", c(0)),
            let_("acc", c(0)),
            while_(
                lt_s(l("i"), c(8)),
                vec![
                    let_("acc", add(l("acc"), call("vf", vec![l("i")]))),
                    let_("i", add(l("i"), c(1))),
                ],
            ),
            if_(
                eq(call("licensed", vec![]), c(1)),
                vec![ret(c(7))],
                vec![ret(and(l("acc"), c(0x7f)))],
            ),
        ],
    ));
    m.entry("main");

    let protected = protect(
        &m,
        &ProtectConfig {
            verify_funcs: vec!["vf".into()],
            guard_funcs: vec!["licensed".into()],
            rewrite: parallax::rewrite::RewriteConfig {
                imm_completion_always: true,
                ..Default::default()
            },
            mode: ChainMode::Cleartext,
            ..ProtectConfig::default()
        },
    )
    .unwrap();

    let mut honest = Vm::new(&protected.image);
    let honest_exit = honest.run();

    // The adversary's dynamic plan: patch `licensed` mid-run to return
    // 1, then restore the original bytes before the *next* chain call.
    let lic = protected.image.symbol("licensed").unwrap();
    let crack = [0xb8u8, 0x01, 0x00, 0x00, 0x00, 0xc3];

    // Window 1: patch applied across a verification call — DETECTED.
    {
        let mut vm = Vm::new(&protected.image);
        vm.mem_mut().w_xor_x = false; // debugger powers
                                      // Run a little, patch, keep running through chain calls.
        for _ in 0..200 {
            let _ = vm.step();
        }
        vm.write_code(lic.vaddr, &crack).unwrap();
        let exit = vm.run();
        assert_ne!(
            exit, honest_exit,
            "a patch held across chain executions must be noticed"
        );
    }

    // Window 2: patch + restore entirely BETWEEN chain calls, applied
    // only for the final licensed() call after all verification ran —
    // the §VI-A residual attack the paper concedes. We emulate perfect
    // timing by patching just before the gate executes.
    {
        let mut vm = Vm::new(&protected.image);
        vm.mem_mut().w_xor_x = false;
        let gate_call = protected.image.symbol("main").unwrap();
        let mut patched = false;
        let outcome = loop {
            // Patch once eip enters main's tail (after the loop, all
            // chain calls completed). We detect by watching for eip in
            // licensed() itself: patch right before executing it.
            if !patched && vm.cpu.eip == lic.vaddr {
                vm.write_code(lic.vaddr, &crack).unwrap();
                patched = true;
            }
            match vm.step() {
                Ok(None) => {}
                Ok(Some(code)) => break Exit::Exited(code),
                Err(f) => break Exit::Fault(f),
            }
            let _ = gate_call;
        };
        assert!(patched, "the attack window was reached");
        assert_eq!(
            outcome,
            Exit::Exited(7),
            "perfectly-timed restore attacks succeed — the §VI-A residual \
             the paper concedes; frequency of verification narrows the window"
        );
    }
}

/// §VI-B verification-code replacement: an adversary who fully
/// reverse-engineers the verification function can replace the stub
/// with an equivalent native implementation, decoupling it from the
/// gadgets. The paper's defenses are reverse-engineering cost and
/// §V-B dynamism — with an omniscient adversary the replacement works,
/// as documented.
#[test]
fn verification_replacement_attack_semantics() {
    let mut m = Module::new();
    m.func(Function::new("licensed", [], vec![ret(c(0))]));
    m.func(Function::new(
        "vf",
        ["x"],
        vec![ret(add(mul(l("x"), c(3)), c(1)))],
    ));
    m.func(Function::new(
        "main",
        [],
        vec![
            let_("r", call("vf", vec![c(5)])),
            if_(
                eq(call("licensed", vec![]), c(1)),
                vec![ret(l("r"))],
                vec![ret(c(99))],
            ),
        ],
    ));
    m.entry("main");

    let protected = protect(
        &m,
        &ProtectConfig {
            verify_funcs: vec!["vf".into()],
            guard_funcs: vec!["licensed".into()],
            ..ProtectConfig::default()
        },
    )
    .unwrap();

    // Omniscient adversary: overwrite vf's STUB with the native
    // implementation (mov eax,[esp+4]; imul eax,eax,3; inc eax; ret),
    // then crack licensed.
    let vf = protected.image.symbol("vf").unwrap();
    let mut img = protected.image.clone();
    let replacement = [
        0x8b, 0x44, 0x24, 0x04, // mov eax, [esp+4]
        0x6b, 0xc0, 0x03, // imul eax, eax, 3
        0x40, // inc eax
        0xc3, // ret
    ];
    assert!(replacement.len() as u32 <= vf.size);
    img.write(vf.vaddr, &replacement);
    let lic = img.symbol("licensed").unwrap();
    img.write(lic.vaddr, &[0xb8, 0x01, 0x00, 0x00, 0x00, 0xc3]);

    let mut vm = Vm::new(&img);
    assert_eq!(
        vm.run(),
        Exit::Exited(16),
        "full functional replacement bypasses implicit verification — \
         §VI-B's premise; the paper's mitigations are RE cost, dynamic \
         generation (§V-B), and checksumming the chain data (§VI-C)"
    );
}
