//! The binary-level protection path (paper §I advantage 5): the program
//! to protect is hand-assembled machine code — no IR module exists for
//! it — and only the verification function is supplied as IR.

use parallax::core::{protect_binary, ChainMode, ProtectConfig};
use parallax::vm::{Exit, Vm};
use parallax_compiler::ir::build::*;
use parallax_compiler::Function;
use parallax_image::Program;
use parallax_x86::{AluOp, Asm, Cond, Mem, Reg32};

/// A "legacy binary": hand-written assembly, no compiler involved.
fn legacy_binary() -> Program {
    let mut p = Program::new();

    // licensed: returns 0 (unlicensed build), with a gcc-ish frame.
    let mut lic = Asm::new();
    lic.push_r(Reg32::Ebp);
    lic.mov_rr(Reg32::Ebp, Reg32::Esp);
    lic.mov_ri(Reg32::Eax, 0);
    lic.leave();
    lic.ret();
    p.add_func("licensed", lic.finish().unwrap());

    // vf: placeholder body — will be replaced by the chain stub. Its
    // native implementation computes 2*x+3 for the honest build.
    let mut vf = Asm::new();
    vf.push_r(Reg32::Ebp);
    vf.mov_rr(Reg32::Ebp, Reg32::Esp);
    vf.mov_rm(Reg32::Eax, Mem::base_disp(Reg32::Ebp, 8));
    vf.alu_rr(AluOp::Add, Reg32::Eax, Reg32::Eax);
    vf.alu_ri(AluOp::Add, Reg32::Eax, 3);
    vf.leave();
    vf.ret();
    p.add_func("vf", vf.finish().unwrap());

    // main: r = vf(20); if licensed() == 1 -> exit(r) else exit(r|0x80)
    let mut main = Asm::new();
    main.push_i(20);
    main.call_sym("vf");
    main.alu_ri(AluOp::Add, Reg32::Esp, 4);
    main.push_r(Reg32::Eax);
    main.call_sym("licensed");
    main.alu_ri(AluOp::Cmp, Reg32::Eax, 1);
    main.pop_r(Reg32::Ebx);
    let full = main.label();
    main.jcc(Cond::E, full);
    main.alu_ri32(AluOp::Or, Reg32::Ebx, 0x80);
    main.bind(full);
    main.mov_ri(Reg32::Eax, 1);
    main.int(0x80);
    p.add_func("main", main.finish().unwrap());
    p.set_entry("main");
    p
}

#[test]
fn binary_only_protection_round_trip() {
    // Honest behaviour of the raw binary.
    let img = legacy_binary().link().unwrap();
    let mut vm = Vm::new(&img);
    let honest = vm.run();
    assert_eq!(honest, Exit::Exited((2 * 20 + 3) | 0x80));

    // The protection engineer supplies ONLY vf's semantics as IR.
    let vf_ir = Function::new("vf", ["x"], vec![ret(add(add(l("x"), l("x")), c(3)))]);

    let protected = protect_binary(
        legacy_binary(),
        &[vf_ir],
        &ProtectConfig {
            verify_funcs: vec!["vf".into()],
            guard_funcs: vec!["licensed".into()],
            rewrite: parallax::rewrite::RewriteConfig {
                imm_completion_always: true,
                ..Default::default()
            },
            mode: ChainMode::XorEncrypted { key: 0xbeef },
            ..ProtectConfig::default()
        },
    )
    .unwrap();

    // Same behaviour.
    let mut vm = Vm::new(&protected.image);
    assert_eq!(vm.run(), honest);

    // The hand-written machine code got overlapping gadgets...
    assert!(protected.report.rewrites.crafted_count() > 0);
    let lic = protected.image.symbol("licensed").unwrap();
    assert!(
        protected.report.chains[0]
            .used_gadgets
            .iter()
            .any(|&g| g >= lic.vaddr && g < lic.vaddr + lic.size),
        "chain verifies gadgets inside the hand-written licensed()"
    );

    // ...and the classic crack breaks the binary.
    let mut cracked = protected.image.clone();
    cracked.write(lic.vaddr, &[0xb8, 0x01, 0x00, 0x00, 0x00, 0xc3]);
    let mut vm = Vm::new(&cracked);
    assert_ne!(
        vm.run(),
        Exit::Exited(2 * 20 + 3),
        "crack must not yield full mode"
    );
    assert_ne!(vm.run(), honest, "tampering must be noticed");
}

#[test]
fn binary_path_rejects_unknown_verify_funcs() {
    let vf_ir = Function::new("nope", [], vec![ret(c(0))]);
    let err = protect_binary(
        legacy_binary(),
        &[vf_ir],
        &ProtectConfig {
            verify_funcs: vec!["nope".into()],
            ..ProtectConfig::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.stage, parallax::core::Stage::Select);
    assert!(matches!(
        err.kind,
        parallax::core::ErrorKind::NoSuchFunction(_)
    ));
}
