//! Differential testing: protection must preserve the observable
//! behaviour of randomly generated programs, in every chain mode, and
//! tampering must not go unnoticed.

use parallax::core::{protect, ChainMode, ProtectConfig};
use parallax::vm::{Exit, Vm, VmOptions};
use parallax_corpus::randprog::Gen;

fn native_outcome(m: &parallax::compiler::Module) -> (Exit, Vec<u8>, u64) {
    let img = parallax::compiler::compile_module(m)
        .unwrap()
        .link()
        .unwrap();
    let mut vm = Vm::new(&img);
    let exit = vm.run();
    let cycles = vm.cycles();
    (exit, vm.take_output(), cycles)
}

#[test]
fn random_programs_survive_protection_cleartext() {
    for seed in 0..25u64 {
        let m = Gen::new(seed).module();
        let (exit, out, _) = native_outcome(&m);
        let Exit::Exited(_) = exit else {
            panic!("seed {seed}: native run failed");
        };
        let protected = protect(
            &m,
            &ProtectConfig {
                verify_funcs: vec!["vf".into()],
                ..ProtectConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: protect failed: {e}"));
        let mut vm = Vm::new(&protected.image);
        assert_eq!(vm.run(), exit, "seed {seed}: exit differs");
        assert_eq!(vm.take_output(), out, "seed {seed}: output differs");
    }
}

#[test]
fn random_programs_survive_protection_dynamic_modes() {
    for seed in [3u64, 11, 17] {
        let m = Gen::new(seed).module();
        let (exit, _, _) = native_outcome(&m);
        for mode in [
            ChainMode::XorEncrypted {
                key: seed as u32 | 1,
            },
            ChainMode::Rc4Encrypted { key: *b"diffkey!" },
            ChainMode::Probabilistic {
                variants: 3,
                seed: seed ^ 0xaaaa,
            },
        ] {
            let protected = protect(
                &m,
                &ProtectConfig {
                    verify_funcs: vec!["vf".into()],
                    mode: mode.clone(),
                    ..ProtectConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed} mode {}: {e}", mode.name()));
            // Probabilistic chains must work across VM seeds too.
            for vm_seed in [1u64, 2] {
                let mut vm = Vm::with_options(
                    &protected.image,
                    VmOptions {
                        seed: vm_seed,
                        ..VmOptions::default()
                    },
                );
                assert_eq!(
                    vm.run(),
                    exit,
                    "seed {seed} mode {} vm_seed {vm_seed}",
                    mode.name()
                );
            }
        }
    }
}

/// Fuzz-tampering: flipping any single byte of a *used* gadget must
/// change observable behaviour for at least the vast majority of
/// gadgets; flipping never-executed, never-verified bytes must never
/// change it (no false positives).
#[test]
fn fuzz_tamper_detection_and_no_false_positives() {
    let mut m = Gen::new(7).module();
    // A dead function: never called, never executed. Bytes here that no
    // used gadget overlaps are legitimate no-false-positive targets.
    {
        use parallax::compiler::ir::build::*;
        use parallax::compiler::Function;
        m.func(Function::new(
            "cold_fn",
            ["x"],
            vec![
                let_("y", mul(l("x"), c(0x1234))),
                let_("y", add(l("y"), c(0x777))),
                ret(xor(l("y"), c(0x5a5a))),
            ],
        ));
    }
    let (exit, out, _) = native_outcome(&m);
    let protected = protect(
        &m,
        &ProtectConfig {
            verify_funcs: vec!["vf".into()],
            ..ProtectConfig::default()
        },
    )
    .unwrap();

    // Detection sweep over used gadgets, several patch values each.
    let gadgets = &protected.report.chains[0].used_gadgets;
    let mut detected = 0;
    let mut total = 0;
    for &g in gadgets {
        for patch in [0x90u8, 0xcc, 0x00] {
            total += 1;
            let mut img = protected.image.clone();
            img.write(g, &[patch]);
            let mut vm = Vm::new(&img);
            let got = vm.run();
            if got != exit || vm.take_output() != out {
                detected += 1;
            }
        }
    }
    assert!(
        detected * 10 >= total * 8,
        "only {detected}/{total} single-byte gadget patches detected"
    );

    // No false positives: patch bytes of the dead function that no
    // used gadget overlaps (within the 24-byte max gadget span).
    let cold = protected.image.symbol("cold_fn").unwrap();
    let used = &protected.report.chains[0].used_gadgets;
    let mut checked = 0;
    for va in cold.vaddr..cold.vaddr + cold.size {
        let overlapped = used.iter().any(|&g| g <= va && va < g.saturating_add(24));
        if overlapped {
            continue;
        }
        let mut img = protected.image.clone();
        img.write(va, &[0xcc]);
        let mut vm = Vm::new(&img);
        assert_eq!(
            vm.run(),
            exit,
            "dead-code patch at {va:#x} falsely broke the program"
        );
        checked += 1;
        if checked >= 5 {
            break;
        }
    }
    assert!(checked > 0, "no unverified dead bytes found");
}

/// Three-way differential: the IR interpreter (specification), the
/// compiled native binary, and the ROP-chain-protected binary must all
/// agree, for both results and emitted output.
#[test]
fn three_way_interpreter_native_chain() {
    for seed in 100..118u64 {
        let m = Gen::new(seed).module();

        // Specification.
        let mut interp = parallax::compiler::Interp::new(&m);
        let spec = match interp.run() {
            Ok(code) => code & 0xff, // main is masked in the generator
            Err(e) => panic!("seed {seed}: interpreter failed: {e}"),
        };

        // Native.
        let (native_exit, native_out, _) = native_outcome(&m);
        assert_eq!(
            native_exit,
            Exit::Exited(spec),
            "seed {seed}: native != interpreter"
        );
        assert_eq!(native_out, interp.output, "seed {seed}: output differs");

        // Chain.
        let protected = protect(
            &m,
            &ProtectConfig {
                verify_funcs: vec!["vf".into()],
                ..ProtectConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: protect failed: {e}"));
        let mut vm = Vm::new(&protected.image);
        assert_eq!(
            vm.run(),
            Exit::Exited(spec),
            "seed {seed}: chain != interpreter"
        );
    }
}

// ---------------------------------------------------------------------
// Block-engine differentials: the predecoded basic-block execution path
// must be observationally identical to the retained per-instruction
// reference interpreter — exits, output, cycle counts, instruction
// counts, and chain-tracer episodes.

use proptest::prelude::*;

/// Runs `img` through both engines on fresh VMs and asserts full
/// observable equality. Returns the shared exit for further checks.
fn assert_engines_agree(img: &parallax::image::LinkedImage, input: &[u8], label: &str) -> Exit {
    let mut blocked = Vm::new(img);
    let mut reference = Vm::new(img);
    blocked.set_input(input);
    reference.set_input(input);
    let a = blocked.run();
    let b = reference.run_reference();
    assert_eq!(a, b, "{label}: exit differs between engines");
    assert_eq!(
        blocked.take_output(),
        reference.take_output(),
        "{label}: output differs between engines"
    );
    assert_eq!(
        blocked.cycles(),
        reference.cycles(),
        "{label}: cycle count differs between engines"
    );
    assert_eq!(
        blocked.instructions, reference.instructions,
        "{label}: instruction count differs between engines"
    );
    a
}

#[test]
fn block_engine_matches_reference_on_corpus() {
    for w in parallax_corpus::all() {
        let img = parallax::compiler::compile_module(&(w.module)())
            .unwrap()
            .link()
            .unwrap();
        let exit = assert_engines_agree(&img, &(w.input)(), w.name);
        assert!(matches!(exit, Exit::Exited(_)), "{}: did not exit", w.name);
    }
}

#[test]
fn block_engine_matches_reference_on_protected_chains() {
    // Protected images execute ROP chains — the workload the block
    // cache exists for. Chain-tracer episodes must match dispatch for
    // dispatch, proving per-instruction hook fidelity.
    let w = parallax_corpus::by_name("bzip2").unwrap();
    let protected = protect(
        &(w.module)(),
        &ProtectConfig {
            verify_funcs: vec![w.verify_func.to_owned()],
            ..ProtectConfig::default()
        },
    )
    .unwrap();

    let mut blocked = Vm::new(&protected.image);
    let mut reference = Vm::new(&protected.image);
    blocked.set_chain_tracer(parallax::core::chain_tracer_for(&protected));
    reference.set_chain_tracer(parallax::core::chain_tracer_for(&protected));
    blocked.set_input(&(w.input)());
    reference.set_input(&(w.input)());
    let a = blocked.run();
    let b = reference.run_reference();
    assert_eq!(a, b, "exit differs");
    assert_eq!(blocked.cycles(), reference.cycles(), "cycles differ");
    let ta = blocked.take_chain_tracer().unwrap();
    let tb = reference.take_chain_tracer().unwrap();
    assert_eq!(ta.dispatches(), tb.dispatches(), "dispatch streams differ");
    assert_eq!(ta.episodes(), tb.episodes(), "episodes differ");
    assert!(!ta.episodes().is_empty(), "chains should have executed");
}

#[test]
fn block_engine_matches_reference_under_tamper() {
    // Tampered images are where semantic drift would be catastrophic:
    // both engines must reach the *same* wrong answer or fault.
    let m = Gen::new(7).module();
    let protected = protect(
        &m,
        &ProtectConfig {
            verify_funcs: vec!["vf".into()],
            ..ProtectConfig::default()
        },
    )
    .unwrap();
    for (i, &g) in protected.report.chains[0]
        .used_gadgets
        .iter()
        .take(8)
        .enumerate()
    {
        let mut img = protected.image.clone();
        img.write(g, &[0x90]);
        assert_engines_agree(&img, &[], &format!("tamper #{i} at {g:#x}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Property: for any generated program, the block engine and the
    /// reference interpreter are observationally identical.
    #[test]
    fn block_engine_matches_reference_on_random_programs(seed in 0u64..10_000) {
        let m = Gen::new(seed).module();
        let img = parallax::compiler::compile_module(&m).unwrap().link().unwrap();
        assert_engines_agree(&img, &[], &format!("seed {seed}"));
    }
}
