//! Cross-crate integration tests: the full Parallax pipeline applied to
//! the evaluation corpus, plus the comparative attack matrix.

use parallax::baselines::{attack_icache, attack_static, protect_with_checksums, TAMPER_EXIT};
use parallax::core::{protect, ChainMode, ProtectConfig};
use parallax::vm::{Exit, Vm};

fn native_run(w: &parallax_corpus::Workload) -> (i32, Vec<u8>) {
    let img = parallax_compiler::compile_module(&(w.module)())
        .unwrap()
        .link()
        .unwrap();
    let mut vm = Vm::new(&img);
    vm.set_input(&(w.input)());
    match vm.run() {
        Exit::Exited(code) => (code, vm.take_output()),
        other => panic!("{}: native run failed: {other}", w.name),
    }
}

fn protect_workload(w: &parallax_corpus::Workload, mode: ChainMode) -> parallax::core::Protected {
    protect(
        &(w.module)(),
        &ProtectConfig {
            verify_funcs: vec![w.verify_func.to_owned()],
            mode,
            ..ProtectConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}: protect failed: {e}", w.name))
}

#[test]
fn corpus_programs_survive_protection() {
    // Protect a representative subset in each mode (the full sweep runs
    // in the benchmark harness).
    for w in parallax_corpus::all() {
        let (code, output) = native_run(&w);
        let protected = protect_workload(&w, ChainMode::Cleartext);
        let mut vm = Vm::new(&protected.image);
        vm.set_input(&(w.input)());
        assert_eq!(
            vm.run(),
            Exit::Exited(code),
            "{}: protected behaviour differs",
            w.name
        );
        assert_eq!(vm.take_output(), output, "{}: output differs", w.name);
    }
}

#[test]
fn encrypted_and_probabilistic_modes_on_corpus_sample() {
    let w = parallax_corpus::by_name("lame").unwrap();
    let (code, _) = native_run(&w);
    for mode in [
        ChainMode::XorEncrypted { key: 0x1001 },
        ChainMode::Rc4Encrypted { key: *b"corpuske" },
        ChainMode::Probabilistic {
            variants: 4,
            seed: 5,
        },
    ] {
        let protected = protect_workload(&w, mode.clone());
        let mut vm = Vm::new(&protected.image);
        vm.set_input(&(w.input)());
        assert_eq!(
            vm.run(),
            Exit::Exited(code),
            "{}: mode {} differs",
            w.name,
            mode.name()
        );
    }
}

#[test]
fn corpus_tamper_detection() {
    let w = parallax_corpus::by_name("nginx").unwrap();
    let (code, _) = native_run(&w);
    let protected = protect_workload(&w, ChainMode::Cleartext);

    let gadgets = &protected.report.chains[0].used_gadgets;
    assert!(!gadgets.is_empty());
    let mut detected = 0;
    for &g in gadgets {
        let mut img = protected.image.clone();
        img.write(g, &[0x90]);
        let mut vm = Vm::new(&img);
        vm.set_input(&(w.input)());
        if vm.run() != Exit::Exited(code) {
            detected += 1;
        }
    }
    assert!(
        detected * 10 >= gadgets.len() * 8,
        "nginx: only {detected}/{} patches detected",
        gadgets.len()
    );
}

/// The paper's central comparison (§I, §IX): the Wurster attack defeats
/// checksumming but not Parallax.
#[test]
fn wurster_attack_matrix() {
    use parallax_compiler::ir::build::*;
    use parallax_compiler::{Function, Module};

    // A license check the attacker wants to force to "licensed".
    let mut m = Module::new();
    m.func(Function::new("licensed", [], vec![ret(c(0))]));
    m.func(Function::new(
        "gate",
        [],
        vec![if_(
            eq(call("licensed", vec![]), c(1)),
            vec![ret(c(7))],
            vec![ret(c(99))],
        )],
    ));
    m.func(Function::new("main", [], vec![ret(call("gate", vec![]))]));
    m.entry("main");

    let crack = |img: &parallax_image::LinkedImage| -> (u32, Vec<u8>) {
        let f = img.symbol("licensed").unwrap();
        let span = img.read(f.vaddr, f.size as usize).unwrap();
        let off = span
            .windows(5)
            .position(|w| w == [0xb8, 0x00, 0x00, 0x00, 0x00])
            .expect("mov eax,0 in licensed");
        (f.vaddr + off as u32 + 1, vec![1])
    };

    // --- Checksumming: static patch caught, icache patch wins. ---
    let (ck_img, _) = protect_with_checksums(&m, &["licensed".into()], 3).unwrap();
    let patch = crack(&ck_img);
    assert_eq!(
        attack_static(&ck_img, std::slice::from_ref(&patch), &[]).exit,
        Exit::Exited(TAMPER_EXIT)
    );
    assert_eq!(
        attack_icache(&ck_img, &[patch], &[]).exit,
        Exit::Exited(7),
        "Wurster must defeat checksumming"
    );

    // --- Parallax: gate is translated to a chain; `licensed` (which it
    // calls) carries overlapping gadgets. ---
    let protected = protect(
        &m,
        &ProtectConfig {
            verify_funcs: vec!["gate".into()],
            ..ProtectConfig::default()
        },
    )
    .unwrap();
    // Untampered: runs as before.
    let mut vm = Vm::new(&protected.image);
    assert_eq!(vm.run(), Exit::Exited(99));

    // Attack the gadgets the chain uses, icache-only: Parallax verifies
    // by EXECUTION, so the patched gadget misbehaves and the crack is
    // detected (the program stops working correctly), unlike the
    // checksumming case where the attack sailed through.
    let gadgets = &protected.report.chains[0].used_gadgets;
    let mut survived_attacks = 0;
    for &g in gadgets.iter().take(12) {
        let out = attack_icache(&protected.image, &[(g, vec![0x90])], &[]);
        if out.exit == Exit::Exited(99) {
            survived_attacks += 1;
        }
    }
    assert!(
        survived_attacks * 5 <= gadgets.len().min(12),
        "icache patches of used gadgets must disturb the chain \
         ({survived_attacks} patches went unnoticed)"
    );
}

#[test]
fn selection_algorithm_picks_the_designated_candidates() {
    use parallax::core::{select_verification_functions, SelectionConfig};
    for w in parallax_corpus::all() {
        let picked = select_verification_functions(
            &(w.module)(),
            &(w.input)(),
            &SelectionConfig {
                runtime_threshold: 0.02,
                min_calls: 2,
                count: 3,
            },
        )
        .unwrap();
        assert!(
            picked.iter().any(|p| p == w.verify_func),
            "{}: {} not among {:?}",
            w.name,
            w.verify_func,
            picked
        );
    }
}

#[test]
fn protected_corpus_image_saves_and_reloads() {
    let w = parallax_corpus::by_name("gcc").unwrap();
    let (code, _) = native_run(&w);
    let protected = protect_workload(&w, ChainMode::Cleartext);
    let bytes = parallax_image::format::save(&protected.image);
    assert!(bytes.len() > 4096);
    let back = parallax_image::format::load(&bytes).unwrap();
    let mut vm = Vm::new(&back);
    vm.set_input(&(w.input)());
    assert_eq!(vm.run(), Exit::Exited(code));
}

#[test]
fn far_return_gadgets_are_crafted_and_usable() {
    // §IV-B5: the rewriting rotation plants retf-terminated gadgets;
    // they must be discovered and usable by chains (with CS slots).
    let w = parallax_corpus::by_name("bzip2").unwrap();
    let protected = protect(
        &(w.module)(),
        &ProtectConfig {
            verify_funcs: vec![w.verify_func.to_owned()],
            ..ProtectConfig::default()
        },
    )
    .unwrap();
    let gadgets = parallax_gadgets::find_gadgets(&protected.image);
    let far: Vec<_> = gadgets.iter().filter(|g| g.far).collect();
    assert!(
        !far.is_empty(),
        "far-return gadgets should exist after rewriting"
    );
    // And the program still behaves.
    let (code, _) = native_run(&w);
    let mut vm = Vm::new(&protected.image);
    vm.set_input(&(w.input)());
    assert_eq!(vm.run(), Exit::Exited(code));
}
