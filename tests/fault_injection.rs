//! Deterministic fault injection across every stage boundary of the
//! protection pipeline: each perturbation must surface as the correct
//! typed [`ProtectError`] or be contained and classified by the
//! tamper-verdict watchdog — zero panics, zero unbounded hangs.

use parallax::core::{
    apply_image_fault, classify, load_verified_image, load_verified_image_strict, protect,
    protect_binary, protect_binary_faulted, run_baseline, truncate_chain, Baseline, ChainMode,
    ErrorKind, FaultPlan, ImageFault, ProtectConfig, Stage, Verdict,
};
use parallax::vm::{Exit, Vm, VmOptions};
use parallax::x86::{Asm, Reg32};
use parallax_compiler::ir::build::*;
use parallax_compiler::{compile_module, Function, Module};
use parallax_image::{format, FormatError, ImageVerifyError, Program};

/// A small program with a verification function (`vf`), a protected
/// license check (`licensed`), and a never-called function (`dead`)
/// whose bytes are outside every protected range.
fn module() -> Module {
    let mut m = Module::new();
    m.func(Function::new("licensed", [], vec![ret(c(0))]));
    m.func(Function::new(
        "dead",
        ["x"],
        vec![ret(mul(add(l("x"), c(7)), c(3)))],
    ));
    m.func(Function::new(
        "vf",
        ["x"],
        vec![ret(add(mul(l("x"), c(3)), c(1)))],
    ));
    m.func(Function::new(
        "main",
        [],
        vec![ret(add(
            call("vf", vec![c(5)]),
            mul(call("licensed", vec![]), c(100)),
        ))],
    ));
    m.entry("main");
    m
}

/// Exit status of the honest program: vf(5) = 16, licensed() = 0.
const HONEST_EXIT: i32 = 16;

fn cfg() -> ProtectConfig {
    ProtectConfig {
        verify_funcs: vec!["vf".into()],
        guard_funcs: vec!["licensed".into()],
        mode: ChainMode::Cleartext,
        ..ProtectConfig::default()
    }
}

/// Bounded budgets so corrupted chains cannot stall the suite.
fn bounded() -> VmOptions {
    VmOptions {
        cycle_limit: 2_000_000,
        output_limit: 1 << 20,
        ..VmOptions::default()
    }
}

fn starved_cfg() -> ProtectConfig {
    let mut cfg = cfg();
    cfg.rewrite.imm_rule = false;
    cfg.rewrite.jump_rule = false;
    cfg.rewrite.internal_jump_rule = false;
    cfg.rewrite.stdset = false;
    cfg
}

// ---------------------------------------------------------------------
// Pipeline-stage faults → typed errors with correct stage provenance.
// ---------------------------------------------------------------------

#[test]
fn corrupted_relocation_fails_in_link_stage() {
    let m = module();
    let vf_ir = m.get_func("vf").unwrap().clone();
    for nth in [0usize, 1, 5] {
        let prog = compile_module(&m).unwrap();
        let err = protect_binary_faulted(
            prog,
            std::slice::from_ref(&vf_ir),
            &cfg(),
            &FaultPlan::none().corrupt_reloc(nth),
        )
        .unwrap_err();
        assert_eq!(err.stage, Stage::Link, "reloc {nth}: {err}");
        assert!(matches!(err.kind, ErrorKind::Link(_)), "reloc {nth}: {err}");
        // Stage provenance is part of the message.
        assert!(err.to_string().contains("link stage"), "{err}");
    }
}

#[test]
fn dropped_frame_fails_in_link_stage() {
    let m = module();
    let vf_ir = m.get_func("vf").unwrap().clone();
    let prog = compile_module(&m).unwrap();
    let err = protect_binary_faulted(
        prog,
        std::slice::from_ref(&vf_ir),
        &cfg(),
        &FaultPlan::none().drop_frame("vf"),
    )
    .unwrap_err();
    assert_eq!(err.stage, Stage::Link, "{err}");
    assert!(matches!(err.kind, ErrorKind::Link(_)), "{err}");
}

#[test]
fn undecodable_function_fails_in_rewrite_stage() {
    let m = module();
    let vf_ir = m.get_func("vf").unwrap().clone();
    let prog = compile_module(&m).unwrap();
    let err = protect_binary_faulted(
        prog,
        std::slice::from_ref(&vf_ir),
        &cfg(),
        &FaultPlan::none().undecodable_func("licensed"),
    )
    .unwrap_err();
    assert_eq!(err.stage, Stage::Rewrite, "{err}");
    assert!(matches!(err.kind, ErrorKind::Rewrite(_)), "{err}");
}

#[test]
fn emptied_gadget_scan_fails_in_scan_stage() {
    let m = module();
    let vf_ir = m.get_func("vf").unwrap().clone();
    let prog = compile_module(&m).unwrap();
    let mut cfg = cfg();
    cfg.degrade = false; // surface the raw scan error
    let err = protect_binary_faulted(
        prog,
        std::slice::from_ref(&vf_ir),
        &cfg,
        &FaultPlan::none().empty_gadget_scan(),
    )
    .unwrap_err();
    assert_eq!(err.stage, Stage::GadgetScan, "{err}");
    assert!(matches!(err.kind, ErrorKind::NoUsableGadgets), "{err}");
    assert!(err.is_gadget_starvation());
}

#[test]
fn unknown_verify_func_fails_in_select_stage() {
    let err = protect(
        &module(),
        &ProtectConfig {
            verify_funcs: vec!["missing".into()],
            ..ProtectConfig::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.stage, Stage::Select, "{err}");
    assert!(matches!(err.kind, ErrorKind::NoSuchFunction(_)), "{err}");
}

// ---------------------------------------------------------------------
// Gadget starvation and the degradation ladder.
// ---------------------------------------------------------------------

#[test]
fn gadget_starved_build_fails_typed_without_degradation() {
    let mut cfg = starved_cfg();
    cfg.degrade = false;
    let err = protect(&module(), &cfg).unwrap_err();
    assert!(
        err.is_gadget_starvation(),
        "starved build must report missing gadgets: {err}"
    );
    assert!(
        matches!(err.stage, Stage::ChainCompile | Stage::GadgetScan),
        "{err}"
    );
}

#[test]
fn degradation_ladder_recovers_via_standard_set() {
    let protected = protect(&module(), &starved_cfg()).expect("ladder must recover");
    let degr = &protected.report.degradations;
    assert!(!degr.is_empty(), "fallbacks must be reported");
    assert!(
        degr.last().unwrap().stdset_forced,
        "final fallback appends the standard set: {degr:?}"
    );
    assert!(degr.iter().all(|d| !d.missing.is_empty()));
    // The degraded build still runs correctly.
    let mut vm = parallax::vm::Vm::with_options(&protected.image, bounded());
    assert_eq!(vm.run(), Exit::Exited(HONEST_EXIT));
}

#[test]
fn successful_build_reports_no_degradation() {
    let protected = protect(&module(), &cfg()).unwrap();
    assert!(protected.report.degradations.is_empty());
}

// ---------------------------------------------------------------------
// Post-link corruption → contained, classified verdicts.
// ---------------------------------------------------------------------

#[test]
fn truncated_chains_are_detected_and_contained() {
    let protected = protect(&module(), &cfg()).unwrap();
    let base = run_baseline(&protected.image, &[], &bounded());
    assert_eq!(base.exit, Exit::Exited(HONEST_EXIT));
    let words = protected.report.chains[0].words;
    for keep in [1usize, 3, words / 2] {
        let mut img = protected.image.clone();
        assert!(truncate_chain(&mut img, "vf", keep), "truncate at {keep}");
        let v = classify(&img, &[], &base, &bounded());
        assert!(
            v.is_detection(),
            "chain truncated to {keep}/{words} words must not pass as clean"
        );
    }
}

#[test]
fn flips_inside_protected_ranges_are_classified() {
    let protected = protect(&module(), &cfg()).unwrap();
    let base = run_baseline(&protected.image, &[], &bounded());
    let lic = protected.image.symbol("licensed").unwrap().clone();
    let mut detections = 0usize;
    for off in 0..lic.size {
        let mut img = protected.image.clone();
        assert!(parallax::core::flip_byte(&mut img, lic.vaddr + off));
        // Any verdict is acceptable — the requirement is that every
        // flip is *classified* within the budgets, never a panic or
        // an unbounded hang.
        if classify(&img, &[], &base, &bounded()).is_detection() {
            detections += 1;
        }
    }
    assert!(
        detections > 0,
        "guarded function must detect at least one single-byte flip"
    );
}

#[test]
fn flips_outside_protected_ranges_stay_clean() {
    // Binary-level build so an unreferenced slack object exists.
    let m = module();
    let vf_ir = m.get_func("vf").unwrap().clone();
    let mut prog = compile_module(&m).unwrap();
    prog.add_data("slack", vec![0xaa; 64]);
    let mut cfg = cfg();
    // Only `licensed` is protected; `dead` and `slack` are outside
    // every protected range.
    cfg.protect_targets = Some(vec!["licensed".into()]);
    let protected = protect_binary(prog, std::slice::from_ref(&vf_ir), &cfg).unwrap();
    let base = run_baseline(&protected.image, &[], &bounded());
    assert_eq!(base.exit, Exit::Exited(HONEST_EXIT));

    let slack = protected.image.symbol("slack").unwrap().clone();
    for off in (0..slack.size).step_by(7) {
        let mut img = protected.image.clone();
        assert!(parallax::core::flip_byte(&mut img, slack.vaddr + off));
        assert_eq!(
            classify(&img, &[], &base, &bounded()),
            Verdict::Clean,
            "flip in unreferenced data at +{off} must not trip the watchdog"
        );
    }

    // Dead code: never executed, unprotected. Keep clear of chain
    // gadgets (the policy may fall back to any usable gadget).
    let dead = protected.image.symbol("dead").unwrap().clone();
    let used = &protected.report.chains[0].used_gadgets;
    for off in 0..dead.size {
        let vaddr = dead.vaddr + off;
        if used
            .iter()
            .any(|&g| vaddr >= g.saturating_sub(1) && vaddr < g + 16)
        {
            continue;
        }
        let mut img = protected.image.clone();
        assert!(parallax::core::flip_byte(&mut img, vaddr));
        assert_eq!(
            classify(&img, &[], &base, &bounded()),
            Verdict::Clean,
            "flip in dead code at +{off} must not trip the watchdog"
        );
    }
}

// ---------------------------------------------------------------------
// Watchdog budget classes: Hang and MemLimit.
// ---------------------------------------------------------------------

#[test]
fn runaway_loop_classifies_as_hang() {
    let mut a = Asm::new();
    let top = a.here();
    a.jmp(top);
    let mut p = Program::new();
    p.add_func("main", a.finish().unwrap());
    p.set_entry("main");
    let img = p.link().unwrap();
    let base = Baseline {
        exit: Exit::Exited(0),
        output: Vec::new(),
    };
    let opts = VmOptions {
        cycle_limit: 10_000,
        ..VmOptions::default()
    };
    assert_eq!(classify(&img, &[], &base, &opts), Verdict::Hang);
}

#[test]
fn runaway_writer_classifies_as_mem_limit() {
    // loop { write(1, blob, 64) } — output is the VM's only unbounded
    // allocation; the output budget must contain it.
    let mut a = Asm::new();
    a.mov_ri(Reg32::Ebx, 1);
    let top = a.here();
    a.mov_ri(Reg32::Eax, 4);
    a.mov_ri_sym(Reg32::Ecx, "blob", 0);
    a.mov_ri(Reg32::Edx, 64);
    a.int(0x80);
    a.jmp(top);
    let mut p = Program::new();
    p.add_func("main", a.finish().unwrap());
    p.add_data("blob", vec![0x42; 64]);
    p.set_entry("main");
    let img = p.link().unwrap();
    let opts = VmOptions {
        output_limit: 4096,
        ..VmOptions::default()
    };
    let base = run_baseline(&img, &[], &opts);
    assert_eq!(
        base.exit,
        Exit::MemLimit,
        "baseline run is itself contained"
    );
    let verdict = classify(
        &img,
        &[],
        &Baseline {
            exit: Exit::Exited(0),
            output: Vec::new(),
        },
        &opts,
    );
    assert_eq!(verdict, Verdict::MemLimit);
}

// ---------------------------------------------------------------------
// Image-level fault campaign: every corruption of a *serialized* image
// must be refused at load with the right typed error — zero faults
// execute a single VM cycle (no VM is ever constructed over a refused
// image; `Vm` only accepts a `VerifiedImage`).
// ---------------------------------------------------------------------

/// The three chain-storage modes the campaign sweeps. RC4 behaves like
/// XOR for serialization purposes (encrypted data object + loader).
fn campaign_modes() -> Vec<(&'static str, ChainMode)> {
    vec![
        ("cleartext", ChainMode::Cleartext),
        ("xor", ChainMode::XorEncrypted { key: 0x5eed_1234 }),
        (
            "prob",
            ChainMode::Probabilistic {
                variants: 2,
                seed: 7,
            },
        ),
    ]
}

fn protected_bytes(mode: ChainMode) -> Vec<u8> {
    let protected =
        protect(&module(), &ProtectConfig { mode, ..cfg() }).expect("campaign build succeeds");
    format::save(&protected.image)
}

#[test]
fn clean_images_verify_load_and_run_identically() {
    for (name, mode) in campaign_modes() {
        let bytes = protected_bytes(mode);
        // Both loaders accept the clean image...
        load_verified_image(&bytes).unwrap_or_else(|e| panic!("{name}: plausibility: {e}"));
        let v =
            load_verified_image_strict(&bytes).unwrap_or_else(|e| panic!("{name}: strict: {e}"));
        assert!(v.report().strict, "{name}");
        // Only cleartext chains expose statically checkable words;
        // encrypted/probabilistic chains decode at runtime.
        if name == "cleartext" {
            assert!(v.report().chain_words > 0, "{name}");
        }
        // ...and it runs byte-identically to the honest program.
        let mut vm = Vm::from_verified(&v);
        assert_eq!(vm.run(), Exit::Exited(HONEST_EXIT), "{name}");
    }
}

#[test]
fn truncation_at_every_scale_is_refused_as_format_error() {
    for (name, mode) in campaign_modes() {
        let bytes = protected_bytes(mode);
        for keep in [0usize, 3, 6, 21, 40, bytes.len() / 2, bytes.len() - 1] {
            let Some(cut) = apply_image_fault(&bytes, &ImageFault::Truncate { keep }) else {
                continue;
            };
            let err = load_verified_image(&cut)
                .err()
                .unwrap_or_else(|| panic!("{name}: truncate to {keep} must be refused"));
            // Short prefixes die on magic/header/overrun checks, longer
            // ones on the content digest — all container-level kinds.
            assert!(
                matches!(
                    err,
                    ImageVerifyError::Format(
                        FormatError::BadMagic
                            | FormatError::Truncated { .. }
                            | FormatError::Corrupt { .. }
                            | FormatError::DigestMismatch { .. }
                    )
                ),
                "{name}: truncate to {keep}: {err}"
            );
        }
    }
}

#[test]
fn every_sampled_bit_flip_is_refused_before_any_vm_cycle() {
    for (name, mode) in campaign_modes() {
        let bytes = protected_bytes(mode);
        // Sample flips across header, section table, text, and data.
        for offset in (0..bytes.len()).step_by(97) {
            for bit in [0u8, 6] {
                let Some(flipped) = apply_image_fault(&bytes, &ImageFault::BitFlip { offset, bit })
                else {
                    continue;
                };
                if flipped == bytes {
                    continue;
                }
                let err = load_verified_image(&flipped)
                    .err()
                    .unwrap_or_else(|| panic!("{name}: flip at {offset}.{bit} must be refused"));
                assert!(
                    matches!(err, ImageVerifyError::Format(_)),
                    "{name}: flip at {offset}.{bit}: {err}"
                );
            }
        }
    }
}

#[test]
fn payload_bit_flips_are_digest_mismatches() {
    for (name, mode) in campaign_modes() {
        let bytes = protected_bytes(mode);
        // Past the 22-byte header every flip leaves magic, version and
        // the stored digest intact, so the digest check must fire.
        for offset in [22usize, 60, bytes.len() / 2, bytes.len() - 1] {
            let flipped = apply_image_fault(&bytes, &ImageFault::BitFlip { offset, bit: 3 })
                .expect("in range");
            let err = load_verified_image(&flipped).unwrap_err();
            assert!(
                matches!(
                    err,
                    ImageVerifyError::Format(
                        FormatError::DigestMismatch { .. }
                            | FormatError::Truncated { .. }
                            | FormatError::Corrupt { .. }
                    )
                ),
                "{name}: flip at {offset}: {err}"
            );
        }
    }
}

#[test]
fn reloc_swap_is_refused_as_reloc_unknown_symbol() {
    // A re-linking attack: parse, retarget a relocation at an undefined
    // symbol, re-save. The digest is re-stamped by the save, so only
    // structural verification can object.
    for (name, mode) in campaign_modes() {
        let bytes = protected_bytes(mode);
        let Some(swapped) = apply_image_fault(&bytes, &ImageFault::RelocRetarget { index: 0 })
        else {
            panic!("{name}: image has relocations to retarget");
        };
        let err = load_verified_image(&swapped).unwrap_err();
        assert!(
            matches!(err, ImageVerifyError::RelocUnknownSymbol { .. }),
            "{name}: {err}"
        );
        assert_eq!(err.code(), "reloc-unknown-symbol", "{name}");
    }
}

#[test]
fn chain_word_redirect_to_equivalent_gadget_is_refused_by_strict_loader() {
    // The hardest fault in the campaign: redirect a chain word to a
    // text address that still decodes to a ret-terminated sequence but
    // is outside the gadget map. Plausibility loading cannot tell the
    // difference — only the strict loader's fresh scan can.
    let bytes = protected_bytes(ChainMode::Cleartext);
    let redirected = apply_image_fault(
        &bytes,
        &ImageFault::ChainRedirect {
            func: "vf".to_owned(),
        },
    )
    .expect("cleartext chain has an in-map gadget word to redirect");
    let err = load_verified_image_strict(&redirected).unwrap_err();
    assert!(
        matches!(err, ImageVerifyError::ChainWordOutOfMap { .. }),
        "{err}"
    );
    assert_eq!(err.code(), "chain-word-out-of-map");
    // The typed error carries the first violation's location.
    assert!(err.offset() > 0, "{err}");
}

#[test]
fn gadget_map_entry_splice_is_refused_as_symbol_out_of_range() {
    for (name, mode) in campaign_modes() {
        let bytes = protected_bytes(mode);
        let Some(spliced) = apply_image_fault(
            &bytes,
            &ImageFault::SymbolSplice {
                name_contains: "vf".to_owned(),
            },
        ) else {
            panic!("{name}: a spliceable symbol exists");
        };
        let err = load_verified_image(&spliced).unwrap_err();
        assert!(
            matches!(err, ImageVerifyError::SymbolOutOfRange { .. }),
            "{name}: {err}"
        );
        assert_eq!(err.code(), "symbol-out-of-range", "{name}");
    }
}
