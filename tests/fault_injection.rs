//! Deterministic fault injection across every stage boundary of the
//! protection pipeline: each perturbation must surface as the correct
//! typed [`ProtectError`] or be contained and classified by the
//! tamper-verdict watchdog — zero panics, zero unbounded hangs.

use parallax::core::{
    classify, protect, protect_binary, protect_binary_faulted, run_baseline, truncate_chain,
    Baseline, ChainMode, ErrorKind, FaultPlan, ProtectConfig, Stage, Verdict,
};
use parallax::vm::{Exit, VmOptions};
use parallax::x86::{Asm, Reg32};
use parallax_compiler::ir::build::*;
use parallax_compiler::{compile_module, Function, Module};
use parallax_image::Program;

/// A small program with a verification function (`vf`), a protected
/// license check (`licensed`), and a never-called function (`dead`)
/// whose bytes are outside every protected range.
fn module() -> Module {
    let mut m = Module::new();
    m.func(Function::new("licensed", [], vec![ret(c(0))]));
    m.func(Function::new(
        "dead",
        ["x"],
        vec![ret(mul(add(l("x"), c(7)), c(3)))],
    ));
    m.func(Function::new(
        "vf",
        ["x"],
        vec![ret(add(mul(l("x"), c(3)), c(1)))],
    ));
    m.func(Function::new(
        "main",
        [],
        vec![ret(add(
            call("vf", vec![c(5)]),
            mul(call("licensed", vec![]), c(100)),
        ))],
    ));
    m.entry("main");
    m
}

/// Exit status of the honest program: vf(5) = 16, licensed() = 0.
const HONEST_EXIT: i32 = 16;

fn cfg() -> ProtectConfig {
    ProtectConfig {
        verify_funcs: vec!["vf".into()],
        guard_funcs: vec!["licensed".into()],
        mode: ChainMode::Cleartext,
        ..ProtectConfig::default()
    }
}

/// Bounded budgets so corrupted chains cannot stall the suite.
fn bounded() -> VmOptions {
    VmOptions {
        cycle_limit: 2_000_000,
        output_limit: 1 << 20,
        ..VmOptions::default()
    }
}

fn starved_cfg() -> ProtectConfig {
    let mut cfg = cfg();
    cfg.rewrite.imm_rule = false;
    cfg.rewrite.jump_rule = false;
    cfg.rewrite.internal_jump_rule = false;
    cfg.rewrite.stdset = false;
    cfg
}

// ---------------------------------------------------------------------
// Pipeline-stage faults → typed errors with correct stage provenance.
// ---------------------------------------------------------------------

#[test]
fn corrupted_relocation_fails_in_link_stage() {
    let m = module();
    let vf_ir = m.get_func("vf").unwrap().clone();
    for nth in [0usize, 1, 5] {
        let prog = compile_module(&m).unwrap();
        let err = protect_binary_faulted(
            prog,
            std::slice::from_ref(&vf_ir),
            &cfg(),
            &FaultPlan::none().corrupt_reloc(nth),
        )
        .unwrap_err();
        assert_eq!(err.stage, Stage::Link, "reloc {nth}: {err}");
        assert!(matches!(err.kind, ErrorKind::Link(_)), "reloc {nth}: {err}");
        // Stage provenance is part of the message.
        assert!(err.to_string().contains("link stage"), "{err}");
    }
}

#[test]
fn dropped_frame_fails_in_link_stage() {
    let m = module();
    let vf_ir = m.get_func("vf").unwrap().clone();
    let prog = compile_module(&m).unwrap();
    let err = protect_binary_faulted(
        prog,
        std::slice::from_ref(&vf_ir),
        &cfg(),
        &FaultPlan::none().drop_frame("vf"),
    )
    .unwrap_err();
    assert_eq!(err.stage, Stage::Link, "{err}");
    assert!(matches!(err.kind, ErrorKind::Link(_)), "{err}");
}

#[test]
fn undecodable_function_fails_in_rewrite_stage() {
    let m = module();
    let vf_ir = m.get_func("vf").unwrap().clone();
    let prog = compile_module(&m).unwrap();
    let err = protect_binary_faulted(
        prog,
        std::slice::from_ref(&vf_ir),
        &cfg(),
        &FaultPlan::none().undecodable_func("licensed"),
    )
    .unwrap_err();
    assert_eq!(err.stage, Stage::Rewrite, "{err}");
    assert!(matches!(err.kind, ErrorKind::Rewrite(_)), "{err}");
}

#[test]
fn emptied_gadget_scan_fails_in_scan_stage() {
    let m = module();
    let vf_ir = m.get_func("vf").unwrap().clone();
    let prog = compile_module(&m).unwrap();
    let mut cfg = cfg();
    cfg.degrade = false; // surface the raw scan error
    let err = protect_binary_faulted(
        prog,
        std::slice::from_ref(&vf_ir),
        &cfg,
        &FaultPlan::none().empty_gadget_scan(),
    )
    .unwrap_err();
    assert_eq!(err.stage, Stage::GadgetScan, "{err}");
    assert!(matches!(err.kind, ErrorKind::NoUsableGadgets), "{err}");
    assert!(err.is_gadget_starvation());
}

#[test]
fn unknown_verify_func_fails_in_select_stage() {
    let err = protect(
        &module(),
        &ProtectConfig {
            verify_funcs: vec!["missing".into()],
            ..ProtectConfig::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.stage, Stage::Select, "{err}");
    assert!(matches!(err.kind, ErrorKind::NoSuchFunction(_)), "{err}");
}

// ---------------------------------------------------------------------
// Gadget starvation and the degradation ladder.
// ---------------------------------------------------------------------

#[test]
fn gadget_starved_build_fails_typed_without_degradation() {
    let mut cfg = starved_cfg();
    cfg.degrade = false;
    let err = protect(&module(), &cfg).unwrap_err();
    assert!(
        err.is_gadget_starvation(),
        "starved build must report missing gadgets: {err}"
    );
    assert!(
        matches!(err.stage, Stage::ChainCompile | Stage::GadgetScan),
        "{err}"
    );
}

#[test]
fn degradation_ladder_recovers_via_standard_set() {
    let protected = protect(&module(), &starved_cfg()).expect("ladder must recover");
    let degr = &protected.report.degradations;
    assert!(!degr.is_empty(), "fallbacks must be reported");
    assert!(
        degr.last().unwrap().stdset_forced,
        "final fallback appends the standard set: {degr:?}"
    );
    assert!(degr.iter().all(|d| !d.missing.is_empty()));
    // The degraded build still runs correctly.
    let mut vm = parallax::vm::Vm::with_options(&protected.image, bounded());
    assert_eq!(vm.run(), Exit::Exited(HONEST_EXIT));
}

#[test]
fn successful_build_reports_no_degradation() {
    let protected = protect(&module(), &cfg()).unwrap();
    assert!(protected.report.degradations.is_empty());
}

// ---------------------------------------------------------------------
// Post-link corruption → contained, classified verdicts.
// ---------------------------------------------------------------------

#[test]
fn truncated_chains_are_detected_and_contained() {
    let protected = protect(&module(), &cfg()).unwrap();
    let base = run_baseline(&protected.image, &[], &bounded());
    assert_eq!(base.exit, Exit::Exited(HONEST_EXIT));
    let words = protected.report.chains[0].words;
    for keep in [1usize, 3, words / 2] {
        let mut img = protected.image.clone();
        assert!(truncate_chain(&mut img, "vf", keep), "truncate at {keep}");
        let v = classify(&img, &[], &base, &bounded());
        assert!(
            v.is_detection(),
            "chain truncated to {keep}/{words} words must not pass as clean"
        );
    }
}

#[test]
fn flips_inside_protected_ranges_are_classified() {
    let protected = protect(&module(), &cfg()).unwrap();
    let base = run_baseline(&protected.image, &[], &bounded());
    let lic = protected.image.symbol("licensed").unwrap().clone();
    let mut detections = 0usize;
    for off in 0..lic.size {
        let mut img = protected.image.clone();
        assert!(parallax::core::flip_byte(&mut img, lic.vaddr + off));
        // Any verdict is acceptable — the requirement is that every
        // flip is *classified* within the budgets, never a panic or
        // an unbounded hang.
        if classify(&img, &[], &base, &bounded()).is_detection() {
            detections += 1;
        }
    }
    assert!(
        detections > 0,
        "guarded function must detect at least one single-byte flip"
    );
}

#[test]
fn flips_outside_protected_ranges_stay_clean() {
    // Binary-level build so an unreferenced slack object exists.
    let m = module();
    let vf_ir = m.get_func("vf").unwrap().clone();
    let mut prog = compile_module(&m).unwrap();
    prog.add_data("slack", vec![0xaa; 64]);
    let mut cfg = cfg();
    // Only `licensed` is protected; `dead` and `slack` are outside
    // every protected range.
    cfg.protect_targets = Some(vec!["licensed".into()]);
    let protected = protect_binary(prog, std::slice::from_ref(&vf_ir), &cfg).unwrap();
    let base = run_baseline(&protected.image, &[], &bounded());
    assert_eq!(base.exit, Exit::Exited(HONEST_EXIT));

    let slack = protected.image.symbol("slack").unwrap().clone();
    for off in (0..slack.size).step_by(7) {
        let mut img = protected.image.clone();
        assert!(parallax::core::flip_byte(&mut img, slack.vaddr + off));
        assert_eq!(
            classify(&img, &[], &base, &bounded()),
            Verdict::Clean,
            "flip in unreferenced data at +{off} must not trip the watchdog"
        );
    }

    // Dead code: never executed, unprotected. Keep clear of chain
    // gadgets (the policy may fall back to any usable gadget).
    let dead = protected.image.symbol("dead").unwrap().clone();
    let used = &protected.report.chains[0].used_gadgets;
    for off in 0..dead.size {
        let vaddr = dead.vaddr + off;
        if used
            .iter()
            .any(|&g| vaddr >= g.saturating_sub(1) && vaddr < g + 16)
        {
            continue;
        }
        let mut img = protected.image.clone();
        assert!(parallax::core::flip_byte(&mut img, vaddr));
        assert_eq!(
            classify(&img, &[], &base, &bounded()),
            Verdict::Clean,
            "flip in dead code at +{off} must not trip the watchdog"
        );
    }
}

// ---------------------------------------------------------------------
// Watchdog budget classes: Hang and MemLimit.
// ---------------------------------------------------------------------

#[test]
fn runaway_loop_classifies_as_hang() {
    let mut a = Asm::new();
    let top = a.here();
    a.jmp(top);
    let mut p = Program::new();
    p.add_func("main", a.finish().unwrap());
    p.set_entry("main");
    let img = p.link().unwrap();
    let base = Baseline {
        exit: Exit::Exited(0),
        output: Vec::new(),
    };
    let opts = VmOptions {
        cycle_limit: 10_000,
        ..VmOptions::default()
    };
    assert_eq!(classify(&img, &[], &base, &opts), Verdict::Hang);
}

#[test]
fn runaway_writer_classifies_as_mem_limit() {
    // loop { write(1, blob, 64) } — output is the VM's only unbounded
    // allocation; the output budget must contain it.
    let mut a = Asm::new();
    a.mov_ri(Reg32::Ebx, 1);
    let top = a.here();
    a.mov_ri(Reg32::Eax, 4);
    a.mov_ri_sym(Reg32::Ecx, "blob", 0);
    a.mov_ri(Reg32::Edx, 64);
    a.int(0x80);
    a.jmp(top);
    let mut p = Program::new();
    p.add_func("main", a.finish().unwrap());
    p.add_data("blob", vec![0x42; 64]);
    p.set_entry("main");
    let img = p.link().unwrap();
    let opts = VmOptions {
        output_limit: 4096,
        ..VmOptions::default()
    };
    let base = run_baseline(&img, &[], &opts);
    assert_eq!(
        base.exit,
        Exit::MemLimit,
        "baseline run is itself contained"
    );
    let verdict = classify(
        &img,
        &[],
        &Baseline {
            exit: Exit::Exited(0),
            output: Vec::new(),
        },
        &opts,
    );
    assert_eq!(verdict, Verdict::MemLimit);
}
