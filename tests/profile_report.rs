//! Regression coverage for `plx profile` / `plx report` against traces
//! recorded *before* the bottleneck profiler existed.
//!
//! `tests/fixtures/pre_profiler_trace.json` is a checked-in trace in
//! the shape the toolchain emitted before the `pool.*` / `vm.probe.*`
//! namespaces were added: pipeline/stage spans plus the original
//! counter set, and nothing else. Every renderer must keep accepting
//! it — reports degrade section-by-section, never by erroring.

use parallax::profile::{bottlenecks, render_profile};
use parallax::report::{render_diff, render_report};
use parallax::trace::{chrome_json, TraceFile, Tracer};

fn fixture() -> TraceFile {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/pre_profiler_trace.json"
    );
    let text = std::fs::read_to_string(path).expect("fixture readable");
    TraceFile::parse(&text).expect("pre-profiler fixture parses")
}

/// A trace the *current* toolchain would emit: same shape, plus pool
/// and probe-VM telemetry.
fn current_trace() -> TraceFile {
    let t = Tracer::new();
    {
        let _root = t.span("protect", "pipeline");
        let _s = t.span("gadget-scan", "stage");
    }
    t.count("vm.run.cycles", 4000);
    t.count("protect.par.chain.wall_us", 800);
    t.count("protect.par.chain.cpu_us", 2400);
    t.count("pool.chain.runs", 1);
    t.count("pool.chain.items", 16);
    t.count("pool.chain.steal.ok", 5);
    t.count("pool.chain.steal.fail", 11);
    t.count("pool.chain.lock.contended", 3);
    t.count("pool.chain.lock.wait_ns", 1_200_000);
    t.count("pool.chain.merge_ns", 300_000);
    t.record("pool.chain.workers", 4);
    t.count("vm.probe.builds", 4);
    t.count("vm.probe.build_ns", 9_000_000);
    TraceFile::parse(&chrome_json(&t.snapshot())).expect("current trace parses")
}

#[test]
fn report_accepts_pre_profiler_trace() {
    let report = render_report(&fixture());
    // The sections backed by recorded data still render...
    assert!(report.contains("pipeline stages"), "{report}");
    assert!(report.contains("verification overhead"), "{report}");
    // ...and the sections whose namespaces post-date the trace are
    // simply absent rather than rendered as zeros.
    assert!(!report.contains("pool"), "{report}");
}

#[test]
fn profile_accepts_pre_profiler_trace() {
    let text = render_profile(&fixture());
    assert!(text.contains("critical path"), "{text}");
    assert!(text.contains("amdahl ceiling"), "{text}");
    // Stage spans alone still yield serial-time attribution.
    assert!(text.contains("bottlenecks (top blockers):"), "{text}");
    assert!(text.contains("serial: "), "{text}");
    // No pool telemetry -> no pool table, no fabricated contention.
    assert!(!text.contains("pool sites:"), "{text}");
    assert!(!text.contains("pool contention"), "{text}");
}

#[test]
fn diff_marks_missing_baseline_sections_instead_of_zeroing() {
    let old = fixture();
    let new = current_trace();
    let diff = render_diff(&old, &new);
    // Sections both traces carry diff normally.
    assert!(diff.contains("pipeline stages"), "{diff}");
    assert!(diff.contains("parallel protection"), "{diff}");
    // The pool section appears because `new` records it, with the
    // baseline side explicitly marked rather than treated as zero.
    assert!(diff.contains("pool contention (b - a):"), "{diff}");
    assert!(diff.contains("not recorded"), "{diff}");
    assert!(diff.contains("1.200 ms lock-wait"), "{diff}");
    // Swapped order degrades the same way.
    let rev = render_diff(&new, &old);
    assert!(rev.contains("not recorded"), "{rev}");
    // Two pre-profiler traces -> no pool section at all.
    let none = render_diff(&old, &fixture());
    assert!(!none.contains("pool contention"), "{none}");
}

#[test]
fn current_trace_attributes_all_three_required_costs() {
    let ranked = bottlenecks(&current_trace());
    let labels: Vec<&str> = ranked.iter().map(|b| b.label.as_str()).collect();
    assert!(labels.contains(&"pool contention (chain)"), "{labels:?}");
    assert!(labels.contains(&"probe-VM construction"), "{labels:?}");
    assert!(labels.contains(&"merge (chain)"), "{labels:?}");
}

#[test]
fn profile_subcommand_dispatches() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/pre_profiler_trace.json"
    );
    let out = parallax::cli::dispatch("profile", &[path.to_string()]).expect("plx profile runs");
    assert!(out.contains("critical path"), "{out}");
    let err = parallax::cli::dispatch("profile", &["no-such.json".to_string()]).unwrap_err();
    assert!(err.0.contains("no-such.json"), "{}", err.0);
}
