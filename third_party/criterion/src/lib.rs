//! Offline stand-in for the `criterion` crate.
//!
//! Keeps `benches/` targets compiling and smoke-running without the
//! real statistics engine: each benchmark body is executed a handful
//! of timed iterations and a single ns/iter line is printed. Ignores
//! all CLI arguments (so it behaves under both `cargo bench` and
//! `cargo test`, which passes harness flags like `--test`).

use std::time::Instant;

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Measurement state handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up, then a few timed runs.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { iters: 3 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, self.iters, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iters: self.iters,
            throughput: None,
            _c: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        // The shim's iteration count is fixed; sample size is accepted
        // for API compatibility only.
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.throughput, self.iters, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    iters: u64,
    mut f: F,
) {
    let mut b = Bencher {
        iters,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns / b.iters.max(1) as u128;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0 => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / (per_iter as f64 / 1e9) / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if per_iter > 0 => {
            format!(" ({:.0} elem/s)", n as f64 / (per_iter as f64 / 1e9))
        }
        _ => String::new(),
    };
    println!("bench {name}: {per_iter} ns/iter{rate}");
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("inner", |b| b.iter(|| black_box(42)));
        g.finish();
    }
}
