//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest used by this workspace's tests:
//! strategies over primitive types, integer ranges, tuples,
//! collections, `Option`, char-class string patterns and unions, plus
//! the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//! and `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//! - fully deterministic: case N of test T is always generated from
//!   `fnv(T) ⊕ mix(N)`, so failures reproduce without a persistence
//!   file;
//! - no shrinking — the failing case is reported as generated;
//! - no fork/timeout support.

use std::marker::PhantomData;

// ---------------------------------------------------------------- rng

/// Deterministic splitmix64 generator used for all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ----------------------------------------------------------- strategy

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree: `generate`
/// produces a final value directly and there is no shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence: whence.into(),
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// -------------------------------------------------------- primitives

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool()
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ----------------------------------------------- char-class patterns

/// String patterns: a sequence of literal chars or `[...]` classes,
/// each optionally followed by `{n}` or `{m,n}`. Covers the patterns
/// this workspace uses (e.g. `"[a-z_][a-z0-9_]{0,12}"`); anything
/// fancier panics loudly rather than silently mis-generating.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unterminated [ in pattern {pat:?}"))
                + i;
            let cls = expand_class(&chars[i + 1..close], pat);
            i = close + 1;
            cls
        } else {
            let c = chars[i];
            assert!(
                !"()|*+?\\".contains(c),
                "unsupported regex feature {c:?} in pattern {pat:?}"
            );
            i += 1;
            vec![c]
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated {{ in pattern {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().unwrap(),
                    hi.trim().parse::<usize>().unwrap(),
                ),
                None => {
                    let n = body.trim().parse::<usize>().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

fn expand_class(cls: &[char], pat: &str) -> Vec<char> {
    assert!(!cls.is_empty(), "empty [] class in pattern {pat:?}");
    let mut out = Vec::new();
    let mut i = 0;
    while i < cls.len() {
        if i + 2 < cls.len() && cls[i + 1] == '-' {
            for c in cls[i]..=cls[i + 2] {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(cls[i]);
            i += 1;
        }
    }
    out
}

// -------------------------------------------------------- submodules

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashMap;
    use std::hash::Hash;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct HashMapStrategy<K, V> {
        key: K,
        val: V,
        len: Range<usize>,
    }

    pub fn hash_map<K, V>(key: K, val: V, len: Range<usize>) -> HashMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Eq + Hash,
    {
        HashMapStrategy { key, val, len }
    }

    impl<K, V> Strategy for HashMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Eq + Hash,
    {
        type Value = HashMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            let mut out = HashMap::new();
            // Key collisions may keep the map below `n`; bounded tries.
            for _ in 0..n * 4 + 4 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.key.generate(rng), self.val.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // 3:1 bias towards Some, matching upstream's default.
            if rng.below(4) > 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use
    /// time (`Index::index(len)`).
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

// ------------------------------------------------------------ runner

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

pub mod runner {
    use super::{ProptestConfig, Strategy, TestCaseError, TestRng};

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut rejects = 0u32;
        for case in 0..config.cases {
            loop {
                let seed = base
                    ^ (case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)
                    ^ (rejects as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut rng = TestRng::new(seed);
                let value = strategy.generate(&mut rng);
                match test(value) {
                    Ok(()) => break,
                    Err(TestCaseError::Reject(why)) => {
                        rejects += 1;
                        assert!(
                            rejects <= config.max_global_rejects,
                            "{name}: too many prop_assume rejections (last: {why})"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("{name}: case {case} (seed {seed:#018x}) failed: {msg}")
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------ macros

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                $crate::runner::run(
                    &config,
                    stringify!($name),
                    &strategy,
                    |($($arg,)+)| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };

    /// Mirror of upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn patterns_match_shape() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let s = crate::generate_pattern("[a-z_][a-z0-9_]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_');
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in 0u64..5000, f in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5000);
            let _ = f;
        }

        #[test]
        fn maps_and_filters(v in (0u8..8).prop_filter("nonzero", |v| *v != 0)) {
            prop_assert!(v > 0 && v < 8);
        }

        #[test]
        fn collections_sized(
            v in crate::collection::vec(any::<u8>(), 2..5),
            m in crate::collection::hash_map("[a-z]{1,4}", any::<u32>(), 0..4),
            o in crate::option::of(Just(7u32)),
            ix in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(m.len() < 4);
            prop_assert!(o.is_none() || o == Some(7));
            prop_assert!(ix.index(10) < 10);
        }

        #[test]
        fn oneof_and_assume(x in prop_oneof![Just(1u32), Just(2), 5u32..8]) {
            prop_assume!(x != 2);
            prop_assert!(x == 1 || (5..8).contains(&x));
        }
    }
}
