//! Offline stand-in for the `rand` crate.
//!
//! Deterministic xorshift-based PRNG implementing the small API
//! surface this workspace needs. Not cryptographically secure and not
//! statistically rigorous — a build-time dependency shim only.

use std::ops::Range;

/// Core random-number source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64 generator; used for both `StdRng` and `SmallRng`.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

pub mod rngs {
    pub use super::StdRng;
    pub type SmallRng = StdRng;
}

/// Process-wide generator. Deterministic (fixed seed) by design: this
/// workspace never wants irreproducible randomness.
pub fn thread_rng() -> StdRng {
    StdRng::seed_from_u64(0x5eed_5eed_5eed_5eed)
}

pub mod prelude {
    pub use super::{thread_rng, Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(10..20);
            assert_eq!(x, b.gen_range(10..20));
            assert!((10..20).contains(&x));
        }
    }
}
